"""EXP-P — persistence: replay throughput and per-policy ADD overhead.

Two questions the durable store must answer with numbers:

1. **Restart cost** — how fast does a server come back?  Replay sigs/s
   for a *cold* open (no checkpoint manifest: every record CRC-verified
   and deserialized) versus a *checkpointed* open (manifest present:
   the prefix loads from stored metadata, only the tail is validated),
   at 10k and 50k signatures (smoke: 500/2,000).

2. **Steady-state cost** — what does durability do to the ADD hot path?
   Per-ADD latency (p50/p99) through the full ``process_add`` pipeline
   under each fsync policy — ``memory`` (no store, the seed behavior),
   ``never``, ``interval:5``, ``always`` — on one process, one disk.

3. **Group commit** — concurrent ADDs under ``always``: the WAL batches
   every append buffered while the previous fsync was in flight into one
   flush, so aggregate throughput scales past the one-fsync-per-ADD
   wall that caps the single-threaded ``always`` number above.  Swept
   over appender thread counts, plus a ``group_commit=False`` control at
   the widest point.

Results land in ``BENCH_persistence.json`` (``BENCH_persistence.smoke.json``
under ``COMMUNIX_BENCH_SMOKE=1``) plus ``results/persistence.txt``.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import threading
import time

import pytest

from benchmarks.conftest import bench_json_path, write_artifact
from repro.loadgen.signatures import random_signature
from repro.server.database import SignatureDatabase
from repro.server.server import CommunixServer, ServerConfig
from repro.store import SignatureStore
from repro.store.checkpoint import manifest_path

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"
#: Database sizes for the replay measurement.
REPLAY_SIZES = (500, 2000) if SMOKE else (10_000, 50_000)
#: ADDs timed per fsync policy (after a small warmup).
ADD_COUNT = 200 if SMOKE else 2000
ADD_WARMUP = 20 if SMOKE else 100
#: ``None`` is the memory-only baseline the others are compared against.
POLICIES = (None, "never", "interval:5", "always")
#: Concurrent appender counts for the group-commit sweep.
GC_THREADS = (2,) if SMOKE else (1, 4, 16)
#: Total ADDs per group-commit point (split across the threads).
GC_ADDS = 200 if SMOKE else 2000

_replay_points: list[dict] = []
_add_points: list[dict] = []
_gc_points: list[dict] = []


def _make_signatures(count: int, seed: int):
    rng = random.Random(seed)
    sigs, seen = [], set()
    while len(sigs) < count:
        sig = random_signature(rng)
        if sig.sig_id in seen:
            continue
        seen.add(sig.sig_id)
        sigs.append(sig)
    return sigs


def _dir_bytes(path: str) -> int:
    return sum(os.path.getsize(os.path.join(path, name))
               for name in os.listdir(path))


def _populate_store(data_dir: str, signatures) -> None:
    store = SignatureStore(data_dir, fsync="never")
    for i, sig in enumerate(signatures):
        store.append(sig.to_bytes(), sig.sig_id, i % 97 + 1, sig.top_frames)
    store.close()  # seals with a checkpoint manifest covering everything


def _timed_open(data_dir: str) -> tuple[float, SignatureDatabase, SignatureStore]:
    start = time.perf_counter()
    store = SignatureStore(data_dir, fsync="never")
    database = SignatureDatabase(store=store)
    return time.perf_counter() - start, database, store


def run_replay_point(data_dir: str, count: int) -> dict:
    signatures = _make_signatures(count, seed=count)
    _populate_store(data_dir, signatures)
    data_bytes = _dir_bytes(data_dir)

    # Checkpointed restart: manifest covers the full log.
    warm_s, db, store = _timed_open(data_dir)
    assert len(db) == count and db.replayed_count == count
    assert store.replayed_past_checkpoint == 0
    store.close(final_checkpoint=False)

    # Cold restart: no manifest — CRC + deserialize every record.
    os.remove(manifest_path(data_dir))
    cold_s, db, store = _timed_open(data_dir)
    assert len(db) == count
    assert store.replayed_past_checkpoint == count
    # Sanity: the replayed database serves the same bytes it stored.
    _, _count, chunks, _ = db.wire_from(0)
    assert _count == count
    store.close(final_checkpoint=False)

    return {
        "signatures": count,
        "log_bytes": data_bytes,
        "cold_replay_s": round(cold_s, 4),
        "cold_sigs_per_s": round(count / cold_s, 1),
        "checkpointed_replay_s": round(warm_s, 4),
        "checkpointed_sigs_per_s": round(count / warm_s, 1),
        "checkpoint_speedup": round(cold_s / warm_s, 2),
    }


def run_add_point(data_dir: str | None, policy: str | None) -> dict:
    """Per-ADD latency through ``process_add`` under one fsync policy."""
    config = ServerConfig(
        max_signatures_per_user_per_day=10 ** 9,
        adjacency_check=False,  # identical pipeline across policies
        data_dir=data_dir,
        fsync_policy=policy or "never",
        checkpoint_every=0,
    )
    server = CommunixServer(config=config)
    token = server.issue_user_token()
    signatures = _make_signatures(ADD_WARMUP + ADD_COUNT, seed=8080)
    for sig in signatures[:ADD_WARMUP]:
        assert server.process_add(sig.to_bytes(), token).accepted
    latencies = []
    started = time.perf_counter()
    for sig in signatures[ADD_WARMUP:]:
        blob = sig.to_bytes()
        t0 = time.perf_counter()
        outcome = server.process_add(blob, token)
        latencies.append(time.perf_counter() - t0)
        assert outcome.accepted
    elapsed = time.perf_counter() - started
    server.close()
    latencies.sort()

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1,
                             int(q * len(latencies)))] * 1000.0

    return {
        "policy": policy or "memory",
        "adds": ADD_COUNT,
        "adds_per_s": round(ADD_COUNT / elapsed, 1),
        "mean_ms": round(sum(latencies) / len(latencies) * 1000.0, 4),
        "p50_ms": round(pct(0.50), 4),
        "p99_ms": round(pct(0.99), 4),
    }


def run_group_commit_point(data_dir: str, threads: int,
                           group_commit: bool) -> dict:
    """Aggregate ADD throughput with ``threads`` concurrent appenders
    under ``--fsync always``, with or without group commit."""
    store = SignatureStore(data_dir, fsync="always",
                           group_commit=group_commit)
    config = ServerConfig(
        max_signatures_per_user_per_day=10 ** 9,
        adjacency_check=False,
        fsync_policy="always",
        checkpoint_every=0,
    )
    server = CommunixServer(config=config, store=store)
    signatures = _make_signatures(GC_ADDS, seed=4242)
    per_thread = GC_ADDS // threads
    shares = [signatures[i * per_thread:(i + 1) * per_thread]
              for i in range(threads)]
    tokens = [server.issue_user_token() for _ in range(threads)]
    errors: list[Exception] = []

    def run(share, token):
        try:
            for sig in share:
                assert server.process_add(sig.to_bytes(), token).accepted
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    workers = [threading.Thread(target=run, args=(share, token))
               for share, token in zip(shares, tokens)]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    assert not errors
    total = per_thread * threads
    assert store.durable_count == total  # every ack was an fsynced record
    fsyncs = store.fsyncs_issued
    server.close()
    return {
        "threads": threads,
        "group_commit": group_commit,
        "adds": total,
        "adds_per_s": round(total / elapsed, 1),
        "fsyncs_issued": fsyncs,
        "adds_per_fsync": round(total / fsyncs, 2) if fsyncs else None,
    }


@pytest.mark.parametrize("count", REPLAY_SIZES)
def test_replay_throughput(benchmark, count, results_dir, tmp_path):
    point = benchmark.pedantic(
        run_replay_point, args=(str(tmp_path / "wal"), count),
        rounds=1, iterations=1,
    )
    _replay_points.append(point)
    _write_results(results_dir)
    benchmark.extra_info.update(point)
    assert point["cold_sigs_per_s"] > 0
    # The checkpoint must actually pay: skipping CRC + deserialization of
    # the whole history cannot be slower than doing it.  Only gated on
    # full runs — at smoke scale both opens are milliseconds, and a GC
    # pause on a noisy CI runner would flip a relative assertion.
    if not SMOKE:
        assert point["checkpointed_replay_s"] <= point["cold_replay_s"] * 1.5
    shutil.rmtree(tmp_path / "wal", ignore_errors=True)


@pytest.mark.parametrize("policy", POLICIES,
                         ids=lambda p: p or "memory")
def test_add_latency_per_policy(benchmark, policy, results_dir, tmp_path):
    data_dir = None if policy is None else str(tmp_path / "wal")
    point = benchmark.pedantic(
        run_add_point, args=(data_dir, policy), rounds=1, iterations=1
    )
    _add_points.append(point)
    _write_results(results_dir)
    benchmark.extra_info.update(point)
    assert point["p99_ms"] > 0
    if data_dir:
        shutil.rmtree(data_dir, ignore_errors=True)


@pytest.mark.parametrize("threads,group_commit",
                         [(t, True) for t in GC_THREADS]
                         + [(GC_THREADS[-1], False)],
                         ids=lambda v: str(v).lower())
def test_group_commit_concurrent_adds(benchmark, threads, group_commit,
                                      results_dir, tmp_path):
    data_dir = str(tmp_path / "wal")
    point = benchmark.pedantic(
        run_group_commit_point, args=(data_dir, threads, group_commit),
        rounds=1, iterations=1,
    )
    _gc_points.append(point)
    _write_results(results_dir)
    benchmark.extra_info.update(point)
    assert point["adds_per_s"] > 0
    # Batching must be visible: strictly fewer fsyncs than records.  Only
    # gated on full runs at real concurrency — with few threads on a fast
    # disk an fsync can finish before the next append shows up, leaving
    # nothing to batch.
    if group_commit and threads >= 4 and not SMOKE:
        assert point["fsyncs_issued"] < point["adds"]
    shutil.rmtree(data_dir, ignore_errors=True)


def _write_results(results_dir) -> None:
    baseline = next((p for p in _add_points if p["policy"] == "memory"), None)
    lines = [
        "Persistence — replay throughput and ADD overhead per fsync policy",
        "",
        "restart replay (cold = full CRC+deserialize, ckpt = manifest prefix):",
        "sigs     log_MB  cold_s  cold_sigs/s  ckpt_s  ckpt_sigs/s  speedup",
    ]
    for p in _replay_points:
        lines.append(
            f"{p['signatures']:7d}  {p['log_bytes'] / 1e6:6.1f}  "
            f"{p['cold_replay_s']:6.3f}  {p['cold_sigs_per_s']:11.0f}  "
            f"{p['checkpointed_replay_s']:6.3f}  "
            f"{p['checkpointed_sigs_per_s']:11.0f}  "
            f"{p['checkpoint_speedup']:6.2f}x"
        )
    lines += [
        "",
        f"ADD latency through process_add ({ADD_COUNT} adds, one thread):",
        "policy        adds/s   p50_ms   p99_ms   p99_overhead_ms",
    ]
    for p in _add_points:
        overhead = (p["p99_ms"] - baseline["p99_ms"]) if baseline else 0.0
        lines.append(
            f"{p['policy']:<12} {p['adds_per_s']:7.0f}  {p['p50_ms']:7.3f}  "
            f"{p['p99_ms']:7.3f}  {overhead:15.3f}"
        )
    if _gc_points:
        lines += [
            "",
            f"group commit under fsync=always ({GC_ADDS} concurrent adds):",
            "threads  group_commit   adds/s   fsyncs  adds/fsync",
        ]
        for p in _gc_points:
            per_fsync = (f"{p['adds_per_fsync']:10.2f}"
                         if p["adds_per_fsync"] else "         -")
            lines.append(
                f"{p['threads']:7d}  {str(p['group_commit']):<12} "
                f"{p['adds_per_s']:8.0f}  {p['fsyncs_issued']:7d}  {per_fsync}"
            )
    write_artifact(results_dir, "persistence.txt", lines)
    payload = {
        "benchmark": "persistence",
        "smoke": SMOKE,
        "replay": list(_replay_points),
        "add_latency": [
            dict(p, p99_overhead_ms=round(p["p99_ms"] - baseline["p99_ms"], 4)
                 if baseline else None)
            for p in _add_points
        ],
        "group_commit": list(_gc_points),
    }
    out = bench_json_path("BENCH_persistence")
    out.write_text(json.dumps(payload, indent=2) + "\n")
