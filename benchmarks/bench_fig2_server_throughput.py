"""EXP-F2 — Figure 2: Communix server request throughput, swarm-driven.

Paper setup: "we invoke the request processing routines from 1,000-100,000
simultaneous threads", each issuing one ``ADD(sig), GET`` sequence with a
random signature; the server validates every ADD (encrypted id, quota,
adjacency).  Reported: requests/second versus the number of simultaneous
sequences.  Paper shape: scales to ~30k sequences, peaking at ~9,000 req/s.

Scaling substitution, in three tiers:

* **Single-process sweep** (1:10, up to 10,000 clients): one
  ``repro.loadgen`` swarm process over loopback TCP against a server
  child — PR 2's configuration, kept for series continuity.
* **Federated sweep** (1:5, up to 20,000 *concurrently-held* clients):
  the 20k-FD per-process cap makes one swarm process top out near 10k
  sockets, so ``repro.loadgen.federation`` shards the swarm across worker
  processes — each with its own FD budget — over a **UNIX-socket**
  endpoint, barrier-released together, histograms merged by the
  coordinator.  At the top point the *server* itself sits at its FD
  ceiling: the last few dozen connections wait in the listen backlog
  (established from the client's side, so they are really held) until
  early finishers free descriptors.  Because clients park before token
  issuance, the timed window covers the full ``ISSUE_ID, ADD, GET(page)``
  session of every client.
* **Rolling cohort** (the paper's full 100k x-axis, approximated):
  ``waves`` disjoint cohorts of clients cycle through the federated
  swarm — 100,000 distinct client sessions total, concurrency bounded by
  one wave — merged into a single throughput/latency point.

A fourth section federates the *server* instead of the swarm: the top
single-process point re-run against ``--server-procs {2,4}``
SO_REUSEPORT worker processes over the single-writer group-commit log
(``repro.server.federation``).

Requests/second and merged p50/p95/p99 land in ``BENCH_fig2_swarm.json``
(``BENCH_fig2_swarm.smoke.json`` under ``COMMUNIX_BENCH_SMOKE=1`` — smoke
runs never overwrite the full series).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import bench_json_path, write_artifact
from benchmarks.swarm_common import (
    server_metrics_summary,
    swarm_server,
    wait_for_barrier,
)
from repro.loadgen.engine import SwarmEngine
from repro.loadgen.federation import federated_run
from repro.loadgen.scenarios import (
    OP_ADD,
    OP_ADD_ATTACK,
    OP_GET_PAGE,
    OP_ISSUE_ID,
    QuotaFlood,
    SteadyState,
)
#: Re-exported for the other benchmarks that import it from here.
from repro.loadgen.signatures import random_signature  # noqa: F401
from repro.loadgen.signatures import off_path_flood_blobs, random_signature_blobs

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"
#: 1:10 scale of the paper's 1k..100k sweep in one swarm process.
SWEEP = (50, 200) if SMOKE else (100, 1000, 2000, 5000, 10000)
#: Federated (procs, clients) points over a UNIX socket: past one
#: process's FD budget, up to the *server's* own 20k-FD ceiling.
FED_SWEEP = ((2, 100),) if SMOKE else ((2, 14000), (2, 20000))
#: Rolling cohort (procs, clients_per_wave, waves): distinct sessions =
#: clients_per_wave x waves — 100k in the full run.
ROLLING = (2, 60, 2) if SMOKE else (2, 10000, 10)
#: Federated *server* tier (server_procs, clients): the same swarm as
#: SWEEP's top point, but the server side runs ``--server-procs N``
#: SO_REUSEPORT workers over the single-writer group-commit log.  On a
#: multi-core host the workers spread request validation across cores;
#: this container has one core, so these points price the *protocol*
#: (ADD forwarding hop, apply-stream, extra scheduling) instead — see
#: the docs' federated-tier section for the honest read of the numbers.
SERVER_PROCS_SWEEP = ((2, 50),) if SMOKE else ((2, 10000), (4, 10000))
#: Latency-under-attack point: a benign steady-state swarm with a
#: quota-flood fleet (one valid identity each, ``attack_rounds`` spam ADDs
#: bounded by a 10/day quota) hammering the same server — the §IV-B
#: protection story measured *online*, as benign p50/p95/p99 degradation
#: against the attacker-free baseline.
ATTACK = (dict(benign=50, attackers=15, attack_rounds=5) if SMOKE
          else dict(benign=2000, attackers=400, attack_rounds=25))
ATTACK_QUOTA = 10
PAGE_SIZE = 256
LOOPS = 2

_series: dict[int, dict] = {}
_fed_series: list[dict] = []
_server_procs_series: list[dict] = []
_rolling: dict = {}
_attack: dict = {}


def _sock_path(tag: str) -> str:
    return f"/tmp/communix-fig2-{tag}-{os.getpid()}.sock"


def run_point(n_clients: int, *, attackers: int = 0, attack_rounds: int = 0,
              quota_per_day: int = 1000, seed: int | None = None,
              server_args: list[str] | None = None,
              capture_server_metrics: bool = True) -> dict:
    """One single-process point: n benign swarm clients x (ADD, GET page),
    timed after the connect-and-token ramp, behind a start barrier —
    optionally with a ``attackers``-strong quota-flood fleet parked at the
    same barrier (the latency-under-attack configuration).  Benign op
    latencies come only from benign clients; the attack traffic is
    tracked under its own op labels.

    Unless metrics are off, the server child writes a ``--metrics-log``
    whose final (shutdown) snapshot becomes the point's
    ``server_metrics`` section — the server-side view (per-stage
    latencies, event-loop lag, fsync waits) of the same window the swarm
    measured from the outside."""
    blobs = random_signature_blobs(n_clients,
                                   seed=n_clients if seed is None else seed)
    n_total = n_clients + attackers
    benign = [
        SteadyState([blob], page_size=PAGE_SIZE, park_after_setup=True)
        for blob in blobs
    ]
    extra_args = list(server_args or [])
    metrics_log = None
    if capture_server_metrics and "--no-metrics" not in extra_args:
        metrics_log = f"/tmp/communix-fig2-metrics-{os.getpid()}.jsonl"
        try:
            os.unlink(metrics_log)
        except OSError:
            pass
        extra_args += ["--metrics-log", metrics_log,
                       "--metrics-interval", "30"]
    with swarm_server(quota_per_day=quota_per_day,
                      server_args=extra_args) as endpoint:
        engine = SwarmEngine(
            endpoint, loops=LOOPS, connect_burst=512, connect_timeout=60.0
        )
        engine.add_clients(benign)
        engine.add_clients(
            QuotaFlood(off_path_flood_blobs(attack_rounds, seed=100_000 + i),
                       park_on_connect=True)
            for i in range(attackers)
        )
        engine.start()
        try:
            wait_timeout = (max(240.0, n_total * 0.1) if attackers
                            else max(180.0, n_clients * 0.05))
            wait_for_barrier(engine, n_total,
                             timeout=max(120.0, n_total * 0.02))
            held = engine.connected_count
            released_at = engine.release()
            # Benign throughput must be measured over the *benign* window:
            # the attacker fleet keeps running after the last benign client
            # finishes, and counting that tail would understate benign
            # req/s (and overstate degradation) by a windowing artifact.
            benign_completed_at = None
            if attackers:
                deadline = time.monotonic() + wait_timeout
                while time.monotonic() < deadline:
                    if all(s.completed or s.failed for s in benign):
                        break
                    time.sleep(0.01)
                benign_completed_at = time.monotonic()
            finished = engine.wait(timeout=wait_timeout)
            completed_at = engine.completed_at
        finally:
            engine.stop()
    snapshot = engine.snapshot()
    assert finished, (
        f"{engine.client_count - engine.finished_count} clients unfinished"
    )
    assert snapshot.errors == {}, snapshot.errors
    assert held >= n_total
    elapsed = completed_at - released_at
    requests = snapshot.count(OP_ADD) + snapshot.count(OP_GET_PAGE)
    point = {
        "clients": n_clients,
        "held_simultaneously": held,
        "timed_requests": requests,
        "elapsed_s": round(elapsed, 3),
        "requests_per_second": round(requests / elapsed, 1),
        "add": snapshot.histograms[OP_ADD].summary(),
        "get_page": snapshot.histograms[OP_GET_PAGE].summary(),
    }
    if attackers:
        benign_elapsed = benign_completed_at - released_at
        benign_rps = round(requests / benign_elapsed, 1)
        point.update({
            "benign_clients": n_clients,
            "attackers": attackers,
            "quota_per_day": quota_per_day,
            "benign_elapsed_s": round(benign_elapsed, 3),
            "benign_requests_per_second": benign_rps,
            # Overwrite: dividing benign requests by the full window
            # (which includes the attacker-only tail) is exactly the
            # artifact the benign window exists to avoid, and the
            # same-named baseline field invites that comparison.
            "requests_per_second": benign_rps,
            "attack_adds": snapshot.count(OP_ADD_ATTACK),
            "attack_add": snapshot.histograms[OP_ADD_ATTACK].summary(),
        })
    if metrics_log is not None:
        # The context manager above SIGTERMed the child; its shutdown
        # snapshot (post-drain) is the last line of the metrics log.
        point["server_metrics"] = server_metrics_summary(metrics_log)
        try:
            os.unlink(metrics_log)
        except OSError:
            pass
    return point


def run_federated_point(procs: int, n_clients: int,
                        waves: int = 1) -> dict:
    """One federated point: ``n_clients`` split over ``procs`` worker
    processes against a UNIX-socket server child; every client parks at
    the cross-process barrier, then runs ``ISSUE_ID, ADD, GET(page)``."""
    timeout = max(180.0, n_clients * waves * 0.05)
    with swarm_server(addr=f"unix://{_sock_path(f'{procs}x{n_clients}')}",
                      backlog=4096) as endpoint:
        report = federated_run(
            connect=endpoint.url(), procs=procs, clients=n_clients,
            scenario="steady", rounds=1, page_size=PAGE_SIZE, loops=LOOPS,
            connect_burst=512, timeout=timeout, seed=n_clients, waves=waves,
        )
    assert report.ok, report.failures
    assert report.snapshot.errors == {}, report.snapshot.errors
    assert report.held_peak >= n_clients
    snapshot = report.snapshot
    point = {
        "clients": n_clients,
        "procs": procs,
        "transport": "unix",
        "held_simultaneously": report.held_peak,
        "timed_requests": snapshot.completed,
        "elapsed_s": round(report.elapsed_s, 3),
        "requests_per_second": report.requests_per_s,
        "issue_id": snapshot.histograms[OP_ISSUE_ID].summary(),
        "add": snapshot.histograms[OP_ADD].summary(),
        "get_page": snapshot.histograms[OP_GET_PAGE].summary(),
        "per_worker": [
            {"clients": w.clients, "held": w.held, "elapsed_s": w.elapsed_s}
            for w in report.workers
        ],
    }
    if waves > 1:
        point.update({
            "mode": "rolling_cohort",
            "waves": waves,
            "clients_per_wave": n_clients,
            "distinct_sessions": report.distinct_sessions,
        })
    return point


@pytest.mark.parametrize("n_clients", SWEEP)
def test_fig2_swarm_throughput(benchmark, n_clients, results_dir):
    point = benchmark.pedantic(
        run_point, args=(n_clients,), rounds=1, iterations=1
    )
    _series[n_clients] = point
    # Rewrite the artifacts after every point: a later point failing (or
    # a partial run) must not discard the sweep data measured so far.
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items() if not isinstance(v, dict)}
    )
    assert point["requests_per_second"] > 0
    assert point["held_simultaneously"] >= n_clients


@pytest.mark.parametrize("procs,n_clients", FED_SWEEP)
def test_fig2_federated_swarm(benchmark, procs, n_clients, results_dir):
    point = benchmark.pedantic(
        run_federated_point, args=(procs, n_clients), rounds=1, iterations=1
    )
    _fed_series.append(point)
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items()
         if not isinstance(v, (dict, list))}
    )
    assert point["requests_per_second"] > 0
    assert point["held_simultaneously"] >= n_clients


@pytest.mark.parametrize("server_procs,n_clients", SERVER_PROCS_SWEEP)
def test_fig2_federated_server_tier(benchmark, server_procs, n_clients,
                                    results_dir):
    """SWEEP's workload against a ``--server-procs N`` federated server:
    N SO_REUSEPORT workers, ADDs funneled through the log owner.  The
    point's ``server_metrics`` is the coordinator's *merged* registry —
    one snapshot pooled over every worker."""
    point = benchmark.pedantic(
        run_point, args=(n_clients,),
        kwargs={"server_args": ["--server-procs", str(server_procs)]},
        rounds=1, iterations=1,
    )
    point["server_procs"] = server_procs
    _server_procs_series.append(point)
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items() if not isinstance(v, dict)}
    )
    assert point["requests_per_second"] > 0
    assert point["held_simultaneously"] >= n_clients


def test_fig2_rolling_cohort(benchmark, results_dir):
    """100k distinct client sessions cycled through the federated swarm
    in disjoint waves (concurrency = one wave's clients)."""
    procs, per_wave, waves = ROLLING
    point = benchmark.pedantic(
        run_federated_point, args=(procs, per_wave), kwargs={"waves": waves},
        rounds=1, iterations=1,
    )
    _rolling.update(point)
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items()
         if not isinstance(v, (dict, list))}
    )
    assert point["distinct_sessions"] == per_wave * waves
    assert point["requests_per_second"] > 0


def test_fig2_latency_under_attack(benchmark, results_dir):
    """Benign p50/p95/p99 with a quota-flood fleet vs. a clean baseline
    (the ROADMAP "latency under attack" item)."""
    def run_both() -> dict:
        baseline = run_point(ATTACK["benign"], quota_per_day=ATTACK_QUOTA,
                             seed=4242)
        under_attack = run_point(ATTACK["benign"],
                                 attackers=ATTACK["attackers"],
                                 attack_rounds=ATTACK["attack_rounds"],
                                 quota_per_day=ATTACK_QUOTA, seed=4242)
        degradation = {
            op: {
                q: round(under_attack[op][q] - baseline[op][q], 3)
                for q in ("p50_ms", "p95_ms", "p99_ms")
            }
            for op in ("add", "get_page")
        }
        return {"baseline": baseline, "under_attack": under_attack,
                "benign_degradation_ms": degradation}
    point = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _attack.update(point)
    _write_results(results_dir)
    benchmark.extra_info.update({
        "benign_clients": ATTACK["benign"],
        "attackers": ATTACK["attackers"],
        "baseline_p99_add_ms": point["baseline"]["add"]["p99_ms"],
        "attack_p99_add_ms": point["under_attack"]["add"]["p99_ms"],
    })
    assert point["under_attack"]["attack_adds"] == (
        ATTACK["attackers"] * ATTACK["attack_rounds"]
    )
    assert point["baseline"]["requests_per_second"] > 0
    assert point["under_attack"]["benign_requests_per_second"] > 0


def _write_results(results_dir) -> None:
    lines = [
        "Figure 2 — Communix server throughput (swarm-driven)",
        "single swarm process, loopback TCP (1:10 of the paper's range):",
        "clients  paper_scale  req/s  add_p50/p95/p99_ms  get_p50/p95/p99_ms",
    ]
    for n in SWEEP:
        point = _series.get(n)
        if not point:
            continue
        add, get = point["add"], point["get_page"]
        lines.append(
            f"{n:7d}  {n * 10:10d}  {point['requests_per_second']:8.0f}  "
            f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/{add['p99_ms']:.0f}"
            f"{'':6}{get['p50_ms']:.0f}/{get['p95_ms']:.0f}/{get['p99_ms']:.0f}"
        )
    lines.append("")
    lines.append("federated swarm, UNIX socket (procs x clients; timed window"
                 " includes ISSUE_ID):")
    lines.append("held    procs  req/s  add_p50/p95/p99_ms  get_p50/p95/p99_ms")
    for point in _fed_series:
        add, get = point["add"], point["get_page"]
        lines.append(
            f"{point['held_simultaneously']:6d}  {point['procs']:5d}  "
            f"{point['requests_per_second']:8.0f}  "
            f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/{add['p99_ms']:.0f}"
            f"{'':6}{get['p50_ms']:.0f}/{get['p95_ms']:.0f}/{get['p99_ms']:.0f}"
        )
    if _server_procs_series:
        lines.append("")
        lines.append("federated server tier (--server-procs N, loopback TCP"
                     " via SO_REUSEPORT; ADDs forwarded to the log owner):")
        lines.append("clients  server_procs  req/s  add_p50/p95/p99_ms  "
                     "get_p50/p95/p99_ms")
        for point in _server_procs_series:
            add, get = point["add"], point["get_page"]
            lines.append(
                f"{point['clients']:7d}  {point['server_procs']:12d}  "
                f"{point['requests_per_second']:8.0f}  "
                f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/{add['p99_ms']:.0f}"
                f"{'':6}{get['p50_ms']:.0f}/{get['p95_ms']:.0f}/"
                f"{get['p99_ms']:.0f}"
            )
    if _rolling:
        lines.append("")
        lines.append(
            f"rolling cohort: {_rolling['distinct_sessions']} distinct "
            f"client sessions in {_rolling['waves']} waves of "
            f"{_rolling['clients_per_wave']} "
            f"({_rolling['requests_per_second']:.0f} req/s over the "
            f"{_rolling['elapsed_s']:.0f}s active window)"
        )
    if _attack:
        base, atk = _attack["baseline"], _attack["under_attack"]
        deg = _attack["benign_degradation_ms"]
        lines.append("")
        lines.append(
            f"latency under attack: {atk['benign_clients']} benign clients "
            f"vs +{atk['attackers']} quota-flooders "
            f"({atk['attack_adds']} attack ADDs, quota "
            f"{atk['quota_per_day']}/day)"
        )
        lines.append("op        baseline p50/p95/p99_ms   under-attack "
                     "p50/p95/p99_ms   degradation_ms")
        for op in ("add", "get_page"):
            b, a, d = base[op], atk[op], deg[op]
            lines.append(
                f"{op:<9} {b['p50_ms']:.0f}/{b['p95_ms']:.0f}/"
                f"{b['p99_ms']:.0f}{'':14}{a['p50_ms']:.0f}/"
                f"{a['p95_ms']:.0f}/{a['p99_ms']:.0f}{'':16}"
                f"+{d['p50_ms']:.0f}/+{d['p95_ms']:.0f}/+{d['p99_ms']:.0f}"
            )
    peaks = [p["requests_per_second"] for p in _series.values()]
    peaks += [p["requests_per_second"] for p in _fed_series]
    peaks += [p["requests_per_second"] for p in _server_procs_series]
    if _rolling:
        peaks.append(_rolling["requests_per_second"])
    if peaks:
        lines.append(
            f"peak requests/second: {max(peaks):.0f} "
            "(paper: ~9,000 on 8-core Xeon; this run: 1-core CPython, "
            "swarm and server sharing it)"
        )
    write_artifact(results_dir, "fig2_swarm.txt", lines)
    payload = {
        "benchmark": "fig2_swarm",
        "smoke": SMOKE,
        "scale": "1:10 single-process, 1:5 federated, 1:1 rolling-cohort "
                 "sessions",
        "page_size": PAGE_SIZE,
        "swarm_loops": LOOPS,
        "points": [_series[n] for n in SWEEP if n in _series],
        "federated_points": list(_fed_series),
        "federated_server_points": list(_server_procs_series),
        "rolling_cohort": dict(_rolling),
        "latency_under_attack": dict(_attack),
    }
    out = bench_json_path("BENCH_fig2_swarm")
    out.write_text(json.dumps(payload, indent=2) + "\n")
