"""EXP-F2 — Figure 2: Communix server request throughput, swarm-driven.

Paper setup: "we invoke the request processing routines from 1,000-100,000
simultaneous threads", each issuing one ``ADD(sig), GET`` sequence with a
random signature; the server validates every ADD (encrypted id, quota,
adjacency).  Reported: requests/second versus the number of simultaneous
sequences.  Paper shape: scales to ~30k sequences, peaking at ~9,000 req/s.

Scaling substitution, in three tiers:

* **Single-process sweep** (1:10, up to 10,000 clients): one
  ``repro.loadgen`` swarm process over loopback TCP against a server
  child — PR 2's configuration, kept for series continuity.
* **Federated sweep** (1:5, up to 20,000 *concurrently-held* clients):
  the 20k-FD per-process cap makes one swarm process top out near 10k
  sockets, so ``repro.loadgen.federation`` shards the swarm across worker
  processes — each with its own FD budget — over a **UNIX-socket**
  endpoint, barrier-released together, histograms merged by the
  coordinator.  At the top point the *server* itself sits at its FD
  ceiling: the last few dozen connections wait in the listen backlog
  (established from the client's side, so they are really held) until
  early finishers free descriptors.  Because clients park before token
  issuance, the timed window covers the full ``ISSUE_ID, ADD, GET(page)``
  session of every client.
* **Rolling cohort** (the paper's full 100k x-axis, approximated):
  ``waves`` disjoint cohorts of clients cycle through the federated
  swarm — 100,000 distinct client sessions total, concurrency bounded by
  one wave — merged into a single throughput/latency point.

A fourth section federates the *server* instead of the swarm: the top
single-process point re-run against ``--server-procs {2,4}``
SO_REUSEPORT worker processes over the single-writer group-commit log
(``repro.server.federation``).

A final section measures the PR 9 admission guard (``repro.guard``)
against the quota flood: the attack fleet is released *first*, so every
benign request competes with a flood in full swing, and three points —
guarded-clean (false-positive control), unguarded-attack (degradation
control), guarded-attack — turn the §III-C1 protection story into a
benign-p99 comparison.

Requests/second and merged p50/p95/p99 land in ``BENCH_fig2_swarm.json``
(``BENCH_fig2_swarm.smoke.json`` under ``COMMUNIX_BENCH_SMOKE=1`` — smoke
runs never overwrite the full series).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import bench_json_path, write_artifact
from benchmarks.swarm_common import (
    server_metrics_summary,
    swarm_server,
    wait_for_barrier,
)
from repro.loadgen.engine import SwarmEngine
from repro.loadgen.federation import federated_run
from repro.loadgen.scenarios import (
    OP_ADD,
    OP_ADD_ATTACK,
    OP_GET_PAGE,
    OP_ISSUE_ID,
    QuotaFlood,
    SteadyState,
)
#: Re-exported for the other benchmarks that import it from here.
from repro.loadgen.signatures import random_signature  # noqa: F401
from repro.loadgen.signatures import off_path_flood_blobs, random_signature_blobs

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"
#: 1:10 scale of the paper's 1k..100k sweep in one swarm process.
SWEEP = (50, 200) if SMOKE else (100, 1000, 2000, 5000, 10000)
#: Federated (procs, clients) points over a UNIX socket: past one
#: process's FD budget, up to the *server's* own 20k-FD ceiling.
FED_SWEEP = ((2, 100),) if SMOKE else ((2, 14000), (2, 20000))
#: Rolling cohort (procs, clients_per_wave, waves): distinct sessions =
#: clients_per_wave x waves — 100k in the full run.
ROLLING = (2, 60, 2) if SMOKE else (2, 10000, 10)
#: Federated *server* tier (server_procs, clients): the same swarm as
#: SWEEP's top point, but the server side runs ``--server-procs N``
#: SO_REUSEPORT workers over the single-writer group-commit log.  On a
#: multi-core host the workers spread request validation across cores;
#: this container has one core, so these points price the *protocol*
#: (ADD forwarding hop, apply-stream, extra scheduling) instead — see
#: the docs' federated-tier section for the honest read of the numbers.
SERVER_PROCS_SWEEP = ((2, 50),) if SMOKE else ((2, 10000), (4, 10000))
#: Latency-under-attack point: a benign steady-state swarm with a
#: quota-flood fleet (one valid identity each, ``attack_rounds`` spam ADDs
#: bounded by a 10/day quota) hammering the same server — the §IV-B
#: protection story measured *online*, as benign p50/p95/p99 degradation
#: against the attacker-free baseline.
ATTACK = (dict(benign=50, attackers=15, attack_rounds=5) if SMOKE
          else dict(benign=2000, attackers=400, attack_rounds=25))
ATTACK_QUOTA = 10
#: Guard point (PR 9): benign service quality *during an ongoing flood*.
#: The flood is released ``attack_lead_s`` before the benign swarm, so a
#: guarded server has had a scoring window to classify the flooders by
#: the time the first benign request arrives — the regime the guard is
#: for (a quota flood is not a two-second event).  ``benign`` light
#: steady-state clients (``benign_rounds`` ADD+GET rounds, ``think_time``
#: apart — well under every per-key guard budget) measure latency; the
#: ``attackers`` quota-flooders are pressure, not measurement, and are
#: stopped once the benign window closes.  ``guard_tarpit`` throttles
#: each shed closed-loop flooder to ~1/tarpit req/s, so the guarded
#: loop sees ~attackers/tarpit cheap shed frames per second instead of
#: the flood's full parse+validate demand.
GUARD_FLOOD = (dict(benign=24, benign_rounds=3, think_time=0.05,
                    start_spread_s=0.2, attackers=6, attack_rounds=400,
                    guard_budget=16, guard_window=0.4, guard_tarpit=0.05,
                    attack_lead_s=1.0)
               if SMOKE else
               dict(benign=200, benign_rounds=6, think_time=0.2,
                    start_spread_s=1.0, attackers=300, attack_rounds=250,
                    guard_budget=16, guard_window=1.0, guard_tarpit=0.25,
                    attack_lead_s=2.5))
PAGE_SIZE = 256
LOOPS = 2

_series: dict[int, dict] = {}
_fed_series: list[dict] = []
_server_procs_series: list[dict] = []
_rolling: dict = {}
_attack: dict = {}
_guard_flood: dict = {}


def _sock_path(tag: str) -> str:
    return f"/tmp/communix-fig2-{tag}-{os.getpid()}.sock"


def run_point(n_clients: int, *, attackers: int = 0, attack_rounds: int = 0,
              quota_per_day: int = 1000, seed: int | None = None,
              server_args: list[str] | None = None,
              capture_server_metrics: bool = True) -> dict:
    """One single-process point: n benign swarm clients x (ADD, GET page),
    timed after the connect-and-token ramp, behind a start barrier —
    optionally with a ``attackers``-strong quota-flood fleet parked at the
    same barrier (the latency-under-attack configuration).  Benign op
    latencies come only from benign clients; the attack traffic is
    tracked under its own op labels.

    Unless metrics are off, the server child writes a ``--metrics-log``
    whose final (shutdown) snapshot becomes the point's
    ``server_metrics`` section — the server-side view (per-stage
    latencies, event-loop lag, fsync waits) of the same window the swarm
    measured from the outside."""
    blobs = random_signature_blobs(n_clients,
                                   seed=n_clients if seed is None else seed)
    n_total = n_clients + attackers
    benign = [
        SteadyState([blob], page_size=PAGE_SIZE, park_after_setup=True)
        for blob in blobs
    ]
    extra_args = list(server_args or [])
    metrics_log = None
    if capture_server_metrics and "--no-metrics" not in extra_args:
        metrics_log = f"/tmp/communix-fig2-metrics-{os.getpid()}.jsonl"
        try:
            os.unlink(metrics_log)
        except OSError:
            pass
        extra_args += ["--metrics-log", metrics_log,
                       "--metrics-interval", "30"]
    with swarm_server(quota_per_day=quota_per_day,
                      server_args=extra_args) as endpoint:
        engine = SwarmEngine(
            endpoint, loops=LOOPS, connect_burst=512, connect_timeout=60.0
        )
        engine.add_clients(benign)
        engine.add_clients(
            QuotaFlood(off_path_flood_blobs(attack_rounds, seed=100_000 + i),
                       park_on_connect=True)
            for i in range(attackers)
        )
        engine.start()
        try:
            wait_timeout = (max(240.0, n_total * 0.1) if attackers
                            else max(180.0, n_clients * 0.05))
            wait_for_barrier(engine, n_total,
                             timeout=max(120.0, n_total * 0.02))
            held = engine.connected_count
            released_at = engine.release()
            # Benign throughput must be measured over the *benign* window:
            # the attacker fleet keeps running after the last benign client
            # finishes, and counting that tail would understate benign
            # req/s (and overstate degradation) by a windowing artifact.
            benign_completed_at = None
            if attackers:
                deadline = time.monotonic() + wait_timeout
                while time.monotonic() < deadline:
                    if all(s.completed or s.failed for s in benign):
                        break
                    time.sleep(0.01)
                benign_completed_at = time.monotonic()
            finished = engine.wait(timeout=wait_timeout)
            completed_at = engine.completed_at
        finally:
            engine.stop()
    snapshot = engine.snapshot()
    assert finished, (
        f"{engine.client_count - engine.finished_count} clients unfinished"
    )
    assert snapshot.errors == {}, snapshot.errors
    assert held >= n_total
    elapsed = completed_at - released_at
    requests = snapshot.count(OP_ADD) + snapshot.count(OP_GET_PAGE)
    point = {
        "clients": n_clients,
        "held_simultaneously": held,
        "timed_requests": requests,
        "elapsed_s": round(elapsed, 3),
        "requests_per_second": round(requests / elapsed, 1),
        "add": snapshot.histograms[OP_ADD].summary(),
        "get_page": snapshot.histograms[OP_GET_PAGE].summary(),
    }
    if attackers:
        benign_elapsed = benign_completed_at - released_at
        benign_rps = round(requests / benign_elapsed, 1)
        point.update({
            "benign_clients": n_clients,
            "attackers": attackers,
            "quota_per_day": quota_per_day,
            "benign_elapsed_s": round(benign_elapsed, 3),
            "benign_requests_per_second": benign_rps,
            # Overwrite: dividing benign requests by the full window
            # (which includes the attacker-only tail) is exactly the
            # artifact the benign window exists to avoid, and the
            # same-named baseline field invites that comparison.
            "requests_per_second": benign_rps,
            "attack_adds": snapshot.count(OP_ADD_ATTACK),
            "attack_add": snapshot.histograms[OP_ADD_ATTACK].summary(),
        })
    if metrics_log is not None:
        # The context manager above SIGTERMed the child; its shutdown
        # snapshot (post-drain) is the last line of the metrics log.
        point["server_metrics"] = server_metrics_summary(metrics_log)
        try:
            os.unlink(metrics_log)
        except OSError:
            pass
    return point


def run_guard_point(*, attackers: int, guarded: bool) -> dict:
    """One guard point: ``GUARD_FLOOD['benign']`` light steady-state
    clients released into a quota flood already ``attack_lead_s`` old.
    The benign engine is the measurement; the attack engine is load and
    is stopped (mid-flood) once the last benign client finishes.  Benign
    workload and seeds are identical across the three points, so the
    add/get histograms compare apples to apples."""
    g = GUARD_FLOOD
    n_benign, rounds = g["benign"], g["benign_rounds"]
    blobs = random_signature_blobs(n_benign * rounds, seed=7700)
    # Staggered first ADDs: the percentiles must price steady-state
    # service under flood, not the swarm's own barrier-release burst.
    benign = [
        SteadyState(blobs[i * rounds:(i + 1) * rounds], page_size=PAGE_SIZE,
                    think_time=g["think_time"], park_after_setup=True,
                    initial_delay=i * g["start_spread_s"] / n_benign)
        for i in range(n_benign)
    ]
    flooders = [
        QuotaFlood(off_path_flood_blobs(g["attack_rounds"],
                                        seed=200_000 + i),
                   park_on_connect=True)
        for i in range(attackers)
    ]
    server_args = []
    if guarded:
        server_args += ["--guard",
                        "--guard-budget", str(g["guard_budget"]),
                        "--guard-window", str(g["guard_window"]),
                        "--guard-tarpit", str(g["guard_tarpit"])]
    metrics_log = f"/tmp/communix-fig2-guard-metrics-{os.getpid()}.jsonl"
    try:
        os.unlink(metrics_log)
    except OSError:
        pass
    server_args += ["--metrics-log", metrics_log, "--metrics-interval", "30"]
    with swarm_server(quota_per_day=ATTACK_QUOTA,
                      server_args=server_args) as endpoint:
        attack = SwarmEngine(endpoint, loops=LOOPS, connect_burst=512,
                             connect_timeout=60.0)
        attack.add_clients(flooders)
        engine = SwarmEngine(endpoint, loops=LOOPS, connect_burst=512,
                             connect_timeout=60.0)
        engine.add_clients(benign)
        try:
            if attackers:
                attack.start()
                wait_for_barrier(attack, attackers,
                                 timeout=max(120.0, attackers * 0.05))
                attack.release()
                time.sleep(g["attack_lead_s"])
            engine.start()
            wait_for_barrier(engine, n_benign,
                             timeout=max(180.0, n_benign * 0.1))
            released_at = engine.release()
            finished = engine.wait(
                timeout=max(240.0, n_benign * rounds * 0.5))
            completed_at = engine.completed_at
        finally:
            attack.stop()  # pressure source, not a measurement
            engine.stop()
    snapshot = engine.snapshot()
    assert finished, (
        f"{engine.client_count - engine.finished_count} benign clients "
        "unfinished"
    )
    assert snapshot.errors == {}, snapshot.errors
    elapsed = completed_at - released_at
    requests = snapshot.count(OP_ADD) + snapshot.count(OP_GET_PAGE)
    point = {
        "benign_clients": n_benign,
        "benign_rounds": rounds,
        "think_time_s": g["think_time"],
        "attackers": attackers,
        "guarded": guarded,
        "quota_per_day": ATTACK_QUOTA,
        "attack_lead_s": g["attack_lead_s"] if attackers else 0.0,
        "timed_requests": requests,
        "elapsed_s": round(elapsed, 3),
        "requests_per_second": round(requests / elapsed, 1),
        "benign_accepted": sum(s.accepted for s in benign),
        "benign_failed": sum(1 for s in benign if s.failed),
        "add": snapshot.histograms[OP_ADD].summary(),
        "get_page": snapshot.histograms[OP_GET_PAGE].summary(),
    }
    if attackers:
        verdicts: dict[str, int] = {}
        for flooder in flooders:
            for verdict, n in flooder.verdicts.items():
                verdicts[verdict] = verdicts.get(verdict, 0) + n
        point["attack_adds_sent"] = attack.snapshot().count(OP_ADD_ATTACK)
        point["attack_verdicts"] = verdicts
    point["server_metrics"] = server_metrics_summary(metrics_log)
    point["guard_counters"] = {
        k: v for k, v in point["server_metrics"]["counters"].items()
        if k.startswith("guard.")
    }
    try:
        os.unlink(metrics_log)
    except OSError:
        pass
    return point


def run_federated_point(procs: int, n_clients: int,
                        waves: int = 1) -> dict:
    """One federated point: ``n_clients`` split over ``procs`` worker
    processes against a UNIX-socket server child; every client parks at
    the cross-process barrier, then runs ``ISSUE_ID, ADD, GET(page)``."""
    timeout = max(180.0, n_clients * waves * 0.05)
    with swarm_server(addr=f"unix://{_sock_path(f'{procs}x{n_clients}')}",
                      backlog=4096) as endpoint:
        report = federated_run(
            connect=endpoint.url(), procs=procs, clients=n_clients,
            scenario="steady", rounds=1, page_size=PAGE_SIZE, loops=LOOPS,
            connect_burst=512, timeout=timeout, seed=n_clients, waves=waves,
        )
    assert report.ok, report.failures
    assert report.snapshot.errors == {}, report.snapshot.errors
    assert report.held_peak >= n_clients
    snapshot = report.snapshot
    point = {
        "clients": n_clients,
        "procs": procs,
        "transport": "unix",
        "held_simultaneously": report.held_peak,
        "timed_requests": snapshot.completed,
        "elapsed_s": round(report.elapsed_s, 3),
        "requests_per_second": report.requests_per_s,
        "issue_id": snapshot.histograms[OP_ISSUE_ID].summary(),
        "add": snapshot.histograms[OP_ADD].summary(),
        "get_page": snapshot.histograms[OP_GET_PAGE].summary(),
        "per_worker": [
            {"clients": w.clients, "held": w.held, "elapsed_s": w.elapsed_s}
            for w in report.workers
        ],
    }
    if waves > 1:
        point.update({
            "mode": "rolling_cohort",
            "waves": waves,
            "clients_per_wave": n_clients,
            "distinct_sessions": report.distinct_sessions,
        })
    return point


@pytest.mark.parametrize("n_clients", SWEEP)
def test_fig2_swarm_throughput(benchmark, n_clients, results_dir):
    point = benchmark.pedantic(
        run_point, args=(n_clients,), rounds=1, iterations=1
    )
    _series[n_clients] = point
    # Rewrite the artifacts after every point: a later point failing (or
    # a partial run) must not discard the sweep data measured so far.
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items() if not isinstance(v, dict)}
    )
    assert point["requests_per_second"] > 0
    assert point["held_simultaneously"] >= n_clients


@pytest.mark.parametrize("procs,n_clients", FED_SWEEP)
def test_fig2_federated_swarm(benchmark, procs, n_clients, results_dir):
    point = benchmark.pedantic(
        run_federated_point, args=(procs, n_clients), rounds=1, iterations=1
    )
    _fed_series.append(point)
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items()
         if not isinstance(v, (dict, list))}
    )
    assert point["requests_per_second"] > 0
    assert point["held_simultaneously"] >= n_clients


@pytest.mark.parametrize("server_procs,n_clients", SERVER_PROCS_SWEEP)
def test_fig2_federated_server_tier(benchmark, server_procs, n_clients,
                                    results_dir):
    """SWEEP's workload against a ``--server-procs N`` federated server:
    N SO_REUSEPORT workers, ADDs funneled through the log owner.  The
    point's ``server_metrics`` is the coordinator's *merged* registry —
    one snapshot pooled over every worker."""
    point = benchmark.pedantic(
        run_point, args=(n_clients,),
        kwargs={"server_args": ["--server-procs", str(server_procs)]},
        rounds=1, iterations=1,
    )
    point["server_procs"] = server_procs
    _server_procs_series.append(point)
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items() if not isinstance(v, dict)}
    )
    assert point["requests_per_second"] > 0
    assert point["held_simultaneously"] >= n_clients


def test_fig2_rolling_cohort(benchmark, results_dir):
    """100k distinct client sessions cycled through the federated swarm
    in disjoint waves (concurrency = one wave's clients)."""
    procs, per_wave, waves = ROLLING
    point = benchmark.pedantic(
        run_federated_point, args=(procs, per_wave), kwargs={"waves": waves},
        rounds=1, iterations=1,
    )
    _rolling.update(point)
    _write_results(results_dir)
    benchmark.extra_info.update(
        {k: v for k, v in point.items()
         if not isinstance(v, (dict, list))}
    )
    assert point["distinct_sessions"] == per_wave * waves
    assert point["requests_per_second"] > 0


def test_fig2_latency_under_attack(benchmark, results_dir):
    """Benign p50/p95/p99 with a quota-flood fleet vs. a clean baseline
    (the ROADMAP "latency under attack" item)."""
    def run_both() -> dict:
        baseline = run_point(ATTACK["benign"], quota_per_day=ATTACK_QUOTA,
                             seed=4242)
        under_attack = run_point(ATTACK["benign"],
                                 attackers=ATTACK["attackers"],
                                 attack_rounds=ATTACK["attack_rounds"],
                                 quota_per_day=ATTACK_QUOTA, seed=4242)
        degradation = {
            op: {
                q: round(under_attack[op][q] - baseline[op][q], 3)
                for q in ("p50_ms", "p95_ms", "p99_ms")
            }
            for op in ("add", "get_page")
        }
        return {"baseline": baseline, "under_attack": under_attack,
                "benign_degradation_ms": degradation}
    point = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _attack.update(point)
    _write_results(results_dir)
    benchmark.extra_info.update({
        "benign_clients": ATTACK["benign"],
        "attackers": ATTACK["attackers"],
        "baseline_p99_add_ms": point["baseline"]["add"]["p99_ms"],
        "attack_p99_add_ms": point["under_attack"]["add"]["p99_ms"],
    })
    assert point["under_attack"]["attack_adds"] == (
        ATTACK["attackers"] * ATTACK["attack_rounds"]
    )
    assert point["baseline"]["requests_per_second"] > 0
    assert point["under_attack"]["benign_requests_per_second"] > 0


def test_fig2_guard_quota_flood(benchmark, results_dir):
    """PR 9 tentpole: benign p99 during an ongoing quota flood, guarded
    vs unguarded, against a guarded attacker-free baseline.  The guarded
    clean run doubles as the false-positive control (zero benign
    requests shed)."""
    def run_all() -> dict:
        clean = run_guard_point(attackers=0, guarded=True)
        unguarded = run_guard_point(attackers=GUARD_FLOOD["attackers"],
                                    guarded=False)
        guarded = run_guard_point(attackers=GUARD_FLOOD["attackers"],
                                  guarded=True)

        def ratio(a: float, b: float) -> float | None:
            return round(a / b, 2) if b else None

        return {
            "config": dict(GUARD_FLOOD),
            "guarded_clean": clean,
            "unguarded_attack": unguarded,
            "guarded_attack": guarded,
            "benign_add_p99_ratio": {
                "unguarded_over_clean": ratio(
                    unguarded["add"]["p99_ms"], clean["add"]["p99_ms"]),
                "guarded_over_clean": ratio(
                    guarded["add"]["p99_ms"], clean["add"]["p99_ms"]),
            },
            "benign_add_p50_ratio": {
                "unguarded_over_clean": ratio(
                    unguarded["add"]["p50_ms"], clean["add"]["p50_ms"]),
                "guarded_over_clean": ratio(
                    guarded["add"]["p50_ms"], clean["add"]["p50_ms"]),
            },
        }

    point = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _guard_flood.update(point)
    _write_results(results_dir)
    clean = point["guarded_clean"]
    unguarded = point["unguarded_attack"]
    guarded = point["guarded_attack"]
    benchmark.extra_info.update({
        "clean_p99_add_ms": clean["add"]["p99_ms"],
        "unguarded_p99_add_ms": unguarded["add"]["p99_ms"],
        "guarded_p99_add_ms": guarded["add"]["p99_ms"],
        "guarded_shed": guarded["guard_counters"].get("guard.shed", 0),
    })
    expected = GUARD_FLOOD["benign"] * GUARD_FLOOD["benign_rounds"]
    # False-positive control: a guarded server under purely benign load
    # sheds and throttles nothing, and every benign ADD lands.
    assert clean["benign_accepted"] == expected
    assert clean["benign_failed"] == 0
    assert clean["guard_counters"]["guard.shed"] == 0
    assert clean["guard_counters"]["guard.throttled"] == 0
    # Under the flood the guard engaged (sheds > 0) and still admitted
    # every benign request.
    assert guarded["guard_counters"]["guard.shed"] > 0
    assert guarded["benign_accepted"] == expected
    assert unguarded["benign_accepted"] == expected
    if not SMOKE:
        # The §III-C1 claim: guarded benign p99 stays within 2x of the
        # attacker-free baseline.
        p99 = point["benign_add_p99_ratio"]
        assert p99["guarded_over_clean"] <= 2.0, p99
        # ... while the unguarded control degrades.  The degradation is
        # asserted at the median: the clean baseline's own p99 at this
        # scale is a handful of scheduler/GC outliers (p50 ~2ms, p99
        # >100ms), so a tail-over-tail ratio is noise, but the flood
        # shifting the *typical* benign request by over 2x is signal.
        p50 = point["benign_add_p50_ratio"]
        assert p50["unguarded_over_clean"] > 2.0, p50
        assert unguarded["add"]["p50_ms"] > 2.0 * guarded["add"]["p50_ms"], (
            unguarded["add"], guarded["add"])


def _load_previous_payload() -> dict:
    """The artifact's last run.  ``_write_results`` rebuilds the whole
    JSON from this module's accumulators, so a partial re-run (say, the
    guard point alone) must seed the sections it did not measure from
    the committed series instead of clobbering them."""
    try:
        return json.loads(bench_json_path("BENCH_fig2_swarm").read_text())
    except (OSError, ValueError):
        return {}


def _write_results(results_dir) -> None:
    lines = [
        "Figure 2 — Communix server throughput (swarm-driven)",
        "single swarm process, loopback TCP (1:10 of the paper's range):",
        "clients  paper_scale  req/s  add_p50/p95/p99_ms  get_p50/p95/p99_ms",
    ]
    for n in SWEEP:
        point = _series.get(n)
        if not point:
            continue
        add, get = point["add"], point["get_page"]
        lines.append(
            f"{n:7d}  {n * 10:10d}  {point['requests_per_second']:8.0f}  "
            f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/{add['p99_ms']:.0f}"
            f"{'':6}{get['p50_ms']:.0f}/{get['p95_ms']:.0f}/{get['p99_ms']:.0f}"
        )
    lines.append("")
    lines.append("federated swarm, UNIX socket (procs x clients; timed window"
                 " includes ISSUE_ID):")
    lines.append("held    procs  req/s  add_p50/p95/p99_ms  get_p50/p95/p99_ms")
    for point in _fed_series:
        add, get = point["add"], point["get_page"]
        lines.append(
            f"{point['held_simultaneously']:6d}  {point['procs']:5d}  "
            f"{point['requests_per_second']:8.0f}  "
            f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/{add['p99_ms']:.0f}"
            f"{'':6}{get['p50_ms']:.0f}/{get['p95_ms']:.0f}/{get['p99_ms']:.0f}"
        )
    if _server_procs_series:
        lines.append("")
        lines.append("federated server tier (--server-procs N, loopback TCP"
                     " via SO_REUSEPORT; ADDs forwarded to the log owner):")
        lines.append("clients  server_procs  req/s  add_p50/p95/p99_ms  "
                     "get_p50/p95/p99_ms")
        for point in _server_procs_series:
            add, get = point["add"], point["get_page"]
            lines.append(
                f"{point['clients']:7d}  {point['server_procs']:12d}  "
                f"{point['requests_per_second']:8.0f}  "
                f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/{add['p99_ms']:.0f}"
                f"{'':6}{get['p50_ms']:.0f}/{get['p95_ms']:.0f}/"
                f"{get['p99_ms']:.0f}"
            )
    if _rolling:
        lines.append("")
        lines.append(
            f"rolling cohort: {_rolling['distinct_sessions']} distinct "
            f"client sessions in {_rolling['waves']} waves of "
            f"{_rolling['clients_per_wave']} "
            f"({_rolling['requests_per_second']:.0f} req/s over the "
            f"{_rolling['elapsed_s']:.0f}s active window)"
        )
    if _attack:
        base, atk = _attack["baseline"], _attack["under_attack"]
        deg = _attack["benign_degradation_ms"]
        lines.append("")
        lines.append(
            f"latency under attack: {atk['benign_clients']} benign clients "
            f"vs +{atk['attackers']} quota-flooders "
            f"({atk['attack_adds']} attack ADDs, quota "
            f"{atk['quota_per_day']}/day)"
        )
        lines.append("op        baseline p50/p95/p99_ms   under-attack "
                     "p50/p95/p99_ms   degradation_ms")
        for op in ("add", "get_page"):
            b, a, d = base[op], atk[op], deg[op]
            lines.append(
                f"{op:<9} {b['p50_ms']:.0f}/{b['p95_ms']:.0f}/"
                f"{b['p99_ms']:.0f}{'':14}{a['p50_ms']:.0f}/"
                f"{a['p95_ms']:.0f}/{a['p99_ms']:.0f}{'':16}"
                f"+{d['p50_ms']:.0f}/+{d['p95_ms']:.0f}/+{d['p99_ms']:.0f}"
            )
    if _guard_flood:
        cfg = _guard_flood["config"]
        ratios = _guard_flood["benign_add_p99_ratio"]
        lines.append("")
        lines.append(
            f"admission guard vs quota flood: {cfg['benign']} benign "
            f"clients ({cfg['benign_rounds']} rounds) arriving "
            f"{cfg['attack_lead_s']}s into a {cfg['attackers']}-flooder "
            f"quota flood (quota {ATTACK_QUOTA}/day, guard budget "
            f"{cfg['guard_budget']}, window {cfg['guard_window']}s)"
        )
        lines.append("point             req/s  add_p50/p95/p99_ms  "
                     "accepted  guard_shed")
        for key in ("guarded_clean", "unguarded_attack", "guarded_attack"):
            p = _guard_flood[key]
            add = p["add"]
            shed = p["guard_counters"].get("guard.shed", "-")
            lines.append(
                f"{key:<17} {p['requests_per_second']:6.0f}  "
                f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/"
                f"{add['p99_ms']:.0f}{'':8}{p['benign_accepted']:8d}  "
                f"{shed}"
            )
        p50 = _guard_flood["benign_add_p50_ratio"]
        lines.append(
            f"benign add p99 vs clean baseline: unguarded "
            f"{ratios['unguarded_over_clean']}x, guarded "
            f"{ratios['guarded_over_clean']}x "
            f"(p50: unguarded {p50['unguarded_over_clean']}x, guarded "
            f"{p50['guarded_over_clean']}x)"
        )
    peaks = [p["requests_per_second"] for p in _series.values()]
    peaks += [p["requests_per_second"] for p in _fed_series]
    peaks += [p["requests_per_second"] for p in _server_procs_series]
    if _rolling:
        peaks.append(_rolling["requests_per_second"])
    if peaks:
        lines.append(
            f"peak requests/second: {max(peaks):.0f} "
            "(paper: ~9,000 on 8-core Xeon; this run: 1-core CPython, "
            "swarm and server sharing it)"
        )
    write_artifact(results_dir, "fig2_swarm.txt", lines)
    previous = _load_previous_payload()
    payload = {
        "benchmark": "fig2_swarm",
        "smoke": SMOKE,
        "scale": "1:10 single-process, 1:5 federated, 1:1 rolling-cohort "
                 "sessions",
        "page_size": PAGE_SIZE,
        "swarm_loops": LOOPS,
        "points": ([_series[n] for n in SWEEP if n in _series]
                   or previous.get("points", [])),
        "federated_points": (list(_fed_series)
                             or previous.get("federated_points", [])),
        "federated_server_points": (
            list(_server_procs_series)
            or previous.get("federated_server_points", [])),
        "rolling_cohort": dict(_rolling) or previous.get(
            "rolling_cohort", {}),
        "latency_under_attack": dict(_attack) or previous.get(
            "latency_under_attack", {}),
        "guard_quota_flood": dict(_guard_flood) or previous.get(
            "guard_quota_flood", {}),
    }
    out = bench_json_path("BENCH_fig2_swarm")
    out.write_text(json.dumps(payload, indent=2) + "\n")
