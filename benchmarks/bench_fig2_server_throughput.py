"""EXP-F2 — Figure 2: Communix server request throughput.

Paper setup: "we invoke the request processing routines from 1,000-100,000
simultaneous threads", each issuing one ``ADD(sig), GET(0)`` sequence with a
random signature; the server validates every ADD (encrypted id, quota,
adjacency) and GET(0) walks the whole database.  Reported: requests/second
versus the number of simultaneous sequences.  Paper shape: scales to ~30k
sequences, peaking at ~9,000 req/s.

Scaling substitution (DESIGN.md): CPython cannot host 100k OS threads, so
the sweep runs 1:100 — 10..1,000 threads.  The shape to reproduce is the
rise to a knee followed by degradation, not the absolute numbers.
"""

from __future__ import annotations

import random
import threading

import pytest

from benchmarks.conftest import write_artifact
from repro.core.signature import CallStack, DeadlockSignature, Frame, ThreadSignature
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.util.clock import ManualClock

#: 1:100 scale of the paper's 1k..100k sweep.
SWEEP = (10, 50, 100, 200, 300, 400, 500, 750, 1000)

_series: dict[int, float] = {}


def random_signature(rng: random.Random) -> DeadlockSignature:
    """A random two-thread signature (what the paper's load generator sends)."""

    def stack(tag: int) -> CallStack:
        return CallStack(
            Frame(
                class_name=f"load.C{rng.randrange(10_000)}",
                method=f"m{rng.randrange(100)}",
                line=rng.randrange(1, 5_000),
                code_hash=f"{rng.getrandbits(64):016x}",
            )
            for _ in range(6)
        )

    threads = (
        ThreadSignature(outer=stack(0), inner=stack(1)),
        ThreadSignature(outer=stack(2), inner=stack(3)),
    )
    return DeadlockSignature(threads=threads, origin="remote")


def run_point(n_threads: int) -> float:
    """One sweep point: n threads x (ADD, GET(0)); returns requests/second."""
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(42)),
        clock=ManualClock(start=1_000_000.0),
    )
    rng = random.Random(n_threads)
    # Prepared outside the timed region, as the paper's load generator is:
    # one user id per client and one random signature each.
    tokens = [server.issue_user_token() for _ in range(n_threads)]
    blobs = [random_signature(rng).to_bytes() for _ in range(n_threads)]
    start_gate = threading.Event()
    done = threading.Barrier(n_threads + 1)

    def client(index: int) -> None:
        start_gate.wait()
        server.process_add(blobs[index], tokens[index])
        server.process_get(0)
        done.wait()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    import time

    started = time.perf_counter()
    start_gate.set()
    done.wait()
    elapsed = time.perf_counter() - started
    for t in threads:
        t.join()
    requests = 2 * n_threads
    return requests / elapsed


@pytest.mark.parametrize("n_threads", SWEEP)
def test_fig2_server_throughput(benchmark, n_threads, results_dir):
    rps = benchmark.pedantic(run_point, args=(n_threads,), rounds=1, iterations=1)
    _series[n_threads] = rps
    benchmark.extra_info["requests_per_second"] = rps
    assert rps > 0
    if n_threads == SWEEP[-1]:
        lines = [
            "Figure 2 — Communix server throughput (scaled 1:100)",
            "threads  simultaneous_sequences(paper-scale)  requests_per_second",
        ]
        for n in SWEEP:
            if n in _series:
                lines.append(f"{n:7d}  {n * 100:10d}  {_series[n]:12.0f}")
        peak = max(_series.values())
        lines.append(f"peak requests/second: {peak:.0f} (paper: ~9,000 on 8-core Xeon)")
        write_artifact(results_dir, "fig2_server_throughput.txt", lines)
