"""EXP-F2 — Figure 2: Communix server request throughput, swarm-driven.

Paper setup: "we invoke the request processing routines from 1,000-100,000
simultaneous threads", each issuing one ``ADD(sig), GET`` sequence with a
random signature; the server validates every ADD (encrypted id, quota,
adjacency).  Reported: requests/second versus the number of simultaneous
sequences.  Paper shape: scales to ~30k sequences, peaking at ~9,000 req/s.

Scaling substitution: the seed ran this 1:100 (10..1,000 OS threads — the
thread-per-connection ceiling).  The ``repro.loadgen`` swarm multiplexes
simulated clients over a few event loops, so the sweep now runs **1:10 —
up to 10,000 concurrent clients in a single swarm process** — against a
server child process (see ``swarm_common`` for the FD arithmetic), over
real loopback TCP.

Every client connects, obtains a token (untimed setup, as the paper's
load generator pre-issues ids), parks at a start barrier, and on release
performs the timed ``ADD(sig), GET(page)`` sequence.  Requests/second and
p50/p95/p99 latency per op land in ``BENCH_fig2_swarm.json``.

Set ``COMMUNIX_BENCH_SMOKE=1`` for a CI-sized run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import write_artifact
from benchmarks.swarm_common import swarm_server, wait_for_barrier
from repro.loadgen.engine import SwarmEngine
from repro.loadgen.scenarios import OP_ADD, OP_GET_PAGE, SteadyState
#: Re-exported for the other benchmarks that import it from here.
from repro.loadgen.signatures import random_signature  # noqa: F401
from repro.loadgen.signatures import random_signature_blobs

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"
#: 1:10 scale of the paper's 1k..100k sweep (the seed managed 1:100).
SWEEP = (50, 200) if SMOKE else (100, 1000, 2000, 5000, 10000)
PAGE_SIZE = 256
LOOPS = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent
_series: dict[int, dict] = {}


def run_point(n_clients: int) -> dict:
    """One sweep point: n swarm clients x (ADD, GET page); timed after the
    connect-and-token ramp, behind a start barrier."""
    blobs = random_signature_blobs(n_clients, seed=n_clients)
    with swarm_server() as (host, port):
        engine = SwarmEngine(
            host, port, loops=LOOPS, connect_burst=512, connect_timeout=60.0
        )
        engine.add_clients(
            SteadyState([blob], page_size=PAGE_SIZE, park_after_setup=True)
            for blob in blobs
        )
        engine.start()
        try:
            wait_for_barrier(engine, n_clients,
                             timeout=max(120.0, n_clients * 0.02))
            held = engine.connected_count
            released_at = engine.release()
            finished = engine.wait(timeout=max(180.0, n_clients * 0.05))
            completed_at = engine.completed_at
        finally:
            engine.stop()
    snapshot = engine.snapshot()
    assert finished, (
        f"{engine.client_count - engine.finished_count} clients unfinished"
    )
    assert snapshot.errors == {}, snapshot.errors
    assert held >= n_clients
    elapsed = completed_at - released_at
    requests = snapshot.count(OP_ADD) + snapshot.count(OP_GET_PAGE)
    return {
        "clients": n_clients,
        "held_simultaneously": held,
        "timed_requests": requests,
        "elapsed_s": round(elapsed, 3),
        "requests_per_second": round(requests / elapsed, 1),
        "add": snapshot.histograms[OP_ADD].summary(),
        "get_page": snapshot.histograms[OP_GET_PAGE].summary(),
    }


@pytest.mark.parametrize("n_clients", SWEEP)
def test_fig2_swarm_throughput(benchmark, n_clients, results_dir):
    point = benchmark.pedantic(
        run_point, args=(n_clients,), rounds=1, iterations=1
    )
    _series[n_clients] = point
    benchmark.extra_info.update(
        {k: v for k, v in point.items() if not isinstance(v, dict)}
    )
    assert point["requests_per_second"] > 0
    assert point["held_simultaneously"] >= n_clients
    if n_clients == SWEEP[-1]:
        _write_results(results_dir)


def _write_results(results_dir) -> None:
    lines = [
        "Figure 2 — Communix server throughput (swarm-driven, scaled 1:10)",
        "clients  paper_scale  req/s  add_p50/p95/p99_ms  get_p50/p95/p99_ms",
    ]
    for n in SWEEP:
        point = _series.get(n)
        if not point:
            continue
        add, get = point["add"], point["get_page"]
        lines.append(
            f"{n:7d}  {n * 10:10d}  {point['requests_per_second']:8.0f}  "
            f"{add['p50_ms']:.0f}/{add['p95_ms']:.0f}/{add['p99_ms']:.0f}"
            f"{'':6}{get['p50_ms']:.0f}/{get['p95_ms']:.0f}/{get['p99_ms']:.0f}"
        )
    peak = max(p["requests_per_second"] for p in _series.values())
    lines.append(
        f"peak requests/second: {peak:.0f} "
        "(paper: ~9,000 on 8-core Xeon; this run: 1-core CPython, "
        "swarm and server sharing it)"
    )
    write_artifact(results_dir, "fig2_swarm.txt", lines)
    payload = {
        "benchmark": "fig2_swarm",
        "smoke": SMOKE,
        "scale": "1:10",
        "page_size": PAGE_SIZE,
        "swarm_loops": LOOPS,
        "points": [_series[n] for n in SWEEP if n in _series],
    }
    out = _REPO_ROOT / "BENCH_fig2_swarm.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
