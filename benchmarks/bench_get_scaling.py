"""EXP-GS — GET throughput vs. database size, before/after the sharded
segment-cache database, plus the event-loop concurrent-connection point.

The seed served every ``GET(k)`` by slicing (copying) the whole blob list
under one lock and re-packing each blob into the response — O(n) per
request.  The sharded database answers the same request from precomposed
per-segment byte caches: O(segments) chunk lookups and one join.  This
benchmark measures both paths on identical data so the speedup is
attributable to the storage layer alone.

The second experiment holds ≥1,000 simultaneous *persistent* TCP
connections against the event-driven transport (the paper's Fig. 2 client
regime) — impossible for the seed's thread-per-connection transport at
this scale without 1,000 OS threads — and records the server's actual
thread growth.

Results land in ``benchmarks/results/get_scaling.txt`` and, machine
readable, in ``BENCH_get_scaling.json`` at the repository root.

Set ``COMMUNIX_BENCH_SMOKE=1`` for a CI-sized run.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from pathlib import Path

import pytest

from benchmarks.bench_fig2_server_throughput import random_signature
from benchmarks.conftest import bench_json_path, write_artifact
from repro.client.endpoints import TcpEndpoint
from repro.crypto.userid import UserIdAuthority
from repro.server.database import SignatureDatabase
from repro.server.protocol import (
    count_get_response,
    encode_get_response,
    get_response_parts,
)
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"
SIZES = (500, 2_000) if SMOKE else (1_000, 10_000)
N_CONNECTIONS = 200 if SMOKE else 1_000
CLIENT_THREADS = 16
REQUESTS_PER_CONNECTION = 3

_REPO_ROOT = Path(__file__).resolve().parent.parent
_results: dict = {"sizes": {}}


def build_database(size: int) -> tuple[SignatureDatabase, list[bytes]]:
    rng = random.Random(size)
    db = SignatureDatabase()
    blobs: list[bytes] = []
    while len(blobs) < size:
        sig = random_signature(rng)
        if db.contains(sig.sig_id):
            continue
        blob = sig.to_bytes()
        db.append(sig, blob, len(blobs))
        blobs.append(blob)
    return db, blobs


def seed_path_get(blobs: list[bytes]) -> bytes:
    """The seed's hot path, verbatim: slice-copy the blob list, then pack
    every blob into the response the transport will send."""
    copied = blobs[0:]
    return encode_get_response(len(copied), copied)


def segment_path_get(db: SignatureDatabase) -> list[bytes]:
    """The new hot path, verbatim: cached per-segment chunks assembled
    into the parts list the transport hands to vectored ``sendmsg`` — no
    per-blob work, no payload copy."""
    next_index, count, chunks, _ = db.wire_from(0)
    return get_response_parts(next_index, count, chunks)


def throughput(fn, min_seconds: float = 0.5, min_rounds: int = 5) -> float:
    fn()  # warm caches outside the timed region
    rounds = 0
    started = time.perf_counter()
    while True:
        fn()
        rounds += 1
        elapsed = time.perf_counter() - started
        if elapsed >= min_seconds and rounds >= min_rounds:
            return rounds / elapsed


@pytest.mark.parametrize("size", SIZES)
def test_get_scaling(benchmark, size, results_dir):
    db, blobs = build_database(size)
    reference = seed_path_get(blobs)
    assert b"".join(segment_path_get(db)) == reference  # identical wire bytes

    seed_rps = throughput(lambda: seed_path_get(blobs))
    segment_rps = benchmark.pedantic(
        lambda: throughput(lambda: segment_path_get(db)),
        rounds=1, iterations=1,
    )
    speedup = segment_rps / seed_rps
    _results["sizes"][str(size)] = {
        "signatures": size,
        "response_bytes": len(reference),
        "segments": db.segment_count,
        "seed_path_gets_per_s": round(seed_rps, 1),
        "segment_cache_gets_per_s": round(segment_rps, 1),
        "speedup": round(speedup, 2),
    }
    benchmark.extra_info.update(_results["sizes"][str(size)])
    assert segment_rps > seed_rps


def test_concurrent_persistent_connections(results_dir):
    """≥1,000 simultaneous persistent connections served by one event loop
    and a bounded worker pool — not one thread per connection."""
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(99)),
        clock=ManualClock(start=1_000_000.0),
        config=ServerConfig(),
    )
    # Preload so every GET moves real data.
    db, _ = build_database(SIZES[0])
    server.database = db
    transport = ServerTransport(server, accept_backlog=2048, workers=8)
    host, port = transport.start()
    threads_before = threading.active_count()

    per_thread = N_CONNECTIONS // CLIENT_THREADS
    counts = [per_thread] * CLIENT_THREADS
    counts[-1] += N_CONNECTIONS - per_thread * CLIENT_THREADS
    all_connected = threading.Barrier(CLIENT_THREADS + 1)
    go = threading.Event()
    completed = []
    lock = threading.Lock()
    errors = []

    def client(n_conns: int) -> None:
        endpoints = [TcpEndpoint(host, port, io_timeout=60.0)
                     for _ in range(n_conns)]
        try:
            for endpoint in endpoints:
                endpoint.issue_token()  # connect + one roundtrip
            all_connected.wait(timeout=60.0)
            go.wait(timeout=60.0)
            done = 0
            for _ in range(REQUESTS_PER_CONNECTION):
                for endpoint in endpoints:
                    count_get_response(endpoint.get_raw(0, max_count=64))
                    done += 1
            with lock:
                completed.append(done)
        except Exception as exc:  # pragma: no cover - surfaced via assert
            with lock:
                errors.append(repr(exc))
        finally:
            for endpoint in endpoints:
                endpoint.close()

    workers = [threading.Thread(target=client, args=(c,), daemon=True)
               for c in counts]
    for t in workers:
        t.start()
    all_connected.wait(timeout=120.0)
    held_connections = transport.connection_count
    server_thread_delta = threading.active_count() - threads_before \
        - len(workers)
    started = time.perf_counter()
    go.set()
    for t in workers:
        t.join(timeout=300.0)
    elapsed = time.perf_counter() - started
    transport.stop()

    assert not errors, errors[:3]
    total_requests = sum(completed)
    _results["concurrent_connections"] = {
        "connections": N_CONNECTIONS,
        "held_simultaneously": held_connections,
        "requests": total_requests,
        "requests_per_s": round(total_requests / elapsed, 1),
        "server_thread_delta_at_peak": server_thread_delta,
    }
    assert held_connections >= N_CONNECTIONS
    # Event loop + worker pool, not thread-per-connection.
    assert server_thread_delta <= 16


def test_write_results(results_dir):
    """Emit the artifact and the BENCH_*.json entry (runs last)."""
    lines = [
        "GET scaling — seed list-copy path vs. sharded segment-cache path",
        "size  response_MB  segments  seed_gets/s  cached_gets/s  speedup",
    ]
    for size, row in _results["sizes"].items():
        lines.append(
            f"{size:>6}  {row['response_bytes'] / 1e6:9.2f}  "
            f"{row['segments']:8d}  {row['seed_path_gets_per_s']:11.1f}  "
            f"{row['segment_cache_gets_per_s']:13.1f}  {row['speedup']:7.2f}x"
        )
    conns = _results.get("concurrent_connections")
    if conns:
        lines.append(
            f"persistent connections: {conns['held_simultaneously']} held, "
            f"{conns['requests_per_s']} req/s, "
            f"+{conns['server_thread_delta_at_peak']} server threads"
        )
    write_artifact(results_dir, "get_scaling.txt", lines)
    payload = {
        "benchmark": "get_scaling",
        "smoke": SMOKE,
        **_results,
    }
    out = bench_json_path("BENCH_get_scaling")
    out.write_text(json.dumps(payload, indent=2) + "\n")
