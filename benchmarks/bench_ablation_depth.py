"""EXP-D — §IV-B in-text claims: the signature-depth ablation.

Three claims frame the depth >= 5 rule:

* "Signatures with outer call stacks of depth 5 incur an acceptable
  performance overhead" (Table II's band);
* "for depth 1, the overhead is considerable (i.e., > 100%), for some of
  the applications we studied" — which is why the agent rejects
  depth < 5 (the attack is *contained* only because validation blocks it;
  this bench measures what would happen if it didn't);
* "If none of the signatures is on the critical path, the performance
  overhead incurred by Dimmunix is negligible (i.e., < 2%)" — off-path
  signatures cost one index miss per acquisition.  (In the paper this is
  relative to vanilla on JVM-weight instrumentation; our pure-Python
  stack capture has a higher floor, so the off-path *delta over the
  empty-history instrumentation baseline* is the faithful comparison and
  is reported alongside.)
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from benchmarks.dos_common import attacked_runtime, benchmark_gil
from repro.sim.apps import APP_WORKLOADS, measure_overhead

WORKLOADS = ("jboss_rubis", "eclipse", "vuze")
MODES = (
    ("empty", 5),  # instrumentation baseline (no signatures at all)
    ("offpath", 5),  # 20 signatures, none on the critical path
    ("critical", 5),  # Table II's contained attack
    ("critical", 1),  # the blow-up the depth floor prevents
)

_rows: dict[tuple[str, str, int], dict] = {}


def run_mode(workload_name: str, mode: str, depth: int) -> dict:
    spec = APP_WORKLOADS[workload_name]
    with benchmark_gil():
        runtime = attacked_runtime(spec, mode=mode, depth=depth)
        try:
            result = measure_overhead(spec, runtime, repeats=5)
            result["avoidance_blocks"] = runtime.stats.avoidance_blocks
        finally:
            runtime.stop()
    return result


@pytest.mark.parametrize("workload_name", WORKLOADS)
@pytest.mark.parametrize("mode,depth", MODES,
                         ids=[f"{m}-d{d}" for m, d in MODES])
def test_ablation_depth(benchmark, workload_name, mode, depth, results_dir):
    result = benchmark.pedantic(
        run_mode, args=(workload_name, mode, depth), rounds=1, iterations=1
    )
    _rows[(workload_name, mode, depth)] = result
    benchmark.extra_info["overhead_percent"] = result["overhead_percent"]
    if workload_name == WORKLOADS[-1] and (mode, depth) == MODES[-1]:
        lines = [
            "Depth ablation — overhead vs vanilla (20 signatures unless empty)",
            f"{'workload':<16s} {'mode':<10s} {'depth':>5s} "
            f"{'overhead%':>9s} {'blocks':>7s}",
        ]
        for (wl, m, d), r in sorted(_rows.items()):
            lines.append(
                f"{wl:<16s} {m:<10s} {d:5d} "
                f"{r['overhead_percent']:8.0f}% {r['avoidance_blocks']:7d}"
            )
        # The in-text claims, stated explicitly:
        for wl in WORKLOADS:
            empty = _rows[(wl, "empty", 5)]["overhead_percent"]
            off = _rows[(wl, "offpath", 5)]["overhead_percent"]
            d5 = _rows[(wl, "critical", 5)]["overhead_percent"]
            d1 = _rows[(wl, "critical", 1)]["overhead_percent"]
            lines.append(
                f"{wl}: off-path delta over empty history = {off - empty:+.0f}pp "
                f"(paper: <2%); depth-5 = {d5:.0f}%, depth-1 = {d1:.0f}% "
                "(paper: >100% for some applications)"
            )
        write_artifact(results_dir, "ablation_depth.txt", lines)


def test_depth1_exceeds_100_percent_somewhere(results_dir):
    """The headline in-text claim, as an executable assertion."""
    if not _rows:  # pragma: no cover - when run in isolation
        pytest.skip("ablation rows not collected in this session")
    depth1 = [
        r["overhead_percent"] for (wl, m, d), r in _rows.items()
        if m == "critical" and d == 1
    ]
    depth5 = [
        r["overhead_percent"] for (wl, m, d), r in _rows.items()
        if m == "critical" and d == 5
    ]
    assert max(depth1) > 100.0
    assert max(depth1) > max(depth5)
