"""EXP-T2 — Table II: worst-case overhead while under a DoS attack.

Paper setup: each application runs its standard benchmark with 20 malicious
deadlock signatures in the history, depth-5 outer call stacks covering the
nested synchronized blocks on the critical path ("more than 99% of the
nested synchronized blocks/methods are executed with these call stacks").
Reported: overhead vs vanilla.  Paper: RUBiS 40%, JDBCBench 38%, Eclipse
33%, Limewire upload 10%, Vuze 8% — "acceptable for general-purpose
applications", i.e. Communix successfully contains the attack.

The reproduced claims: every workload stays bounded (same few-tens-of-
percent band), the lock-density ordering holds, and the numbers sit far
below the depth-1 blow-up measured in the ablation bench.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from benchmarks.dos_common import attacked_runtime, benchmark_gil
from repro.sim.apps import APP_WORKLOADS, measure_overhead

PAPER = {
    "jboss_rubis": ("JBoss", "RUBiS", 40),
    "mysql_jdbc": ("MySQL JDBC", "JDBCBench", 38),
    "eclipse": ("Eclipse", "Startup + Shutdown", 33),
    "limewire_upload": ("Limewire", "Upload test", 10),
    "vuze": ("Vuze", "Startup + Shutdown", 8),
}

_rows: dict[str, dict] = {}


def run_attack(workload_name: str) -> dict:
    spec = APP_WORKLOADS[workload_name]
    with benchmark_gil():
        runtime = attacked_runtime(spec, mode="critical", depth=5)
        try:
            result = measure_overhead(spec, runtime, repeats=5)
            result["avoidance_blocks"] = runtime.stats.avoidance_blocks
        finally:
            runtime.stop()
    return result


@pytest.mark.parametrize("workload_name", list(APP_WORKLOADS))
def test_table2_dos_overhead(benchmark, workload_name, results_dir):
    result = benchmark.pedantic(
        run_attack, args=(workload_name,), rounds=1, iterations=1
    )
    _rows[workload_name] = result
    benchmark.extra_info.update(
        overhead_percent=result["overhead_percent"],
        avoidance_blocks=result["avoidance_blocks"],
    )
    # Containment: the attack must not blow past the same order of magnitude
    # the paper reports (depth-1, measured in the ablation, is the blow-up).
    assert result["overhead_percent"] < 150.0
    if workload_name == list(APP_WORKLOADS)[-1]:
        lines = [
            "Table II — worst-case overhead under a DoS attack "
            "(20 critical-path depth-5 signatures)",
            f"{'Application':<14s} {'Benchmark/Test':<20s} "
            f"{'Overhead':>9s} {'(paper)':>8s} {'blocks':>7s}",
        ]
        for name in APP_WORKLOADS:
            app, bench_name, paper_pct = PAPER[name]
            r = _rows[name]
            lines.append(
                f"{app:<14s} {bench_name:<20s} "
                f"{r['overhead_percent']:8.0f}% {paper_pct:7d}% "
                f"{r['avoidance_blocks']:7d}"
            )
        write_artifact(results_dir, "table2_dos_overhead.txt", lines)
