"""Shared machinery for swarm-driven benchmarks.

The big sweeps put the server in a **child process** (mirroring the
paper's server-on-one-machine / clients-on-another setup) for an FD
reason too: this container caps a process at 20,000 descriptors, and a
10,000-client point needs ~10k sockets on *each* side of the loopback —
they only fit if the two sides are separate processes.
"""

from __future__ import annotations

import contextlib
import os
import select
import signal
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"


@contextlib.contextmanager
def swarm_server(quota_per_day: int = 1000, idle_timeout: float = 600.0,
                 backlog: int = 4096, workers: int = 4,
                 startup_timeout: float = 30.0):
    """A ``python -m repro.server`` child; yields ``(host, port)``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.server",
            "--host", "127.0.0.1", "--port", "0",
            "--quota-per-day", str(quota_per_day),
            "--idle-timeout", str(idle_timeout),
            "--backlog", str(backlog),
            "--workers", str(workers),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        deadline = time.monotonic() + startup_timeout
        line = ""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError("server did not report its address in time")
            # readline() would block past the deadline on a silent child;
            # poll the pipe so a wedged server fails fast instead.
            ready, _, _ = select.select([proc.stdout], [], [],
                                        min(remaining, 0.5))
            if not ready:
                if proc.poll() is not None:
                    raise RuntimeError("server process exited during startup")
                continue
            line = proc.stdout.readline()
            if "listening on" in line:
                break
            if not line and proc.poll() is not None:
                raise RuntimeError("server process exited during startup")
        address = line.split("listening on", 1)[1].split()[0]
        host, _, port = address.rpartition(":")
        yield host, int(port)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5.0)
        proc.stdout.close()


def wait_for_barrier(engine, expected: int, timeout: float) -> None:
    """Block until every live client is parked at the start barrier."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if engine.parked_count + engine.finished_count >= expected:
            return
        time.sleep(0.05)
    raise TimeoutError(
        f"only {engine.parked_count}/{expected} clients reached the barrier"
    )
