"""Shared machinery for swarm-driven benchmarks.

The big sweeps put the server in a **child process** (mirroring the
paper's server-on-one-machine / clients-on-another setup) for an FD
reason too: this container caps a process at 20,000 descriptors, and a
10,000-client point needs ~10k sockets on *each* side of the loopback —
they only fit if the two sides are separate processes.  The federated
sweeps go one step further and split the client side over several worker
processes (see :mod:`repro.loadgen.federation`), with the server child on
a ``unix://`` endpoint to skip loopback-TCP overhead.
"""

from __future__ import annotations

import contextlib
import os
import select
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.net import Endpoint, parse_endpoint

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"


@contextlib.contextmanager
def swarm_server(quota_per_day: int = 1000, idle_timeout: float = 600.0,
                 backlog: int = 4096, workers: int = 4,
                 startup_timeout: float = 30.0, addr: str | None = None,
                 server_args: list[str] | None = None):
    """A ``python -m repro.server`` child; yields its bound
    :class:`~repro.net.Endpoint` (``tcp://127.0.0.1:0`` by default, or any
    ``addr`` endpoint URL such as ``unix:///tmp/x.sock``).  Extra CLI
    flags — ``--no-metrics``, ``--metrics-log``, ``--slow-request-ms`` —
    go in ``server_args``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    address_args = (["--addr", addr] if addr
                    else ["--host", "127.0.0.1", "--port", "0"])
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.server",
            *address_args,
            "--quota-per-day", str(quota_per_day),
            "--idle-timeout", str(idle_timeout),
            "--backlog", str(backlog),
            "--workers", str(workers),
            *(server_args or []),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        deadline = time.monotonic() + startup_timeout
        # Raw-fd reads, not readline(): a child that prints several
        # startup lines in one write (the federation coordinator does)
        # would land them all in the TextIO buffer on the first read,
        # and select() on the drained fd would then block forever.
        stdout_fd = proc.stdout.fileno()
        pending = b""
        address = None
        while address is None:
            newline = pending.find(b"\n")
            if newline >= 0:
                raw, pending = pending[:newline], pending[newline + 1:]
                line = raw.decode("utf-8", "replace")
                if line.startswith("communix-server listening on"):
                    address = line.split("listening on", 1)[1].split()[0]
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError("server did not report its address in time")
            # Poll the pipe so a wedged server fails fast instead.
            ready, _, _ = select.select([stdout_fd], [], [],
                                        min(remaining, 0.5))
            if not ready:
                if proc.poll() is not None:
                    raise RuntimeError("server process exited during startup")
                continue
            chunk = os.read(stdout_fd, 65536)
            if not chunk:
                if proc.poll() is not None:
                    raise RuntimeError("server process exited during startup")
                continue
            pending += chunk
        yield parse_endpoint(address)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5.0)
        proc.stdout.close()


def wait_for_barrier(engine, expected: int, timeout: float) -> None:
    """Block until every live client is parked at the start barrier."""
    engine.wait_barrier(expected, timeout=timeout)


def server_metrics_summary(metrics_log_path: str) -> dict | None:
    """Compact server-side section for a bench artifact, from the final
    line of a ``--metrics-log`` file (written at server shutdown, after
    the graceful drain, so it covers every request the child served).

    Stage histograms are collapsed to their percentile summaries; raw
    counters and gauges ride along whole.
    """
    from repro.obs import last_snapshot_line, summary_from_wire

    snapshot = last_snapshot_line(metrics_log_path)
    if snapshot is None:
        return None
    histograms = snapshot.get("histograms", {})
    return {
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "stages": {
            name: summary_from_wire(wire)
            for name, wire in sorted(histograms.items())
        },
        "attribution": stage_attribution(histograms),
    }


def stage_attribution(histograms: dict) -> dict:
    """Per-stage share of total handler time, from stage histograms.

    For each ``stage.<name>`` histogram, report the stage's cumulative
    seconds and its fraction of the cumulative ``stage.handler`` seconds
    — "where did the server's request time actually go".  Stages that
    nest inside another (wal_fsync inside db_append, group_commit inside
    wal_fsync) will overlap; shares answer "how much of a typical
    request touched this stage", not a partition summing to 1.
    """
    totals = {
        name[len("stage."):]: float(wire.get("total", 0.0))
        for name, wire in histograms.items()
        if name.startswith("stage.")
    }
    handler_total = totals.get("handler", 0.0)
    attribution = {}
    for stage in sorted(totals):
        entry = {"total_s": round(totals[stage], 6)}
        if handler_total > 0.0 and stage != "handler":
            entry["share_of_handler"] = round(totals[stage] / handler_total, 4)
        attribution[stage] = entry
    return attribution
