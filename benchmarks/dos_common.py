"""Shared machinery for the DoS benchmarks (Table II and the depth ablation).

The attack pipeline mirrors §IV-B exactly:

1. sample real acquisition stacks from the victim workload (the attacker
   knows the application's code);
2. forge two-thread signatures whose outer stacks are depth-``d`` suffixes
   of those stacks — "signatures with outer call stacks of depth 5 which
   cover all the nested synchronized blocks/methods that are on the critical
   path";
3. install them in a Dimmunix runtime's history (worst case: the signatures
   passed validation) and measure the workload vanilla vs immunized.

CPython specifics: avoidance wake-ups contend with spinning CPU threads for
the GIL, whose default switch interval (5 ms) would dominate every
suspension.  The benchmarks lower it while measuring (and restore it after),
which is a measurement-environment adjustment, not a semantic one.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

from repro.dimmunix.config import DimmunixConfig
from repro.dimmunix.runtime import DimmunixRuntime
from repro.sim.apps import AppWorkload, WorkloadSpec, dimmunix_lock_factory
from repro.sim.attack import forge_critical_path_signatures, forge_off_path_signatures

SIGNATURE_COUNT = 20  # "the tests run with 20 deadlock signatures in the history"


@contextmanager
def benchmark_gil():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def bench_config(**overrides) -> DimmunixConfig:
    defaults = dict(
        detection_interval=0.05,
        acquire_poll_interval=0.02,
        avoidance_recheck_interval=0.001,
    )
    defaults.update(overrides)
    return DimmunixConfig(**defaults)


def sample_workload_stacks(spec: WorkloadSpec, ops: int = 400) -> list:
    """Step 1: what the attacker observes about the victim's call stacks."""
    recorder = DimmunixRuntime(
        config=bench_config(record_acquisition_stacks=True)
    )
    workload = AppWorkload(spec, dimmunix_lock_factory(recorder))
    return workload.sample_stacks(recorder, ops=ops)


def attacked_runtime(spec: WorkloadSpec, mode: str, depth: int = 5
                     ) -> DimmunixRuntime:
    """A started runtime whose history holds the requested attack.

    ``mode``: "critical" (critical-path suffixes), "offpath" (locations the
    application never executes), or "empty" (instrumentation baseline).
    """
    runtime = DimmunixRuntime(config=bench_config())
    if mode == "critical":
        samples = sample_workload_stacks(spec)
        runtime.history.merge_from(
            forge_critical_path_signatures(samples, count=SIGNATURE_COUNT,
                                           depth=depth)
        )
    elif mode == "offpath":
        runtime.history.merge_from(
            forge_off_path_signatures(count=SIGNATURE_COUNT, depth=depth)
        )
    elif mode != "empty":
        raise ValueError(f"unknown attack mode {mode!r}")
    runtime.start()
    return runtime
