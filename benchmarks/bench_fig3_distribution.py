"""EXP-F3 — Figure 3: end-to-end signature distribution over the network.

Paper setup: the server on one machine, 10-200 client threads on another,
each sending 10 ``ADD(sig), GET(0)`` sequences over TCP.  Reported: replies
per second received *per client thread*.  Paper shape: scales to ~30 client
threads, 20-110 replies/s per thread — up to two orders of magnitude below
Figure 2, because moving the ever-growing GET(0) payload through the network
becomes the bottleneck (~630 MB in the last round at N=200).

Scaling substitution: loopback TCP, 5..100 threads x 5 sequences (the
quadratic GET(0) data volume is what matters, and it is preserved).
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from benchmarks.bench_fig2_server_throughput import random_signature
from benchmarks.conftest import write_artifact
from repro.client.endpoints import TcpEndpoint
from repro.crypto.userid import UserIdAuthority
from repro.server.protocol import count_get_response
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock

SWEEP = (5, 10, 20, 30, 40, 60, 80, 100)
SEQUENCES_PER_THREAD = 5

_series: dict[int, float] = {}


def run_point(n_threads: int) -> float:
    """Returns mean replies/second observed per client thread."""
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(7)),
        clock=ManualClock(start=1_000_000.0),
        # The paper's load is random signatures; adjacency rarely triggers,
        # but quota must admit every ADD (10/day == 2x our 5 sequences).
        config=ServerConfig(),
    )
    transport = ServerTransport(server)
    host, port = transport.start()
    rng = random.Random(1000 + n_threads)
    blobs = [
        [random_signature(rng).to_bytes() for _ in range(SEQUENCES_PER_THREAD)]
        for _ in range(n_threads)
    ]
    rates: list[float] = []
    rates_lock = threading.Lock()
    start_gate = threading.Event()

    def client(index: int) -> None:
        endpoint = TcpEndpoint(host, port, io_timeout=120.0)
        try:
            token = endpoint.issue_token()
            start_gate.wait()
            started = time.perf_counter()
            for blob in blobs[index]:
                endpoint.add(blob, token)
                # GET(0): the worst case the paper measures — the client is
                # always sent the whole database.  Count without parsing.
                count_get_response(endpoint.get_raw(0))
            elapsed = time.perf_counter() - started
            with rates_lock:
                rates.append(2 * SEQUENCES_PER_THREAD / elapsed)
        finally:
            endpoint.close()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    start_gate.set()
    for t in threads:
        t.join(timeout=300.0)
    transport.stop()
    return sum(rates) / len(rates) if rates else 0.0


@pytest.mark.parametrize("n_threads", SWEEP)
def test_fig3_distribution(benchmark, n_threads, results_dir):
    per_thread = benchmark.pedantic(
        run_point, args=(n_threads,), rounds=1, iterations=1
    )
    _series[n_threads] = per_thread
    benchmark.extra_info["replies_per_second_per_thread"] = per_thread
    assert per_thread > 0
    if n_threads == SWEEP[-1]:
        lines = [
            "Figure 3 — end-to-end distribution (loopback TCP, 5 sequences/thread)",
            "client_threads  replies_per_second_per_thread",
        ]
        for n in SWEEP:
            if n in _series:
                lines.append(f"{n:14d}  {_series[n]:10.1f}")
        lines.append(
            "paper: 20-110 replies/s per thread, knee at ~30 threads; "
            "1-2 orders of magnitude below Figure 2"
        )
        write_artifact(results_dir, "fig3_distribution.txt", lines)
