"""EXP-F3 — Figure 3: end-to-end signature distribution over the network.

Paper setup: the server on one machine, 10-200 client threads on another,
each sending 10 ``ADD(sig), GET(0)`` sequences over TCP.  Reported: replies
per second received *per client thread*.  Paper shape: scales to ~30 client
threads, 20-110 replies/s per thread — up to two orders of magnitude below
Figure 2, because moving the ever-growing GET(0) payload through the network
becomes the bottleneck (~630 MB in the last round at N=200).

Scaling substitution: loopback TCP via the ``repro.loadgen`` swarm (the
seed's thread-per-connection client capped this sweep at 100 threads), up
to 200 simulated clients x 3 sequences.  Each sequence is one ``ADD``
followed by a **full paginated drain from index 0**, so the quadratic
data volume the paper measures is preserved — just framed in bounded
pages instead of one giant legacy response.
"""

from __future__ import annotations

import os
import random

import pytest

from benchmarks.conftest import write_artifact
from repro.crypto.userid import UserIdAuthority
from repro.loadgen.engine import SwarmEngine
from repro.loadgen.scenarios import (
    OP_ADD,
    OP_GET_PAGE,
    OP_ISSUE_ID,
    Park,
    Scenario,
    Send,
    Stop,
)
from repro.loadgen.signatures import random_signature
from repro.server.protocol import count_get_page, encode_add_request, encode_request
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock
from repro.util.encoding import from_canonical_json
from benchmarks.swarm_common import wait_for_barrier

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"
SWEEP = (5, 15) if SMOKE else (10, 25, 50, 100, 200)
SEQUENCES_PER_CLIENT = 2 if SMOKE else 3
PAGE_SIZE = 512

_series: dict[int, float] = {}


class AddDrain(Scenario):
    """The paper's Fig. 3 client: ``ADD(sig)`` then download the whole
    database, repeated per sequence — built on the swarm's Scenario API
    with a paginated drain standing in for the legacy ``GET(0)``."""

    def __init__(self, blobs: list[bytes], page_size: int = PAGE_SIZE):
        self.blobs = blobs
        self.page_size = page_size
        self.token: str | None = None
        self.sequence = 0
        self.completed = False

    def on_connect(self, ctx):
        return Send(encode_request({"op": "ISSUE_ID"}), OP_ISSUE_ID)

    def on_release(self, ctx):
        return self._next_sequence()

    def _next_sequence(self):
        if self.sequence >= len(self.blobs):
            self.completed = True
            return Stop()
        blob = self.blobs[self.sequence]
        self.sequence += 1
        return Send(encode_add_request(blob, self.token), OP_ADD)

    def _page(self, from_index: int):
        return Send(
            encode_request({"op": "GET", "from_index": from_index,
                            "max_count": self.page_size}),
            OP_GET_PAGE,
        )

    def on_response(self, ctx, op, payload):
        if op == OP_ISSUE_ID:
            decoded = from_canonical_json(payload)
            if not decoded.get("ok"):
                self.failed = True
                return Stop()
            self.token = str(decoded["token"])
            return Park()  # connected + authenticated: hold for the barrier
        if op == OP_ADD:
            return self._page(0)  # GET(0): the worst case the paper measures
        next_index, _count, more = count_get_page(payload)
        if more:
            return self._page(next_index)
        return self._next_sequence()


def run_point(n_clients: int) -> float:
    """Returns mean replies/second observed per simulated client."""
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(7)),
        clock=ManualClock(start=1_000_000.0),
        # The paper's load is random signatures; adjacency rarely triggers,
        # but quota must admit every ADD (10/day >= our 3 sequences).
        config=ServerConfig(),
    )
    transport = ServerTransport(server, accept_backlog=1024,
                                idle_timeout=300.0)
    host, port = transport.start()
    rng = random.Random(1000 + n_clients)
    scenarios = [
        AddDrain([random_signature(rng).to_bytes()
                  for _ in range(SEQUENCES_PER_CLIENT)])
        for _ in range(n_clients)
    ]
    engine = SwarmEngine(host, port, loops=2, connect_burst=256)
    engine.add_clients(scenarios)
    engine.start()
    try:
        wait_for_barrier(engine, n_clients, timeout=120.0)
        released_at = engine.release()
        finished = engine.wait(timeout=600.0)
        completed_at = engine.completed_at
    finally:
        engine.stop()
        transport.stop()
    snapshot = engine.snapshot()
    assert finished and snapshot.errors == {}, snapshot.errors
    assert all(s.completed for s in scenarios)
    replies = snapshot.count(OP_ADD) + snapshot.count(OP_GET_PAGE)
    elapsed = completed_at - released_at
    return replies / elapsed / n_clients


@pytest.mark.parametrize("n_clients", SWEEP)
def test_fig3_distribution(benchmark, n_clients, results_dir):
    per_client = benchmark.pedantic(
        run_point, args=(n_clients,), rounds=1, iterations=1
    )
    _series[n_clients] = per_client
    benchmark.extra_info["replies_per_second_per_client"] = per_client
    assert per_client > 0
    if n_clients == SWEEP[-1]:
        lines = [
            "Figure 3 — end-to-end distribution "
            f"(swarm loopback TCP, {SEQUENCES_PER_CLIENT} sequences/client, "
            f"full paginated drain per sequence)",
            "clients  replies_per_second_per_client",
        ]
        for n in SWEEP:
            if n in _series:
                lines.append(f"{n:7d}  {_series[n]:10.1f}")
        lines.append(
            "paper: 20-110 replies/s per thread, knee at ~30 threads; "
            "1-2 orders of magnitude below Figure 2"
        )
        write_artifact(results_dir, "fig3_distribution.txt", lines)
