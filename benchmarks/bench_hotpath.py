"""EXP-HP — hot-path raw speed: crypto backends and the batched read path.

Two microbenchmarks plus a Fig. 2 re-run, backing the PR 6 tentpole:

* **Token decode throughput per crypto backend** — the same
  ``UserIdAuthority.decode`` the validator runs on every cache-cold ADD,
  measured against the pure-Python FIPS-197 reference and (when the
  ``cryptography`` package is importable) the OpenSSL-backed ``fast``
  backend.  The paper's Fig. 2 wall is interpreter time; this table shows
  how much of it was AES.
* **Framed read-loop throughput per receive strategy** — a loopback
  socketpair pumped with length-prefixed frames, drained by (a) the old
  ``recv()``-allocates-256KB-per-call loop and (b) the pooled
  ``recv_into`` loop the transport now uses, frames/s and buffer
  allocation counts side by side.
* **Fig. 2 re-run** — the 10,000-client single-process sweep point,
  compared against the committed ``BENCH_fig2_swarm.json`` baseline to
  show the plateau lift (smoke runs use a small point instead).
* **Instrumentation overhead** — the same Fig. 2 point run with the
  metrics registry enabled versus ``--no-metrics`` (the ``NullRegistry``
  baseline), best-of-``OBS_OVERHEAD_PAIRS`` interleaved pairs; the
  req/s delta must stay within ``OBS_OVERHEAD_LIMIT_PCT`` — the gate
  for the ``repro.obs`` layer's always-on per-stage histograms.

Results land in ``BENCH_hotpath.json`` / ``results/hotpath.txt``
(``*.smoke.*`` under ``COMMUNIX_BENCH_SMOKE=1`` — smoke never clobbers
the committed full-run series).  Script mode for CI::

    python benchmarks/bench_hotpath.py --smoke

runs everything at smoke scale and **fails** if the fast backend does not
beat the reference — the regression gate for the pluggable-backend layer.
"""

from __future__ import annotations

import json
import os
import random
import socket
import struct
import sys
import threading
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:  # script mode: python benchmarks/...
    sys.path.insert(0, str(_REPO_ROOT))

from benchmarks.conftest import bench_json_path, write_artifact  # noqa: E402
from repro.crypto.backend import available_backends  # noqa: E402
from repro.crypto.userid import UserIdAuthority  # noqa: E402
from repro.net import BufferPool  # noqa: E402

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"

#: Distinct tokens per decode run (cache-cold validator behavior: every
#: decode is a fresh AES-CBC + MAC check).
TOKENS = 64 if SMOKE else 512
#: Minimum timed window per backend, seconds.
DECODE_WINDOW = 0.2 if SMOKE else 1.5
#: Bytes pumped through the read-loop bench per strategy.
ECHO_VOLUME = (4 if SMOKE else 256) * 1024 * 1024
#: Payload size per frame — the order of an ADD response / small GET page.
ECHO_FRAME = 512
#: Receive chunk size, matching the server transport's ``_RECV_CHUNK``.
RECV_CHUNK = 256 * 1024
#: Fig. 2 re-run point (clients).
FIG2_POINT = 60 if SMOKE else 10_000
#: Instrumentation-overhead ceiling: metrics-on req/s may trail the
#: ``--no-metrics`` baseline by at most this many percent.  The smoke
#: point is tiny (60 clients over fractions of a second), so run-to-run
#: noise dwarfs the real cost there — the smoke bound only catches
#: pathological regressions; the full-run bound is the contract (<=3%).
OBS_OVERHEAD_LIMIT_PCT = 25.0 if SMOKE else 3.0
#: Interleaved on/off measurement pairs for the overhead gate.  A single
#: 10k-client run on a shared single-core container swings +/-20% with
#: contention, and that noise is one-sided (neighbours can only slow a
#: run down, never speed it up) — so each configuration is sampled
#: ``OBS_OVERHEAD_PAIRS`` times in alternating order and scored on its
#: *best* run, which converges on the uncontended capability.
OBS_OVERHEAD_PAIRS = 1 if SMOKE else 3

_results: dict = {}


def _reference_first(names: list[str]) -> list[str]:
    """The pure-Python reference first, so tables and ratios read
    reference -> fast."""
    return sorted(names, key=lambda name: (name != "pure", name))


def _decode_speedup(rows: list[dict]) -> float | None:
    """fast/pure tokens-per-second ratio, when both backends ran."""
    by_name = {row["backend"]: row for row in rows}
    if "pure" in by_name and "fast" in by_name:
        return (by_name["fast"]["tokens_per_second"]
                / by_name["pure"]["tokens_per_second"])
    return None


# ------------------------------------------------------- token decode bench
def run_token_decode(backend_name: str) -> dict:
    """Cache-cold decode throughput for one backend: issue ``TOKENS``
    distinct tokens, then decode the whole set in a loop for at least
    ``DECODE_WINDOW`` seconds."""
    authority = UserIdAuthority(rng=random.Random(7), backend=backend_name)
    tokens = [authority.issue() for _ in range(TOKENS)]
    for i, token in enumerate(tokens):  # correctness before speed
        assert authority.decode(token).user_id == i + 1
    decoded = 0
    start = time.perf_counter()
    while True:
        for token in tokens:
            authority.decode(token)
        decoded += len(tokens)
        elapsed = time.perf_counter() - start
        if elapsed >= DECODE_WINDOW:
            break
    return {
        "backend": backend_name,
        "tokens": TOKENS,
        "decodes": decoded,
        "elapsed_s": round(elapsed, 3),
        "tokens_per_second": round(decoded / elapsed, 1),
        "us_per_decode": round(elapsed / decoded * 1e6, 2),
    }


# --------------------------------------------------------- read-loop bench
def _pump(sock: socket.socket, payload: bytes) -> None:
    try:
        sock.sendall(payload)
    except OSError:
        pass
    finally:
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass


def _count_frames(buf: bytearray) -> int:
    """Consume complete length-prefixed frames from ``buf`` in place."""
    frames = 0
    offset = 0
    n = len(buf)
    while n - offset >= 4:
        (length,) = struct.unpack_from(">I", buf, offset)
        if n - offset - 4 < length:
            break
        offset += 4 + length
        frames += 1
    del buf[:offset]
    return frames


def run_read_loop(strategy: str) -> dict:
    """Drain ``ECHO_VOLUME`` bytes of frames from a loopback socketpair.

    ``recv``: the pre-PR read loop — every call allocates a fresh
    256 KB ``bytes``.  ``recv_into``: the pooled loop the transport now
    runs — one long-lived ``bytearray``, zero steady-state allocation.
    """
    frame = struct.pack(">I", ECHO_FRAME) + b"x" * ECHO_FRAME
    reps = ECHO_VOLUME // len(frame)
    payload = frame * reps
    left, right = socket.socketpair()
    writer = threading.Thread(target=_pump, args=(left, payload), daemon=True)
    pool = BufferPool(RECV_CHUNK)
    inbuf = bytearray()
    frames = 0
    recv_calls = 0
    writer.start()
    start = time.perf_counter()
    if strategy == "recv":
        while True:
            data = right.recv(RECV_CHUNK)
            recv_calls += 1
            if not data:
                break
            inbuf += data
            frames += _count_frames(inbuf)
    elif strategy == "recv_into":
        buf = pool.acquire()
        while True:
            n = right.recv_into(buf)
            recv_calls += 1
            if not n:
                break
            inbuf += memoryview(buf)[:n]
            frames += _count_frames(inbuf)
        pool.release(buf)
    else:  # pragma: no cover - caller bug
        raise ValueError(strategy)
    elapsed = time.perf_counter() - start
    writer.join()
    left.close()
    right.close()
    assert frames == reps, (frames, reps)
    return {
        "strategy": strategy,
        "frame_payload_bytes": ECHO_FRAME,
        "frames": frames,
        "recv_calls": recv_calls,
        "volume_mb": round(len(payload) / 1e6, 1),
        "elapsed_s": round(elapsed, 3),
        "frames_per_second": round(frames / elapsed, 1),
        "mb_per_second": round(len(payload) / 1e6 / elapsed, 1),
        # ``recv`` allocates a fresh buffer per call; the pooled loop
        # allocates once, ever.
        "recv_buffers_allocated": (pool.allocated if strategy == "recv_into"
                                   else recv_calls),
    }


# ------------------------------------------------------------ fig2 re-run
def run_fig2_rerun() -> dict:
    from benchmarks.bench_fig2_server_throughput import run_point

    point = run_point(FIG2_POINT)
    baseline_path = _REPO_ROOT / "BENCH_fig2_swarm.json"
    baseline_rps = None
    if baseline_path.exists():
        committed = json.loads(baseline_path.read_text())
        for base_point in committed.get("points", []):
            if base_point.get("clients") == FIG2_POINT:
                baseline_rps = base_point["requests_per_second"]
    rerun = {
        "clients": FIG2_POINT,
        "requests_per_second": point["requests_per_second"],
        "add": point["add"],
        "get_page": point["get_page"],
        "baseline_requests_per_second": baseline_rps,
    }
    if baseline_rps:
        rerun["lift_percent"] = round(
            (point["requests_per_second"] / baseline_rps - 1) * 100, 1
        )
    if point.get("server_metrics"):
        rerun["server_metrics"] = point["server_metrics"]
    return rerun


# ----------------------------------------------- instrumentation overhead
def run_obs_overhead() -> dict:
    """The Fig. 2 point with metrics on vs ``--no-metrics``.

    Both configurations use the same swarm; the only difference is
    whether the server records into a :class:`MetricsRegistry` or the
    shared ``NULL_REGISTRY`` no-ops.  Each side runs
    ``OBS_OVERHEAD_PAIRS`` times in alternating order (on/off, off/on,
    ...) so machine drift cannot systematically favour one side, and the
    comparison takes each side's best run — contention noise on this
    container is strictly one-sided, so max-over-N estimates the
    uncontended capability far more tightly than any single sample.
    Positive ``overhead_percent`` means instrumentation cost throughput.
    """
    from benchmarks.bench_fig2_server_throughput import run_point

    on_samples: list[float] = []
    off_samples: list[float] = []
    server_metrics = None
    for pair in range(OBS_OVERHEAD_PAIRS):
        order = ("on", "off") if pair % 2 == 0 else ("off", "on")
        for tag in order:
            if tag == "on":
                point = run_point(FIG2_POINT)
                on_samples.append(point["requests_per_second"])
                # Keep the server-side section from the best metrics-on
                # run: it covers every request that run served.
                if point["requests_per_second"] == max(on_samples):
                    server_metrics = point.get("server_metrics")
            else:
                point = run_point(FIG2_POINT,
                                  server_args=["--no-metrics"],
                                  capture_server_metrics=False)
                off_samples.append(point["requests_per_second"])
    on_rps = max(on_samples)
    off_rps = max(off_samples)
    return {
        "clients": FIG2_POINT,
        "pairs": OBS_OVERHEAD_PAIRS,
        "metrics_on_rps": on_rps,
        "metrics_off_rps": off_rps,
        "metrics_on_samples": on_samples,
        "metrics_off_samples": off_samples,
        "overhead_percent": round((off_rps - on_rps) / off_rps * 100, 2),
        "limit_percent": OBS_OVERHEAD_LIMIT_PCT,
        "server_metrics": server_metrics,
    }


# ---------------------------------------------------------------- reporting
def _write_results(results_dir: Path) -> None:
    lines = ["Hot path — crypto backends and batched receive (PR 6)"]
    decode = _results.get("token_decode", [])
    if decode:
        lines.append("")
        lines.append("token decode (cache-cold UserIdAuthority.decode):")
        lines.append("backend   tokens/s      us/decode")
        for row in decode:
            lines.append(f"{row['backend']:<9} {row['tokens_per_second']:>9.0f} "
                         f"{row['us_per_decode']:>13.2f}")
        ratio = _decode_speedup(decode)
        if ratio is not None:
            lines.append(f"speedup (fast/pure): {ratio:.1f}x")
            _results["decode_speedup"] = round(ratio, 1)
    reads = _results.get("read_loop", [])
    if reads:
        lines.append("")
        lines.append("framed read loop (loopback socketpair, "
                     f"{ECHO_FRAME}-byte payloads):")
        lines.append("strategy    frames/s     MB/s   buffers_allocated")
        for row in reads:
            lines.append(
                f"{row['strategy']:<11} {row['frames_per_second']:>8.0f} "
                f"{row['mb_per_second']:>8.1f}   "
                f"{row['recv_buffers_allocated']}"
            )
    rerun = _results.get("fig2_rerun")
    if rerun:
        lines.append("")
        lines.append(
            f"Fig. 2 re-run @ {rerun['clients']} clients: "
            f"{rerun['requests_per_second']:.0f} req/s"
            + (f" (committed baseline {rerun['baseline_requests_per_second']:.0f}"
               f", {rerun['lift_percent']:+.1f}%)"
               if rerun.get("baseline_requests_per_second") else "")
        )
    overhead = _results.get("obs_overhead")
    if overhead:
        lines.append("")
        lines.append(
            f"instrumentation overhead @ {overhead['clients']} clients: "
            f"{overhead['metrics_on_rps']:.0f} req/s with metrics vs "
            f"{overhead['metrics_off_rps']:.0f} req/s with --no-metrics "
            f"({overhead['overhead_percent']:+.1f}%, limit "
            f"{overhead['limit_percent']:.0f}%; best of "
            f"{overhead.get('pairs', 1)} interleaved pairs)"
        )
        stages = (overhead.get("server_metrics") or {}).get("stages", {})
        if stages:
            lines.append("server-side stage p95s (ms): " + "  ".join(
                f"{name.split('.', 1)[-1]}={summary['p95_ms']:.2f}"
                for name, summary in sorted(stages.items())
                if name.startswith("stage.") and summary.get("count")
            ))
    write_artifact(results_dir, "hotpath.txt", lines)
    payload = {
        "benchmark": "hotpath",
        "smoke": SMOKE,
        "tokens_per_run": TOKENS,
        "recv_chunk_bytes": RECV_CHUNK,
        **_results,
    }
    out = bench_json_path("BENCH_hotpath")
    out.write_text(json.dumps(payload, indent=2) + "\n")


# ------------------------------------------------------------- pytest entry
def test_hotpath_token_decode(benchmark, results_dir):
    rows = [run_token_decode(name)
            for name in _reference_first(available_backends())]
    _results["token_decode"] = rows
    _write_results(results_dir)
    benchmark.pedantic(run_token_decode, args=(rows[-1]["backend"],),
                       rounds=1, iterations=1)
    benchmark.extra_info.update({
        row["backend"]: row["tokens_per_second"] for row in rows
    })
    speedup = _decode_speedup(rows)
    if speedup is not None:  # fast must beat the reference
        assert speedup > 1.0


def test_hotpath_read_loop(benchmark, results_dir):
    rows = [run_read_loop(s) for s in ("recv", "recv_into")]
    _results["read_loop"] = rows
    _write_results(results_dir)
    benchmark.pedantic(run_read_loop, args=("recv_into",),
                       rounds=1, iterations=1)
    benchmark.extra_info.update({
        row["strategy"]: row["frames_per_second"] for row in rows
    })
    # The pooled loop must actually be pooled.
    assert rows[1]["recv_buffers_allocated"] == 1


def test_hotpath_fig2_rerun(benchmark, results_dir):
    rerun = benchmark.pedantic(run_fig2_rerun, rounds=1, iterations=1)
    _results["fig2_rerun"] = rerun
    _write_results(results_dir)
    benchmark.extra_info.update({
        "requests_per_second": rerun["requests_per_second"],
        "baseline": rerun.get("baseline_requests_per_second"),
    })
    assert rerun["requests_per_second"] > 0


def test_hotpath_obs_overhead(benchmark, results_dir):
    overhead = benchmark.pedantic(run_obs_overhead, rounds=1, iterations=1)
    _results["obs_overhead"] = overhead
    _write_results(results_dir)
    benchmark.extra_info.update({
        "metrics_on_rps": overhead["metrics_on_rps"],
        "metrics_off_rps": overhead["metrics_off_rps"],
        "overhead_percent": overhead["overhead_percent"],
    })
    # The metrics-on run must have produced a server-side section ...
    stages = (overhead.get("server_metrics") or {}).get("stages", {})
    assert stages.get("stage.validate", {}).get("count", 0) > 0
    # ... and instrumentation must stay within the overhead budget.
    assert overhead["overhead_percent"] <= OBS_OVERHEAD_LIMIT_PCT


# ------------------------------------------------------------- script entry
def main(argv: list[str]) -> int:
    """CI-friendly runner: ``--smoke`` forces smoke artifacts and gates on
    the fast backend actually being faster."""
    if "--smoke" in argv and not SMOKE:
        os.environ["COMMUNIX_BENCH_SMOKE"] = "1"
        # Re-exec the module under the smoke env so every scale constant
        # (here and in the fig2 module) is derived consistently.
        import subprocess

        return subprocess.call(
            [sys.executable, __file__] + [a for a in argv if a != "--smoke"],
            env=os.environ,
        )
    results_dir = _REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    backends = _reference_first(available_backends())
    print(f"crypto backends available: {', '.join(backends)}")
    _results["token_decode"] = [run_token_decode(name) for name in backends]
    _results["read_loop"] = [run_read_loop(s) for s in ("recv", "recv_into")]
    skip_fig2 = "--no-fig2" in argv
    if not skip_fig2:
        _results["fig2_rerun"] = run_fig2_rerun()
        _results["obs_overhead"] = run_obs_overhead()
    _write_results(results_dir)
    speedup = _decode_speedup(_results["token_decode"])
    if speedup is not None and speedup <= 1.0:
        print("FAIL: fast backend is not faster than the reference",
              file=sys.stderr)
        return 1
    if _results["read_loop"][1]["recv_buffers_allocated"] != 1:
        print("FAIL: pooled read loop allocated more than one buffer",
              file=sys.stderr)
        return 1
    overhead = _results.get("obs_overhead")
    if overhead and overhead["overhead_percent"] > OBS_OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: instrumentation overhead "
            f"{overhead['overhead_percent']:.1f}% exceeds the "
            f"{OBS_OVERHEAD_LIMIT_PCT:.0f}% limit",
            file=sys.stderr,
        )
        return 1
    print("hotpath bench OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
