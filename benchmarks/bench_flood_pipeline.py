"""EXP-FL — §IV-B in-text: the bounded signature flood.

"Assuming 100 attackers manage to obtain 5 ids each from the server, and
they keep sending fake signatures to the server, the attackers could make
the server process and add to its database only up to 100*5*10 = 5,000
signatures in 1 day.  Assuming the worst case, i.e., the 5,000 signatures
are sent simultaneously by the 100 attackers, the server can process the
signatures in 1 second, the Communix client can download them in a few
minutes, and the agent can process them in 10-15 seconds."

This bench drives exactly that pipeline: 500 attacker identities x 10
signatures each -> server ingest (direct invocation), client download (TCP
loopback), agent validation+generalization — and reports the three stage
times.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import write_artifact
from repro.appmodel import PRESETS, SignatureFactory, generate_application
from repro.client.client import CommunixClient
from repro.client.endpoints import TcpEndpoint
from repro.core.agent import CommunixAgent
from repro.core.history import DeadlockHistory
from repro.core.repository import LocalRepository
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock

ATTACKERS = 100
IDS_PER_ATTACKER = 5
SIGS_PER_ID = 10  # the daily quota: this is all they can ever land
TOTAL = ATTACKERS * IDS_PER_ATTACKER * SIGS_PER_ID
APP_SCALE = 0.25


def run_flood() -> dict:
    app = generate_application(PRESETS["jboss"], scale=APP_SCALE)
    app.nested_sync_sites()
    factory = SignatureFactory(app, seed=99)
    # The strongest flood: signatures that will pass client-side validation.
    blobs = [factory.make_valid(depth=7).to_bytes() for _ in range(TOTAL)]

    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(17)),
        clock=ManualClock(start=1_000_000.0),
    )
    tokens = [
        server.issue_user_token()
        for _ in range(ATTACKERS * IDS_PER_ATTACKER)
    ]

    # --- stage 1: the server ingests the whole day's worth of flood -------
    started = time.perf_counter()
    accepted = 0
    for i, blob in enumerate(blobs):
        token = tokens[i // SIGS_PER_ID]
        if server.process_add(blob, token).accepted:
            accepted += 1
    ingest_seconds = time.perf_counter() - started

    # --- stage 2: a victim's client downloads them -------------------------
    transport = ServerTransport(server)
    host, port = transport.start()
    repo = LocalRepository()
    endpoint = TcpEndpoint(host, port, io_timeout=120.0)
    client = CommunixClient(endpoint=endpoint, repository=repo,
                            clock=ManualClock(start=1_000_000.0))
    started = time.perf_counter()
    report = client.poll_once()
    download_seconds = time.perf_counter() - started
    endpoint.close()
    transport.stop()

    # --- stage 3: the victim's agent chews through them at startup ---------
    history = DeadlockHistory()
    agent = CommunixAgent(app, history, repo)
    started = time.perf_counter()
    agent_report = agent.on_application_start()
    agent_seconds = time.perf_counter() - started

    return {
        "sent": TOTAL,
        "accepted_by_server": accepted,
        "downloaded": report.received,
        "ingest_seconds": ingest_seconds,
        "download_seconds": download_seconds,
        "agent_seconds": agent_seconds,
        "agent_inspected": agent_report.inspected,
        "history_size": len(history),
    }


def test_flood_pipeline(benchmark, results_dir):
    result = benchmark.pedantic(run_flood, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    # The quota bound is absolute: nothing beyond 10/id/day gets in.
    assert result["accepted_by_server"] <= TOTAL
    assert result["downloaded"] <= result["accepted_by_server"]
    lines = [
        "Signature flood pipeline (100 attackers x 5 ids x 10 sigs/day)",
        f"sent to server:        {result['sent']}",
        f"accepted by server:    {result['accepted_by_server']} "
        "(quota + adjacency bound)",
        f"server ingest:         {result['ingest_seconds']:.2f} s  (paper: ~1 s)",
        f"client download:       {result['download_seconds']:.2f} s  "
        "(paper: a few minutes over the WAN; loopback here)",
        f"agent processing:      {result['agent_seconds']:.2f} s of "
        f"{result['agent_inspected']} signatures  (paper: 10-15 s)",
        f"history entries after generalization: {result['history_size']}",
    ]
    write_artifact(results_dir, "flood_pipeline.txt", lines)
