"""EXP-T1 — Table I: application statistics + nesting-analysis performance.

Paper columns: App, Size (LOC), Sync bl/meths, Explicit sync ops,
Nested (Analyzed), Nesting check (sec).  The applications are the generator
presets carrying exactly the paper's statistics; the nesting analysis then
*measures* the Nested/Analyzed split end-to-end (it is generated structure,
not a hard-coded answer — see tests/appmodel/test_generator.py).

The paper's absolute 50-122 s is Soot churning through real JVM bytecode;
ours analyzes the synthetic IR and is much faster.  The reproduced claims
are the per-app statistics and the *relative* cost ordering (more analyzed
sites => more time).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from repro.appmodel import PRESETS, generate_application

APPS = ("jboss", "limewire", "vuze")
SCALE = 1.0

_rows = {}


def analyze(app_name: str):
    app = generate_application(PRESETS[app_name], scale=SCALE)
    return app.statistics()


@pytest.mark.parametrize("app_name", APPS)
def test_table1_nesting_analysis(benchmark, app_name, results_dir):
    stats = benchmark.pedantic(analyze, args=(app_name,), rounds=1, iterations=1)
    _rows[app_name] = stats
    benchmark.extra_info["analyzed"] = stats.analyzed_sites
    benchmark.extra_info["nested"] = stats.nested_sites
    # The generated applications must reproduce the paper's Table I columns.
    spec = PRESETS[app_name]
    assert stats.sync_sites == spec.sync_sites
    assert stats.analyzed_sites == spec.analyzed_sites
    assert stats.nested_sites == spec.nested_sites
    if app_name == APPS[-1]:
        lines = [
            "Table I — application statistics and nesting analysis",
            f"{'App':<10s} {'LOC':>9s} {'Sync':>6s} {'Explicit':>9s} "
            f"{'Nested(Analyzed)':>18s} {'Check(s)':>9s}",
        ]
        paper = {
            "jboss": (636_895, 1_898, 104, 249, 844, 114),
            "limewire": (595_623, 1_435, 189, 277, 781, 122),
            "vuze": (476_702, 3_653, 14, 120, 432, 50),
        }
        for app in APPS:
            s = _rows[app]
            lines.append(
                f"{app:<10s} {s.loc:9d} {s.sync_sites:6d} "
                f"{s.explicit_sync_ops:9d} "
                f"{s.nested_sites:7d} ({s.analyzed_sites:4d}) "
                f"{s.nesting_seconds:9.3f}"
            )
            p = paper[app]
            lines.append(
                f"{'  paper':<10s} {p[0]:9d} {p[1]:6d} {p[2]:9d} "
                f"{p[3]:7d} ({p[4]:4d}) {p[5]:9.1f}"
            )
        write_artifact(results_dir, "table1_nesting.txt", lines)
