"""Benchmark harness shared machinery.

Every benchmark regenerates one table or figure from the paper's §IV.  Each
writes a paper-style text artifact into ``benchmarks/results/`` (so the
series survive the run) *and* registers with pytest-benchmark for timing
stats.  Absolute numbers are not expected to match the paper (pure-Python
substrate, scaled thread counts); EXPERIMENTS.md records the shape checks.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: Path, name: str, lines: list[str]) -> Path:
    """Write a paper-style table/series artifact and echo it to stdout."""
    path = results_dir / name
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    sys.stdout.write("\n" + text)
    return path
