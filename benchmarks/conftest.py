"""Benchmark harness shared machinery.

Every benchmark regenerates one table or figure from the paper's §IV.  Each
writes a paper-style text artifact into ``benchmarks/results/`` (so the
series survive the run) *and* registers with pytest-benchmark for timing
stats.  Absolute numbers are not expected to match the paper (pure-Python
substrate, scaled thread counts); EXPERIMENTS.md records the shape checks.

Smoke runs (``COMMUNIX_BENCH_SMOKE=1``) write ``*.smoke`` artifacts —
``BENCH_foo.smoke.json``, ``results/foo.smoke.txt`` — so a CI-sized run
never clobbers the committed full-run series.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(_SRC))

SMOKE = os.environ.get("COMMUNIX_BENCH_SMOKE") == "1"


def artifact_name(name: str) -> str:
    """``foo.txt`` → ``foo.smoke.txt`` under COMMUNIX_BENCH_SMOKE."""
    if not SMOKE:
        return name
    stem, dot, ext = name.rpartition(".")
    return f"{stem}.smoke.{ext}" if dot else f"{name}.smoke"


def bench_json_path(stem: str) -> Path:
    """Repo-root path for a ``BENCH_*.json`` artifact; smoke runs get
    ``BENCH_*.smoke.json`` so they never overwrite the full-run series."""
    suffix = ".smoke.json" if SMOKE else ".json"
    return REPO_ROOT / f"{stem}{suffix}"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: Path, name: str, lines: list[str]) -> Path:
    """Write a paper-style table/series artifact and echo it to stdout."""
    path = results_dir / artifact_name(name)
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    sys.stdout.write("\n" + text)
    return path
