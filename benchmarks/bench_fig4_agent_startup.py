"""EXP-F4 — Figure 4: client-side validation + generalization at startup.

Paper setup: JBoss, Vuze, and Limewire start and immediately shut down, in
four configurations — Vanilla, Dimmunix (history load only), Communix agent
with 10..10,000 new signatures in the local repository, and the agent with
no new signatures.  Paper shape: the agent adds 2-3 s (11-16% startup
slowdown) at 1,000 signatures; the no-new-signatures agent is
indistinguishable from Dimmunix.

Our applications are the Table I generator presets (scale 0.25 by default —
startup is class loading + hashing, which scales linearly, and the *added*
agent cost is what the figure is about).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_artifact
from repro.appmodel import PRESETS, SignatureFactory, generate_application
from repro.appmodel.loader import Application
from repro.core.agent import CommunixAgent
from repro.core.history import DeadlockHistory
from repro.core.repository import LocalRepository

APPS = ("jboss", "vuze", "limewire")
SIG_COUNTS = (10, 100, 1000, 10_000)
APP_SCALE = 1.0

_rows: list[tuple[str, str, int, float]] = []
_templates: dict[str, tuple] = {}


def template(app_name: str):
    """Generated app + nested sites + a large signature batch, built once."""
    if app_name not in _templates:
        app = generate_application(PRESETS[app_name], scale=APP_SCALE)
        nested = set(app.nested_sync_sites())
        factory = SignatureFactory(app, seed=123)
        batch = factory.make_batch(max(SIG_COUNTS), valid_fraction=0.6)
        local_history = [factory.make_valid(depth=9) for _ in range(20)]
        _templates[app_name] = (app, nested, batch, local_history)
    return _templates[app_name]


def fresh_instance(app_name: str) -> Application:
    """A new Application over the same classes, with cold hash caches —
    startup cost must be measured from scratch every time."""
    app, nested, _, _ = template(app_name)
    instance = Application(app.name, loc=app.loc)
    for class_name in app.class_names():
        instance.load_class(app.get_class(class_name))
    instance.generation = 0
    # The nested-site set is the persisted first-run cache (§III-C3); the
    # nesting analysis itself is Table I's experiment, not Figure 4's.
    instance.preload_nested_sites(nested)
    return instance


def startup_shutdown_vanilla(app_name: str) -> float:
    instance = fresh_instance(app_name)
    started = time.perf_counter()
    instance.start()
    instance.shutdown()
    return time.perf_counter() - started


def startup_shutdown_dimmunix(app_name: str) -> float:
    _, _, _, local_sigs = template(app_name)
    instance = fresh_instance(app_name)
    started = time.perf_counter()
    instance.start()
    history = DeadlockHistory()
    history.merge_from(local_sigs)  # load the persistent history
    instance.shutdown()
    return time.perf_counter() - started


def startup_shutdown_agent(app_name: str, new_sigs: int) -> float:
    _, _, batch, local_sigs = template(app_name)
    instance = fresh_instance(app_name)
    repo = LocalRepository()
    if new_sigs:
        repo.append_from_server(batch[:new_sigs])
    started = time.perf_counter()
    instance.start()
    history = DeadlockHistory()
    history.merge_from(local_sigs)
    agent = CommunixAgent(instance, history, repo)
    agent.on_application_start()
    instance.shutdown()
    return time.perf_counter() - started


@pytest.mark.parametrize("app_name", APPS)
def test_fig4_vanilla(benchmark, app_name):
    elapsed = benchmark.pedantic(
        startup_shutdown_vanilla, args=(app_name,), rounds=3, iterations=1
    )
    _rows.append((app_name, "vanilla", 0, elapsed))


@pytest.mark.parametrize("app_name", APPS)
def test_fig4_dimmunix(benchmark, app_name):
    elapsed = benchmark.pedantic(
        startup_shutdown_dimmunix, args=(app_name,), rounds=3, iterations=1
    )
    _rows.append((app_name, "dimmunix", 0, elapsed))


@pytest.mark.parametrize("app_name", APPS)
def test_fig4_agent_no_new_sigs(benchmark, app_name):
    elapsed = benchmark.pedantic(
        startup_shutdown_agent, args=(app_name, 0), rounds=3, iterations=1
    )
    _rows.append((app_name, "agent-no-new-sigs", 0, elapsed))


@pytest.mark.parametrize("app_name", APPS)
@pytest.mark.parametrize("new_sigs", SIG_COUNTS)
def test_fig4_agent(benchmark, app_name, new_sigs, results_dir):
    elapsed = benchmark.pedantic(
        startup_shutdown_agent, args=(app_name, new_sigs), rounds=1, iterations=1
    )
    _rows.append((app_name, "communix-agent", new_sigs, elapsed))
    if app_name == APPS[-1] and new_sigs == SIG_COUNTS[-1]:
        lines = [
            f"Figure 4 — startup+shutdown vs new signatures (app scale {APP_SCALE})",
            "app        configuration        new_sigs  seconds",
        ]
        for app, config, sigs, seconds in _rows:
            lines.append(f"{app:<10s} {config:<20s} {sigs:8d}  {seconds:8.3f}")
        # Per-app agent delta at 1,000 signatures (the paper's 2-3 s point).
        # NOTE: the paper's 11-16% startup slowdown is relative to 15-45 s
        # JVM application boots; our substrate's vanilla startup (class
        # hashing) is milliseconds, so the ratio is not comparable.  The
        # reproduced shape is the flat-then-linear agent cost in the number
        # of new signatures, and agent-no-new-sigs ~ Dimmunix ~ vanilla.
        for app in APPS:
            base = [s for a, c, n, s in _rows if a == app and c == "vanilla"]
            at_1k = [
                s for a, c, n, s in _rows
                if a == app and c == "communix-agent" and n == 1000
            ]
            if base and at_1k:
                delta = at_1k[0] - base[0]
                rate = 1000 / delta if delta > 0 else float("inf")
                lines.append(
                    f"{app}: agent delta at 1,000 sigs = {delta:.3f}s "
                    f"({rate:,.0f} sigs/s; paper: 2-3s for 1,000, i.e. "
                    "~400/s on 2008-era JVM+Soot)"
                )
        write_artifact(results_dir, "fig4_agent_startup.txt", lines)
