"""EXP-4C — §IV-C: time to achieve full protection against deadlocks.

The paper's estimate: an application with Nd deadlock manifestations, each
taking on average t days for one user to encounter, becomes deadlock-free in
roughly ``t*Nd`` days under Dimmunix alone, and ``t*Nd/Nu`` days under
Communix with Nu users — "the larger Nu, the higher the gain".

The bench sweeps Nu and Nd over the discrete-event model and prints
simulated means next to the paper's analytic estimates.  The reproduced
claim is the ~1/Nu scaling of the Communix column (the simulation runs a
coupon-collector process, so absolute values sit somewhat above t*Nd —
by the harmonic factor H(Nd) — which the paper's rough estimate ignores).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from repro.sim.protection import (
    ProtectionParams,
    analytic_estimate,
    mean_protection_times,
)

USERS = (1, 10, 100, 1000)
MANIFESTATIONS = (5, 10)
RUNS = 20

_rows: list[tuple[int, int, float, float, float, float]] = []


def run_cell(n_users: int, n_manifestations: int):
    params = ProtectionParams(
        n_users=n_users,
        n_manifestations=n_manifestations,
        mean_days_per_manifestation=1.0,
        distribution_latency_days=1.0,
        seed=1234,
    )
    simulated = mean_protection_times(params, runs=RUNS)
    analytic = analytic_estimate(params)
    return simulated, analytic


@pytest.mark.parametrize("n_manifestations", MANIFESTATIONS)
@pytest.mark.parametrize("n_users", USERS)
def test_sec4c_protection_time(benchmark, n_users, n_manifestations, results_dir):
    (sim_dim, sim_com), (ana_dim, ana_com) = benchmark.pedantic(
        run_cell, args=(n_users, n_manifestations), rounds=1, iterations=1
    )
    _rows.append((n_users, n_manifestations, sim_dim, sim_com, ana_dim, ana_com))
    benchmark.extra_info.update(
        simulated_communix_days=sim_com, analytic_communix_days=ana_com
    )
    # Communix is never slower than Dimmunix alone (beyond the 1-day
    # distribution latency).
    assert sim_com <= sim_dim + 1.0 + 1e-9
    if n_users == USERS[-1] and n_manifestations == MANIFESTATIONS[-1]:
        lines = [
            "Section IV-C — days to full deadlock protection (t = 1 day)",
            f"{'Nu':>5s} {'Nd':>3s} {'sim Dimmunix':>13s} {'sim Communix':>13s} "
            f"{'t*Nd':>6s} {'t*Nd/Nu':>8s}",
        ]
        for nu, nd, sd, sc, ad, ac in sorted(_rows):
            lines.append(
                f"{nu:5d} {nd:3d} {sd:13.2f} {sc:13.2f} {ad:6.1f} {ac:8.3f}"
            )
        # Scaling check across the sweep: Communix time shrinks ~1/Nu.
        for nd in MANIFESTATIONS:
            series = {nu: sc for nu, d, _, sc, _, _ in _rows if d == nd}
            if 1 in series and 100 in series:
                gain = series[1] / series[100]
                lines.append(
                    f"Nd={nd}: protection-time gain at Nu=100 vs Nu=1 = "
                    f"{gain:.1f}x (distribution latency bounds the tail)"
                )
        write_artifact(results_dir, "sec4c_protection_time.txt", lines)
