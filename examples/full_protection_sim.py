#!/usr/bin/env python
"""§IV-C: how fast does a user community become deadlock-free?

Run:  python examples/full_protection_sim.py

The paper's estimate: with Nd deadlock manifestations taking on average t
days each to encounter, one user running Dimmunix alone needs roughly t*Nd
days of exposure; a community of Nu users sharing signatures through
Communix needs roughly t*Nd/Nu (plus the once-a-day distribution latency).
This example sweeps community sizes over the discrete-event model.
"""

from repro.sim.protection import (
    ProtectionParams,
    analytic_estimate,
    mean_protection_times,
)


def main() -> None:
    n_manifestations = 10
    print(f"application with {n_manifestations} deadlock manifestations, "
          "t = 1 day per encounter, daily signature distribution\n")
    header = (f"{'users':>7s} {'Dimmunix alone':>15s} {'Communix':>10s} "
              f"{'paper t*Nd':>11s} {'paper t*Nd/Nu':>14s}")
    print(header)
    print("-" * len(header))
    for n_users in (1, 3, 10, 30, 100, 300, 1000):
        params = ProtectionParams(
            n_users=n_users,
            n_manifestations=n_manifestations,
            mean_days_per_manifestation=1.0,
            distribution_latency_days=1.0,
            seed=42,
        )
        sim_dim, sim_com = mean_protection_times(params, runs=12)
        ana_dim, ana_com = analytic_estimate(params)
        print(f"{n_users:7d} {sim_dim:12.1f} d  {sim_com:7.1f} d "
              f"{ana_dim:9.1f} d {ana_com:11.3f} d")
    print(
        "\nThe simulated Dimmunix-alone column sits above t*Nd by the\n"
        "coupon-collector factor H(Nd) the paper's rough estimate ignores;\n"
        "the Communix column shows the 1/Nu collapse until the one-day\n"
        "distribution latency dominates — 'the larger Nu, the higher the\n"
        "gain that Communix brings.'"
    )


if __name__ == "__main__":
    main()
