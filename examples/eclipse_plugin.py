#!/usr/bin/env python
"""Scenario 2 from the paper's introduction: the deadlock-prone IDE plugin.

"A deadlock-prone version of a plugin is released for the Eclipse IDE,
which makes Eclipse hang.  If the plugin has multiple deadlock bugs, each
user has to encounter all these deadlocks for Dimmunix to be able to avoid
them.  Sharing the signatures of the deadlocks with users who just
installed the plugin is useful; these users will not experience any
deadlocks while using the plugin if all deadlocks have already been
encountered by some users."

Run:  python examples/eclipse_plugin.py

The plugin ships *two* independent deadlock bugs.  alice trips over bug #1,
carol over bug #2 — each is protected only against the bug she saw.  dave
installs the plugin after syncing with the Communix server and is immune to
both from his very first session.
"""

import repro.sim.workloads as workloads_mod
from repro import CommunixNode, CommunixServer, InProcessEndpoint, PythonAppAdapter
from repro.dimmunix import DimmunixConfig
from repro.sim.workloads import DiningPhilosophers, TwoLockProgram


def ide_node(name: str, endpoint) -> CommunixNode:
    node = CommunixNode(
        name, None, endpoint,
        dimmunix_config=DimmunixConfig(
            detection_interval=0.02,
            acquire_poll_interval=0.01,
            avoidance_recheck_interval=0.005,
        ),
    )
    node.attach_app(
        PythonAppAdapter("eclipse+plugin-1.0", [workloads_mod],
                         runtime=node.runtime)
    )
    node.start()
    return node


def plugin_bugs(node: CommunixNode) -> dict:
    """The plugin's two distinct deadlock bugs.

    They live in *different code paths* (an AB/BA ordering bug in the
    refactoring engine, a circular fork-grab in the build scheduler), so
    they produce distinct signatures — one per bug, as §III-D intends.
    """
    return {
        "refactor-vs-index": TwoLockProgram(node.runtime, "refactor"),
        "build-scheduler-cycle": DiningPhilosophers(node.runtime, seats=3),
    }


def main() -> None:
    server = CommunixServer()
    endpoint = InProcessEndpoint(server)

    print("=== alice hits bug #1 (refactoring while indexing) ===")
    alice = ide_node("alice", endpoint)
    alice_bugs = plugin_bugs(alice)
    result = alice_bugs["refactor-vs-index"].run_once(collide=True)
    print(f"alice's IDE hung: {result.deadlocked}")
    alice.plugin.flush()

    print("\n=== carol hits bug #2 (circular wait in the build scheduler) ===")
    carol = ide_node("carol", endpoint)
    carol_bugs = plugin_bugs(carol)
    for _ in range(5):  # the 3-way cycle needs the right interleaving
        result = carol_bugs["build-scheduler-cycle"].run_once(collide=True)
        if result.deadlock_errors:
            break
    print(f"carol's IDE hung: {result.deadlocked}")
    carol.plugin.flush()

    print(f"\nserver database: {len(server.database)} signatures "
          "(one per bug)")

    print("\n=== dave installs the plugin fresh ===")
    dave = ide_node("dave", endpoint)
    downloaded = dave.sync_now()
    print(f"dave downloaded {downloaded.stored} signatures")
    dave_bugs = plugin_bugs(dave)
    # Warm-up session discovers the nested lock sites, then the agent
    # validates both signatures against dave's plugin version.
    for program in dave_bugs.values():
        program.run_once(collide=False)
    report = dave.start_application()
    print(f"dave's agent accepted {report.accepted}/2 signatures; "
          f"history size {len(dave.history)}")

    for bug_name, program in dave_bugs.items():
        result = program.run_once(collide=True)
        status = "DEADLOCK" if result.deadlocked else "clean"
        print(f"  dave exercises {bug_name}: {status}")
        assert not result.deadlock_errors
        assert dave.runtime.stats.deadlocks_detected == 0

    print(f"\ndave suffered {dave.runtime.stats.deadlocks_detected} deadlocks "
          f"while being protected {dave.runtime.stats.avoidance_blocks} time(s)")
    print("full protection from day one: OK")
    for node in (alice, carol, dave):
        node.close()


if __name__ == "__main__":
    main()
