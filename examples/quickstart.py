#!/usr/bin/env python
"""Quickstart: deadlock immunity for a Python program in ~40 lines.

Run:  python examples/quickstart.py

The program has a classic AB/BA deadlock bug.  On the first run Dimmunix
detects the deadlock, extracts its signature (outer + inner call stacks),
and saves it in the history.  Every later run with the same history is
steered around the bug: the same colliding schedule completes cleanly.
"""

from repro import DimmunixConfig, DimmunixRuntime
from repro.dimmunix.events import EventKind
from repro.sim.workloads import TwoLockProgram


def main() -> None:
    config = DimmunixConfig(
        detection_interval=0.02,
        acquire_poll_interval=0.01,
        avoidance_recheck_interval=0.005,
    )
    runtime = DimmunixRuntime(config=config)
    runtime.start()
    runtime.events.subscribe(
        lambda e: print(f"  [dimmunix] {e.kind.value} {e.payload}")
    )

    program = TwoLockProgram(runtime, "quickstart")

    print("=== run 1: the program deadlocks ===")
    result = program.run_once(collide=True)
    print(f"deadlocked: {result.deadlocked}; "
          f"{len(result.deadlock_errors)} thread(s) aborted as victim")
    signature = runtime.history.snapshot()[0]
    print(f"captured signature {signature.sig_id} with "
          f"{len(signature.threads)} threads:")
    for thread in signature.threads:
        print(f"  outer lock statement: {thread.outer.top}")
        print(f"  inner lock statement: {thread.inner.top}")

    print("\n=== run 2: same schedule, now immune ===")
    result = program.run_once(collide=True)
    print(f"deadlocked: {result.deadlocked}; completed: {sorted(result.completed)}")
    print(f"avoidance suspensions: {runtime.stats.avoidance_blocks}")
    assert not result.deadlocked

    print("\n=== run it five more times for good measure ===")
    for i in range(5):
        result = program.run_once(collide=True)
        assert not result.deadlocked, "immunity must hold"
        print(f"  run {i + 3}: clean ({sorted(result.completed)})")

    warnings = runtime.events.count(EventKind.FALSE_POSITIVE_WARNING)
    print(f"\nfalse-positive warnings so far: {warnings}")
    print("deadlock immunity: OK")
    runtime.stop()


if __name__ == "__main__":
    main()
