#!/usr/bin/env python
"""Scenario 1 from the paper's introduction: the deadlocking browser.

"The user opens a web page, and the browser deadlocks while rendering the
content of the page, due to a Java applet. [...] Even the first occurrence
of the deadlock may have severe consequences: the browser might be in the
middle of some important operation, like purchasing an expensive product.
Therefore, a framework like Communix that prevents other users from
encountering the deadlock in the first place is beneficial."

Run:  python examples/browser_applet.py

One unlucky user (alice) hits the renderer/applet lock-order bug.  Her
signature travels through the Communix server to bob, whose browser then
refuses to walk into the same interleaving — bob completes his "purchase"
without ever having seen the bug.
"""

import repro.sim.workloads as workloads_mod
from repro import CommunixNode, CommunixServer, InProcessEndpoint, PythonAppAdapter
from repro.dimmunix import DimmunixConfig
from repro.sim.workloads import TwoLockProgram


def browser_node(name: str, endpoint) -> CommunixNode:
    node = CommunixNode(
        name, None, endpoint,
        dimmunix_config=DimmunixConfig(
            detection_interval=0.02,
            acquire_poll_interval=0.01,
            avoidance_recheck_interval=0.005,
        ),
    )
    node.attach_app(
        PythonAppAdapter("browser-9.0", [workloads_mod], runtime=node.runtime)
    )
    node.start()
    return node


def main() -> None:
    server = CommunixServer()
    endpoint = InProcessEndpoint(server)

    print("=== alice opens the page first ===")
    alice = browser_node("alice", endpoint)
    # The renderer thread takes DOM-lock then applet-lock; the applet thread
    # takes them in the opposite order: the classic bug.
    alice_browser = TwoLockProgram(alice.runtime, "page-render")
    result = alice_browser.run_once(collide=True)
    print(f"alice's browser deadlocked: {result.deadlocked} "
          "(she loses her shopping cart...)")
    alice.plugin.flush()
    print(f"signature uploaded; server database now holds "
          f"{len(server.database)} signature(s)")

    print("\n=== bob opens the same page later that day ===")
    bob = browser_node("bob", endpoint)
    downloaded = bob.sync_now()
    print(f"bob's Communix client downloaded {downloaded.stored} new signature(s)")

    bob_browser = TwoLockProgram(bob.runtime, "page-render")
    # First-run warm-up discovers the browser's nested lock sites, then the
    # agent validates and installs the downloaded signature.
    bob_browser.run_once(collide=False)
    report = bob.start_application()
    print(f"bob's agent accepted {report.accepted} signature(s) "
          f"(rejected: {report.rejected_total})")

    result = bob_browser.run_once(collide=True)
    print(f"bob's browser deadlocked: {result.deadlocked}; "
          f"purchase completed by threads {sorted(result.completed)}")
    print(f"avoidance quietly serialized the dangerous interleaving "
          f"({bob.runtime.stats.avoidance_blocks} suspension(s))")
    assert not result.deadlocked
    assert bob.runtime.stats.deadlocks_detected == 0

    print("\nbob never experienced the deadlock: collaborative immunity works")
    alice.close()
    bob.close()


if __name__ == "__main__":
    main()
