#!/usr/bin/env python
"""The §IV-B attacker, end to end — and every line of defence that stops him.

Run:  python examples/dos_attack.py

Mallory wants to slow down everyone's application by feeding Dimmunix fake
deadlock signatures.  Communix contains the attack in layers:

1. the server only talks to holders of encrypted user IDs (forged tokens
   are rejected outright);
2. each ID lands at most 10 signatures per day;
3. two signatures from the same ID sharing *some but not all* top frames
   ("adjacent") are rejected — collapsing the forgeable space to at most
   one signature per nested synchronized block;
4. the victim's agent rejects anything whose hashes don't match the app,
   whose outer stacks are shallower than 5 frames, or whose outer stacks
   don't end in a *nested* synchronized block.
"""

import random

from repro import CommunixServer
from repro.appmodel import PRESETS, SignatureFactory, generate_application
from repro.client.client import CommunixClient
from repro.client.endpoints import InProcessEndpoint
from repro.core.agent import CommunixAgent
from repro.core.history import DeadlockHistory
from repro.core.repository import LocalRepository
from repro.util.clock import ManualClock


def main() -> None:
    clock = ManualClock(start=1_000_000.0)
    server = CommunixServer(clock=clock)
    app = generate_application(PRESETS["jboss"], scale=0.1)
    app.nested_sync_sites()
    factory = SignatureFactory(app, seed=1)

    print("=== layer 1: forged tokens ===")
    rng = random.Random(7)
    rejected = 0
    for _ in range(10):
        fake_token = "".join(rng.choice("0123456789abcdef") for _ in range(96))
        outcome = server.process_add(factory.make_valid().to_bytes(), fake_token)
        rejected += (not outcome.accepted)
    print(f"10 uploads with manufactured tokens -> {rejected} rejected")

    print("\n=== layer 2: the daily quota ===")
    token = server.issue_user_token()  # mallory got one real ID
    accepted = 0
    for _ in range(50):
        sig = factory.make_foreign()  # fakes that are at least well-formed
        if server.process_add(sig.to_bytes(), token).accepted:
            accepted += 1
    print(f"50 uploads from one ID in one day -> {accepted} accepted "
          f"(limit {server.quota.limit})")

    print("\n=== layer 3: adjacency ===")
    token2 = server.issue_user_token()
    base, adjacent_sig = factory.make_adjacent_pair()
    first = server.process_add(base.to_bytes(), token2)
    second = server.process_add(adjacent_sig.to_bytes(), token2)
    print(f"signature A accepted: {first.accepted}; "
          f"adjacent signature B from the same ID: {second.verdict}")

    print("\n=== layer 4: client-side validation at the victim ===")
    # Whatever made it into the database reaches the victim's repository...
    repo = LocalRepository()
    client = CommunixClient(endpoint=InProcessEndpoint(server),
                            repository=repo, clock=clock)
    downloaded = client.poll_once()
    print(f"victim downloaded {downloaded.stored} signatures")
    # ...plus a fresh batch mallory uploads from many stolen IDs:
    attack_batch = (
        [factory.make_shallow(depth=d) for d in (1, 2, 3, 4)]
        + [factory.make_bad_hash() for _ in range(4)]
        + [factory.make_non_nested() for _ in range(4)]
    )
    repo.append_from_server(attack_batch)

    history = DeadlockHistory()
    agent = CommunixAgent(app, history, repo)
    report = agent.on_application_start()
    print(f"agent inspected {report.inspected}: accepted {report.accepted}, "
          f"rejected {report.rejected}")
    print(f"history after the attack: {len(history)} signatures "
          f"(outer tops limited to the app's "
          f"{len(app.nested_sync_sites())} nested sync blocks)")

    print("\nworst case damage is bounded: Table II measures it at 8-40% "
          "overhead (see benchmarks/bench_table2_dos_overhead.py)")


if __name__ == "__main__":
    main()
