"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (this offline environment lacks the ``wheel`` package, so
``pip install -e .`` cannot complete; ``python setup.py develop`` works and
this fallback covers a bare checkout).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
