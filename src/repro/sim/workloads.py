"""Deadlock-prone programs with realistic call-stack depth.

These are the "applications" of the integration tests and examples.  The
acquisition call chains are deliberately several frames deep so that the
captured outer call stacks satisfy the paper's depth >= 5 validation floor
when the signatures travel through Communix to another node.

:class:`TwoLockProgram` is the canonical AB/BA bug: two code paths taking
two locks in opposite orders.  ``run_once(collide=True)`` steers the threads
into the deadlock window with events; with a Dimmunix history containing the
signature, the same schedule is serialized by avoidance instead.

:class:`DiningPhilosophers` is the classic N-way cycle, for deadlocks
involving more than two threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.dimmunix.lock import DimmunixLock
from repro.dimmunix.runtime import DimmunixRuntime
from repro.util.errors import DeadlockError


@dataclass
class RunResult:
    completed: list[str] = field(default_factory=list)
    deadlock_errors: list[DeadlockError] = field(default_factory=list)
    timed_out: bool = False

    @property
    def deadlocked(self) -> bool:
        return bool(self.deadlock_errors) or self.timed_out


class TwoLockProgram:
    """Two threads, two locks, opposite acquisition orders."""

    def __init__(self, runtime: DimmunixRuntime, name: str = "twolock",
                 rendezvous_timeout: float = 0.7):
        self.runtime = runtime
        self.lock_a = DimmunixLock(runtime, f"{name}-A")
        self.lock_b = DimmunixLock(runtime, f"{name}-B")
        self._rendezvous_timeout = rendezvous_timeout

    # --- thread 1 path: A then B, through a deep call chain ---------------
    # Four named levels + the critical frame keep the *trimmed* outer stacks
    # at depth >= 5 on a receiving node (the thread-bootstrap closure below
    # the chain is anonymous and gets trimmed by the hash check).
    def _t1_level1(self, result, collide, e1, e2):
        self._t1_level2(result, collide, e1, e2)

    def _t1_level2(self, result, collide, e1, e2):
        self._t1_level3(result, collide, e1, e2)

    def _t1_level3(self, result, collide, e1, e2):
        self._t1_level4(result, collide, e1, e2)

    def _t1_level4(self, result, collide, e1, e2):
        self._t1_critical(result, collide, e1, e2)

    def _t1_critical(self, result, collide, e1, e2):
        with self.lock_a:
            if collide:
                e1.set()
                e2.wait(self._rendezvous_timeout)
            with self.lock_b:
                result.completed.append("t1")

    # --- thread 2 path: B then A ------------------------------------------
    def _t2_level1(self, result, collide, e1, e2):
        self._t2_level2(result, collide, e1, e2)

    def _t2_level2(self, result, collide, e1, e2):
        self._t2_level3(result, collide, e1, e2)

    def _t2_level3(self, result, collide, e1, e2):
        self._t2_level4(result, collide, e1, e2)

    def _t2_level4(self, result, collide, e1, e2):
        self._t2_critical(result, collide, e1, e2)

    def _t2_critical(self, result, collide, e1, e2):
        with self.lock_b:
            if collide:
                e2.set()
                e1.wait(self._rendezvous_timeout)
            with self.lock_a:
                result.completed.append("t2")

    # ----------------------------------------------------------------- run
    def run_once(self, collide: bool = True, join_timeout: float = 5.0) -> RunResult:
        result = RunResult()
        e1, e2 = threading.Event(), threading.Event()

        def runner(entry):
            try:
                entry(result, collide, e1, e2)
            except DeadlockError as exc:
                result.deadlock_errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(self._t1_level1,), name="twolock-1"),
            threading.Thread(target=runner, args=(self._t2_level1,), name="twolock-2"),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(join_timeout)
        result.timed_out = any(t.is_alive() for t in threads)
        return result


class DiningPhilosophers:
    """N philosophers, N forks, everyone grabs left-then-right."""

    def __init__(self, runtime: DimmunixRuntime, seats: int = 3,
                 rendezvous_timeout: float = 0.7):
        if seats < 2:
            raise ValueError("need at least two philosophers")
        self.runtime = runtime
        self.seats = seats
        self.forks = [DimmunixLock(runtime, f"fork-{i}") for i in range(seats)]
        self._rendezvous_timeout = rendezvous_timeout

    def _reach(self, seat, result, collide, barrier):
        self._reach2(seat, result, collide, barrier)

    def _reach2(self, seat, result, collide, barrier):
        self._reach3(seat, result, collide, barrier)

    def _reach3(self, seat, result, collide, barrier):
        self._reach4(seat, result, collide, barrier)

    def _reach4(self, seat, result, collide, barrier):
        self._dine(seat, result, collide, barrier)

    def _dine(self, seat, result, collide, barrier):
        left = self.forks[seat]
        right = self.forks[(seat + 1) % self.seats]
        with left:
            if collide:
                try:
                    barrier.wait(self._rendezvous_timeout)
                except threading.BrokenBarrierError:
                    pass  # avoidance already serialized someone; fine
            with right:
                result.completed.append(f"p{seat}")

    def run_once(self, collide: bool = True, join_timeout: float = 6.0) -> RunResult:
        result = RunResult()
        barrier = threading.Barrier(self.seats)

        def runner(seat):
            try:
                self._reach(seat, result, collide, barrier)
            except DeadlockError as exc:
                result.deadlock_errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(seat,), name=f"phil-{seat}")
            for seat in range(self.seats)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(join_timeout)
        result.timed_out = any(t.is_alive() for t in threads)
        return result
