"""Application workloads for the DoS evaluation (paper §IV-B, Table II).

The paper measures the worst-case overhead malicious signatures can cause in
five real applications under their standard benchmarks (RUBiS, JDBCBench,
Eclipse startup, a Limewire upload test, Vuze startup).  We cannot run those
applications; per the substitution rule we synthesize workloads with the
locking *structure* that determines the numbers:

* a pool of worker threads issuing operations;
* each operation takes a nested (outer -> inner) lock pair around a critical
  section — the nested synchronized blocks malicious signatures must target;
* operations reach the locked code through one of several distinct call
  paths — this is what separates depth-5 signatures (which pin one path)
  from depth-1 signatures (which match every path and serialize everything,
  the ">100%" case the depth floor exists to prevent);
* per-operation CPU work inside and outside the critical section sets the
  lock-density, which is what differentiates a lock-heavy application server
  (RUBiS: high overhead) from a mostly-unlocked file-sharing client (Vuze:
  low overhead).

``lock_factory`` injection lets the same workload run vanilla
(``threading.Lock``) or immunized (:class:`DimmunixLock`), which is exactly
the Table II comparison.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.dimmunix.lock import DimmunixLock
from repro.dimmunix.runtime import DimmunixRuntime


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic application benchmark."""

    name: str
    benchmark: str
    threads: int
    ops_per_thread: int
    resources: int  # number of independent (outer, inner) lock pairs
    paths: int  # distinct call paths into the locked operation (<= 8)
    work_inside: int  # CPU iterations while holding the nested locks
    work_outside: int  # CPU iterations per op outside any lock

    def scaled(self, ops_scale: float) -> "WorkloadSpec":
        if ops_scale == 1.0:
            return self
        return WorkloadSpec(
            name=self.name,
            benchmark=self.benchmark,
            threads=self.threads,
            ops_per_thread=max(10, int(self.ops_per_thread * ops_scale)),
            resources=self.resources,
            paths=self.paths,
            work_inside=self.work_inside,
            work_outside=self.work_outside,
        )


#: The five Table II rows.  Lock density (work_outside : work_inside ratio
#: and ops volume) decreases down the list, which is what produces the
#: paper's overhead ordering RUBiS ~ JDBCBench > Eclipse > Limewire > Vuze.
#: Tuned so that, on CPython with the benchmark GIL settings
#: (``sys.setswitchinterval(0.0005)``), the worst-case DoS overhead lands in
#: the paper's Table II band and its ordering: lock density — operations per
#: second through the nested critical sections — decreases from the RUBiS-
#: like application server down to the mostly-unlocked Vuze startup.
APP_WORKLOADS: dict[str, WorkloadSpec] = {
    "jboss_rubis": WorkloadSpec(
        name="jboss_rubis", benchmark="RUBiS", threads=3, ops_per_thread=100,
        resources=6, paths=8, work_inside=2500, work_outside=14000,
    ),
    "mysql_jdbc": WorkloadSpec(
        name="mysql_jdbc", benchmark="JDBCBench", threads=3, ops_per_thread=90,
        resources=4, paths=6, work_inside=2500, work_outside=16000,
    ),
    "eclipse": WorkloadSpec(
        name="eclipse", benchmark="Startup + Shutdown", threads=3,
        ops_per_thread=85, resources=3, paths=6, work_inside=2000,
        work_outside=18000,
    ),
    "limewire_upload": WorkloadSpec(
        name="limewire_upload", benchmark="Upload test", threads=3,
        ops_per_thread=32, resources=4, paths=4, work_inside=1200,
        work_outside=48000,
    ),
    "vuze": WorkloadSpec(
        name="vuze", benchmark="Startup + Shutdown", threads=3,
        ops_per_thread=30, resources=4, paths=4, work_inside=1000,
        work_outside=55000,
    ),
}


def _spin(iterations: int) -> int:
    """Deterministic CPU work (a little LCG) the optimizer cannot elide."""
    x = 1
    for _ in range(iterations):
        x = (x * 1664525 + 1013904223) & 0xFFFFFFFF
    return x


class AppWorkload:
    """A runnable instance of a :class:`WorkloadSpec`."""

    MAX_PATHS = 8

    def __init__(self, spec: WorkloadSpec,
                 lock_factory: Callable[[str], object] | None = None,
                 seed: int = 0):
        if spec.paths > self.MAX_PATHS:
            raise ValueError(f"at most {self.MAX_PATHS} call paths supported")
        self.spec = spec
        factory = lock_factory or (lambda name: threading.Lock())
        self.outer_locks = [
            factory(f"{spec.name}-outer-{i}") for i in range(spec.resources)
        ]
        self.inner_locks = [
            factory(f"{spec.name}-inner-{i}") for i in range(spec.resources)
        ]
        self._seed = seed
        self._paths = [
            getattr(self, f"_path_{k}") for k in range(spec.paths)
        ]

    # ------------------------------------------------- distinct call paths
    # Eight syntactically distinct entry points so that captured stacks
    # differ in their path frame; depth-5 signatures pin exactly one.
    def _path_0(self, r):
        self._op_enter(r)

    def _path_1(self, r):
        self._op_enter(r)

    def _path_2(self, r):
        self._op_enter(r)

    def _path_3(self, r):
        self._op_enter(r)

    def _path_4(self, r):
        self._op_enter(r)

    def _path_5(self, r):
        self._op_enter(r)

    def _path_6(self, r):
        self._op_enter(r)

    def _path_7(self, r):
        self._op_enter(r)

    # ------------------------------------------------------ the locked op
    # Two dispatch levels keep captured outer stacks at depth 5
    # ([_worker, _path_k, _op_enter, _op_dispatch, _op_locked]) while the
    # path frame stays inside a depth-5 suffix — that is exactly what makes
    # depth-5 malicious signatures path-specific and depth-1 ones global.
    def _op_enter(self, r):
        self._op_dispatch(r)

    def _op_dispatch(self, r):
        self._op_locked(r)

    def _op_locked(self, r):
        with self.outer_locks[r]:
            self._op_inner(r)

    def _op_inner(self, r):
        with self.inner_locks[r]:
            _spin(self.spec.work_inside)

    # ------------------------------------------------------------- running
    def _worker(self, worker_index: int, errors: list) -> None:
        rng = random.Random(self._seed * 1000 + worker_index)
        spec = self.spec
        try:
            for _ in range(spec.ops_per_thread):
                path_fn = self._paths[rng.randrange(len(self._paths))]
                resource = rng.randrange(spec.resources)
                path_fn(resource)
                _spin(spec.work_outside)
        except Exception as exc:  # surfaced to run()
            errors.append(exc)

    def run(self) -> float:
        """Execute the workload; returns elapsed wall-clock seconds."""
        errors: list = []
        threads = [
            threading.Thread(
                target=self._worker, args=(i, errors),
                name=f"{self.spec.name}-w{i}",
            )
            for i in range(self.spec.threads)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        return elapsed

    # ------------------------------------------------------- calibration
    def sample_stacks(self, runtime: DimmunixRuntime, ops: int = 200) -> list:
        """Record acquisition stacks by running a short burst of the *real*
        workload (worker threads and all): forged signatures must carry the
        exact stacks production operations produce, so sampling through any
        other call path would never match at runtime.

        ``runtime`` must have ``record_acquisition_stacks`` enabled and be
        the runtime behind this workload's locks.
        """
        burst = WorkloadSpec(
            name=self.spec.name,
            benchmark=self.spec.benchmark,
            threads=self.spec.threads,
            ops_per_thread=max(1, ops // self.spec.threads),
            resources=self.spec.resources,
            paths=self.spec.paths,
            work_inside=1,
            work_outside=1,
        )
        factory = dimmunix_lock_factory(runtime)
        sampler = AppWorkload(burst, lock_factory=factory, seed=self._seed)
        sampler.run()
        return list(runtime.acquisition_stacks.values())


def dimmunix_lock_factory(runtime: DimmunixRuntime) -> Callable[[str], DimmunixLock]:
    def factory(name: str) -> DimmunixLock:
        return DimmunixLock(runtime, name)

    return factory


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def measure_overhead(spec: WorkloadSpec, runtime: DimmunixRuntime,
                     repeats: int = 5, seed: int = 0) -> dict:
    """Run ``spec`` vanilla and immunized; return timing + overhead %.

    The vanilla run uses plain ``threading.Lock``; the immunized run uses
    Dimmunix locks bound to ``runtime`` (whose history the caller prepares —
    empty, critical-path signatures, off-path signatures, ...).  The vanilla
    baseline takes the best (min) of the repeats; the immunized side takes
    the median — avoidance suspensions make its distribution wide and
    skewed, and the median is what a user experiences.
    """
    vanilla = min(
        AppWorkload(spec, lock_factory=None, seed=seed + i).run()
        for i in range(repeats)
    )
    factory = dimmunix_lock_factory(runtime)
    immunized = _median(
        [
            AppWorkload(spec, lock_factory=factory, seed=seed + i).run()
            for i in range(repeats)
        ]
    )
    overhead = (immunized - vanilla) / vanilla * 100.0
    return {
        "workload": spec.name,
        "benchmark": spec.benchmark,
        "vanilla_seconds": vanilla,
        "dimmunix_seconds": immunized,
        "overhead_percent": overhead,
    }
