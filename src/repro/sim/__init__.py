"""Workload and simulation substrates for the evaluation.

The paper evaluates on large Java applications (JBoss/RUBiS, MySQL JDBC,
Eclipse, Limewire, Vuze) and on a hypothetical field deployment with many
users.  Neither is runnable here, so this subpackage provides the documented
substitutes (DESIGN.md):

* :mod:`repro.sim.workloads` — small deadlock-prone programs with realistic
  call-stack depth, used by tests and examples to exercise the full
  detect -> share -> avoid cycle;
* :mod:`repro.sim.apps` — parameterized lock-intensive application workloads
  whose locking structure drives the Table II / Fig. 4 numbers;
* :mod:`repro.sim.attack` — the §IV-B attacker: forging critical-path
  signatures at a chosen depth;
* :mod:`repro.sim.protection` — the §IV-C time-to-full-protection model.
"""

from repro.sim.apps import (
    APP_WORKLOADS,
    AppWorkload,
    WorkloadSpec,
    dimmunix_lock_factory,
    measure_overhead,
)
from repro.sim.attack import forge_critical_path_signatures, forge_off_path_signatures
from repro.sim.protection import (
    ProtectionOutcome,
    ProtectionParams,
    analytic_estimate,
    mean_protection_times,
    simulate_protection,
)
from repro.sim.workloads import DiningPhilosophers, RunResult, TwoLockProgram

__all__ = [
    "APP_WORKLOADS",
    "AppWorkload",
    "WorkloadSpec",
    "dimmunix_lock_factory",
    "measure_overhead",
    "forge_critical_path_signatures",
    "forge_off_path_signatures",
    "ProtectionOutcome",
    "ProtectionParams",
    "analytic_estimate",
    "mean_protection_times",
    "simulate_protection",
    "DiningPhilosophers",
    "RunResult",
    "TwoLockProgram",
]
