"""The §IV-B attacker: forging malicious deadlock signatures.

"The attackers have only one way to exploit Dimmunix, to slow down a Java
application: they can send signatures with outer call stacks of depth 5
which cover all the nested synchronized blocks/methods that are on the
critical path, in order to maximize the amount of thread serialization."

:func:`forge_critical_path_signatures` builds exactly those: two-thread
signatures whose outer stacks are depth-``d`` suffixes of real acquisition
stacks sampled from the victim workload.  :func:`forge_off_path_signatures`
builds signatures pointing at locations the application never executes (the
"<2% if none is on the critical path" control).
"""

from __future__ import annotations

import itertools
import random

from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_REMOTE,
    ThreadSignature,
)


def forge_critical_path_signatures(sample_stacks: list[CallStack],
                                   count: int = 20, depth: int = 5,
                                   seed: int = 0) -> list[DeadlockSignature]:
    """Pair up sampled acquisition stacks into ``count`` fake signatures.

    Each signature claims "a deadlock happens between code at suffix A and
    code at suffix B"; Dimmunix will dutifully serialize those code paths.
    Deeper suffixes pin fewer executions (the point of the depth floor).
    """
    if len(sample_stacks) < 2:
        raise ValueError("need at least two sample stacks to forge pairs")
    rng = random.Random(seed)
    suffixes: list[CallStack] = []
    seen: set[tuple] = set()
    for stack in sample_stacks:
        suffix = stack.suffix(depth)
        key = suffix.locations()
        if key not in seen and suffix:
            seen.add(key)
            suffixes.append(suffix)
    pairs = list(itertools.combinations(range(len(suffixes)), 2))
    rng.shuffle(pairs)
    signatures: list[DeadlockSignature] = []
    for a, b in pairs:
        if len(signatures) >= count:
            break
        threads = (
            ThreadSignature(outer=suffixes[a], inner=suffixes[a]),
            ThreadSignature(outer=suffixes[b], inner=suffixes[b]),
        )
        try:
            signatures.append(
                DeadlockSignature(threads=threads, origin=ORIGIN_REMOTE)
            )
        except Exception:
            continue  # identical suffixes etc.; just skip the pair
    if not signatures:
        raise ValueError("could not forge any signature from the samples")
    # If there are fewer distinct pairs than requested, the attacker simply
    # sends what exists (the history deduplicates anyway).
    return signatures


def forge_off_path_signatures(count: int = 20, depth: int = 5,
                              seed: int = 0) -> list[DeadlockSignature]:
    """Signatures whose locations the application never executes."""
    rng = random.Random(seed)
    signatures = []
    for i in range(count):
        stacks = []
        for j in range(2):
            frames = [
                Frame(
                    class_name="ghost.module",
                    method=f"phantom_{i}_{j}_{k}",
                    line=rng.randrange(1, 10_000),
                    code_hash=f"{i:04x}{j:02x}{k:02x}" + "00" * 4,
                )
                for k in range(depth)
            ]
            stacks.append(CallStack(frames))
        signatures.append(
            DeadlockSignature(
                threads=(
                    ThreadSignature(outer=stacks[0], inner=stacks[0]),
                    ThreadSignature(outer=stacks[1], inner=stacks[1]),
                ),
                origin=ORIGIN_REMOTE,
            )
        )
    return signatures
