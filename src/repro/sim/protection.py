"""Time to achieve full deadlock protection (paper §IV-C).

The paper estimates: with ``Nd`` possible deadlock manifestations and an
average of ``t`` days for one user to experience one manifestation, an
application protected by Dimmunix alone becomes deadlock-free in roughly
``t * Nd`` days, while Communix brings that down to roughly ``t * Nd / Nu``
for ``Nu`` users — "the estimate we made here is purely theoretical".

This module provides both the analytic estimate and a discrete-event
simulation of the model behind it: each user experiences manifestation
events as a Poisson process with mean inter-arrival ``t`` days, each event
drawing a manifestation uniformly at random.  Dimmunix-alone protection for
a user completes when *that user* has seen every manifestation (a coupon
collector, hence the simulated mean runs ``H(Nd)`` above the paper's rough
``t*Nd``); Communix protection completes when the *union* of all users'
observations covers every manifestation, plus the distribution latency
(uploads are immediate, downloads happen once a day).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ProtectionParams:
    n_users: int = 10
    n_manifestations: int = 10
    mean_days_per_manifestation: float = 1.0  # the paper's "t"
    distribution_latency_days: float = 1.0  # client downloads once a day
    seed: int = 0


@dataclass
class ProtectionOutcome:
    """Days until full protection, for both deployment modes."""

    dimmunix_alone_days: float  # mean per-user coupon-collector time
    dimmunix_alone_worst_days: float  # slowest user
    communix_days: float  # union coverage + distribution latency
    events_simulated: int


def analytic_estimate(params: ProtectionParams) -> tuple[float, float]:
    """The paper's rough estimates: (t*Nd, t*Nd/Nu)."""
    t = params.mean_days_per_manifestation
    dimmunix = t * params.n_manifestations
    communix = t * params.n_manifestations / params.n_users
    return dimmunix, communix


def simulate_protection(params: ProtectionParams) -> ProtectionOutcome:
    """One stochastic run of the model (average several for smooth curves)."""
    rng = random.Random(params.seed)
    n_users = params.n_users
    n_manifestations = params.n_manifestations
    t = params.mean_days_per_manifestation

    # Per-user event streams; a heap keeps global chronological order so the
    # union coverage time falls out of the same pass.
    heap: list[tuple[float, int]] = []
    for user in range(n_users):
        heap.append((rng.expovariate(1.0 / t), user))
    heapq.heapify(heap)

    seen_per_user: list[set[int]] = [set() for _ in range(n_users)]
    union_seen: set[int] = set()
    per_user_done: list[float | None] = [None] * n_users
    union_done: float | None = None
    events = 0

    # The slowest user's coupon collection bounds the simulation; cap the
    # horizon defensively for pathological parameter choices.
    horizon = t * n_manifestations * (n_users + 40) * 10

    while heap:
        when, user = heapq.heappop(heap)
        if when > horizon:
            break
        events += 1
        manifestation = rng.randrange(n_manifestations)
        seen_per_user[user].add(manifestation)
        union_seen.add(manifestation)
        if per_user_done[user] is None and len(seen_per_user[user]) == n_manifestations:
            per_user_done[user] = when
        if union_done is None and len(union_seen) == n_manifestations:
            union_done = when
        if per_user_done[user] is None:
            heapq.heappush(heap, (when + rng.expovariate(1.0 / t), user))
        elif union_done is None:
            # This user is personally covered but others still feed the
            # union; keep their stream alive for the Communix estimate.
            heapq.heappush(heap, (when + rng.expovariate(1.0 / t), user))
        if union_done is not None and all(d is not None for d in per_user_done):
            break

    finished = [d for d in per_user_done if d is not None]
    mean_user = sum(finished) / len(finished) if finished else float("inf")
    worst_user = max(finished) if finished else float("inf")
    communix = (
        union_done + params.distribution_latency_days
        if union_done is not None
        else float("inf")
    )
    return ProtectionOutcome(
        dimmunix_alone_days=mean_user,
        dimmunix_alone_worst_days=worst_user,
        communix_days=communix,
        events_simulated=events,
    )


def mean_protection_times(params: ProtectionParams, runs: int = 10
                          ) -> tuple[float, float]:
    """(mean Dimmunix-alone days, mean Communix days) over ``runs`` seeds."""
    dim_total = 0.0
    com_total = 0.0
    for i in range(runs):
        outcome = simulate_protection(
            ProtectionParams(
                n_users=params.n_users,
                n_manifestations=params.n_manifestations,
                mean_days_per_manifestation=params.mean_days_per_manifestation,
                distribution_latency_days=params.distribution_latency_days,
                seed=params.seed + i * 7919,
            )
        )
        dim_total += outcome.dimmunix_alone_days
        com_total += outcome.communix_days
    return dim_total / runs, com_total / runs
