"""The signature store: durable sink + recovery source for the database.

:class:`SignatureStore` ties the pieces together:

* **appends** go to the :class:`~repro.store.wal.SegmentedLog` (one record
  per *accepted, non-duplicate* signature, in database-index order — the
  log is exactly the database's append history);
* **checkpoints** snapshot the derived metadata (content hashes, top-frame
  locations, the per-user adjacency index, the next user id) into
  ``MANIFEST.json`` so a restart can load the checkpointed prefix without
  re-validating it;
* **opening** a data directory replays: segment files are scanned (CRC
  verified only past the checkpoint), torn tails truncated, and each
  record surfaces as a :class:`RecoveredEntry` ready to be loaded into
  :class:`~repro.server.database.SignatureDatabase` — blobs, dedup hash,
  sender uid, and top frames, with signature *parsing* needed only for the
  tail records the manifest does not cover.

A manifest that disagrees with the log (it claims more records than the
log actually holds — e.g. a checkpoint survived but log segments were
lost) is discarded and the whole log is replayed with full verification;
the log, not the manifest, is the source of truth.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.store.checkpoint import (
    Manifest,
    load_manifest,
    load_uid_watermark,
    write_manifest,
    write_uid_watermark,
)
from repro.store.records import LogRecord
from repro.store.wal import (
    DEFAULT_SEGMENT_RECORDS,
    FsyncPolicy,
    SegmentedLog,
    parse_fsync_policy,
)
from repro.util.errors import ValidationError
from repro.util.logging import get_logger

log = get_logger("store")


class StoreError(Exception):
    """Unrecoverable store inconsistency (a logic error, not crash damage;
    crash damage is always repaired silently)."""


@dataclass(frozen=True)
class RecoveredEntry:
    """One replayed record with everything the database needs to rebuild
    its in-memory state without re-deriving it."""

    index: int
    blob: bytes
    sig_id: str
    sender_uid: int
    top_frames: frozenset


class SignatureStore:
    """Open (recovering) a data directory; append; checkpoint; close."""

    def __init__(self, data_dir: str,
                 fsync: str | FsyncPolicy = "always",
                 segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 checkpoint_every: int = 0):
        self.data_dir = data_dir
        self.policy = parse_fsync_policy(fsync)
        self.checkpoint_every = max(0, checkpoint_every)
        self._lock = threading.Lock()
        self._ckpt_lock = threading.Lock()  # one manifest writer at a time
        self._ckpt_failed_at = 0  # record count when a checkpoint last failed
        self._checkpoints_written = 0  # manifests written by this process
        # Derived metadata mirrors (one slot per record) for checkpoints.
        self._sig_ids: list[str] = []
        self._top_frames: list[tuple] = []
        self._users: dict[int, list[int]] = {}
        self._next_uid = 1
        os.makedirs(data_dir, exist_ok=True)
        manifest = load_manifest(data_dir)
        if manifest and manifest.segment_records != segment_records:
            # The directory's segmentation is a property of its files, not
            # of this process's configuration: adopt what it was written
            # with (the log's seq/index math depends on it).
            log.warning(
                "data dir %s was written with %d records/segment; using "
                "that instead of the configured %d",
                data_dir, manifest.segment_records, segment_records,
            )
            segment_records = manifest.segment_records
        trusted = manifest.record_count if manifest else 0
        try:
            self._log = SegmentedLog(data_dir,
                                     segment_records=segment_records,
                                     fsync=self.policy,
                                     trusted_records=trusted)
        except ValueError as exc:
            raise StoreError(str(exc)) from exc
        try:
            if manifest and self._log.record_count < manifest.record_count:
                # The log lost records the checkpoint vouches for: the
                # manifest is stale/lying.  Re-open with nothing trusted
                # and replay everything with full verification.
                log.warning(
                    "manifest claims %d records but the log holds %d; "
                    "discarding checkpoint and fully replaying",
                    manifest.record_count, self._log.record_count,
                )
                self._log.close()
                manifest = None
                self._log = SegmentedLog(data_dir,
                                         segment_records=segment_records,
                                         fsync=self.policy)
            self._checkpoint_count = manifest.record_count if manifest else 0
            self._replayed = self._build_entries(
                self._log.recovered_records(), manifest
            )
        except Exception:
            self._log.close()  # don't leak the fd / flusher thread
            raise
        if manifest:
            self._next_uid = max(self._next_uid, manifest.next_uid)
        # The eager sidecar outruns the periodic manifest: a token issued
        # right before kill -9 is covered by it alone.
        self._next_uid = max(self._next_uid, load_uid_watermark(data_dir))
        self._persisted_uid = self._next_uid
        self.recovery = self._log.recovery
        self.replayed_past_checkpoint = (
            len(self._replayed) - self._checkpoint_count
        )

    # ------------------------------------------------------------- recovery
    def _build_entries(self, records: list[LogRecord],
                       manifest: Manifest | None) -> list[RecoveredEntry]:
        entries: list[RecoveredEntry] = []
        checkpointed = manifest.record_count if manifest else 0
        if manifest:
            # The checkpointed prefix's per-user index comes straight from
            # the manifest snapshot; the loop below only extends it for
            # tail records.
            for uid, indices in manifest.users.items():
                self._users[uid] = list(indices)
        for index, record in enumerate(records):
            if index < checkpointed:
                sig_id, frames = manifest.entries[index]
                top_frames = frozenset(frames)
            else:
                try:
                    signature = DeadlockSignature.from_bytes(
                        record.blob, origin=ORIGIN_REMOTE
                    )
                except ValidationError as exc:
                    # CRC-valid but unparseable: the record was never a
                    # validated signature, which only a writer bug produces.
                    raise StoreError(
                        f"record {index} is checksummed but not a valid "
                        f"signature: {exc}"
                    ) from exc
                sig_id = signature.sig_id
                top_frames = signature.top_frames
            entries.append(RecoveredEntry(
                index=index,
                blob=record.blob,
                sig_id=sig_id,
                sender_uid=record.sender_uid,
                top_frames=top_frames,
            ))
            self._sig_ids.append(sig_id)
            self._top_frames.append(tuple(sorted(top_frames)))
            if index >= checkpointed:
                self._users.setdefault(record.sender_uid, []).append(index)
            self._next_uid = max(self._next_uid, record.sender_uid + 1)
        return entries

    def recovered_entries(self) -> list[RecoveredEntry]:
        """The replayed records (consumed once, by the database load)."""
        entries, self._replayed = self._replayed, []
        return entries

    def set_metrics(self, metrics) -> None:
        """Attach an observability registry (see :mod:`repro.obs`): the
        WAL's fsync waits land in the ``stage.wal_fsync`` histogram and
        checkpoints are counted.  The server calls this on whatever store
        it is given, so caller-constructed stores are covered too."""
        self._log.set_metrics(metrics)
        metrics.register_counter("store.checkpoints",
                                 lambda: self._checkpoints_written)
        metrics.register_gauge("store.records",
                               lambda: self._log.record_count)

    # -------------------------------------------------------------- writing
    def append(self, blob: bytes, sig_id: str, sender_uid: int,
               top_frames: frozenset, trace=None) -> int:
        """Log one accepted signature; returns its record index.

        Under the ``always`` policy the record is fsynced before this
        returns — the caller may ack the ADD the moment it does.
        """
        with self._lock:
            # Log write and metadata mirror under one lock, so concurrent
            # appenders cannot interleave them: _sig_ids[i] always
            # describes log record i (checkpoints depend on it).
            index = self._log.append(blob, sender_uid, trace=trace)
            self._sig_ids.append(sig_id)
            self._top_frames.append(tuple(sorted(top_frames)))
            self._users.setdefault(sender_uid, []).append(index)
            self._next_uid = max(self._next_uid, sender_uid + 1)
            # Back off after a failure: retry only once another
            # checkpoint_every records accumulate, not on every append
            # (the O(history) manifest build would otherwise run — and
            # fail — on every single ADD while the disk is sick).
            watermark = max(self._checkpoint_count, self._ckpt_failed_at)
            due = (self.checkpoint_every
                   and self._log.record_count - watermark
                   >= self.checkpoint_every)
        if due:
            # Best-effort: the record above is already durable in the log;
            # a failed manifest write must not turn this acked-able append
            # into an error.  Restart just replays a longer tail.
            try:
                self.checkpoint()
            except OSError:
                with self._lock:
                    self._ckpt_failed_at = self._log.record_count
                log.exception("checkpoint failed; continuing with the "
                              "previous manifest")
        return index

    def note_next_uid(self, next_uid: int) -> None:
        """Raise the uid watermark and persist it *eagerly* (called on
        token issue, so a restart — even ``kill -9`` before the next
        checkpoint — never re-issues a uid that only ever fetched a
        token).  Token issue is off the ADD/GET hot path (once per
        client), so the fsync per fresh uid is affordable."""
        with self._lock:
            self._next_uid = max(self._next_uid, next_uid)
            if self._next_uid <= self._persisted_uid:
                return
            value = self._next_uid
        # Write outside the lock: the sidecar fsync must not stall
        # concurrent ADD appends.  Best-effort — the in-memory watermark
        # stays raised either way and the next checkpoint covers it.
        try:
            write_uid_watermark(self.data_dir, value)
        except OSError:
            log.exception("uid watermark write failed; the next "
                          "checkpoint will persist it instead")
            return
        with self._lock:
            self._persisted_uid = max(self._persisted_uid, value)

    # ---------------------------------------------------------- checkpoints
    def checkpoint(self) -> Manifest:
        """Flush the log, then atomically write ``MANIFEST.json``.

        The count is snapshotted *before* the flush, so the manifest never
        vouches for a record the log has not made durable — an append that
        lands between the snapshot and the flush is simply covered by the
        next checkpoint (matters under ``interval``/``never``).
        """
        with self._ckpt_lock:  # one manifest writer at a time
            with self._lock:
                # A concurrent append may have hit the log but not yet
                # mirrored its metadata; checkpoint what both layers
                # agree on.
                count = min(self._log.record_count, len(self._sig_ids))
                manifest = Manifest(
                    record_count=count,
                    segment_records=self._log.segment_records,
                    segments=self._log.segment_names(),
                    entries=list(zip(self._sig_ids[:count],
                                     self._top_frames[:count])),
                    users={uid: [i for i in idxs if i < count]
                           for uid, idxs in self._users.items()},
                    next_uid=self._next_uid,
                )
            self._log.flush()  # records [0, count) durable past this line
            write_manifest(self.data_dir, manifest)
            with self._lock:
                self._checkpoint_count = max(self._checkpoint_count, count)
                self._checkpoints_written += 1
        return manifest

    # -------------------------------------------------------------- closing
    def flush(self) -> None:
        """Make everything appended so far durable (any policy)."""
        if not self._log.closed:
            self._log.flush()

    def close(self, final_checkpoint: bool = True) -> None:
        """Seal the store: final checkpoint (by default) and close the log.

        The log closes even when the checkpoint fails (its close flushes
        what the manifest could not vouch for) — a failed final checkpoint
        must not leak the tail handle and flusher thread or leave the
        store half-open."""
        if self._log.closed:
            return
        try:
            if final_checkpoint:
                self.checkpoint()
        finally:
            self._log.close()

    @property
    def closed(self) -> bool:
        return self._log.closed

    # ---------------------------------------------------------------- stats
    @property
    def record_count(self) -> int:
        return self._log.record_count

    @property
    def checkpoint_count(self) -> int:
        """Records covered by the newest durable checkpoint."""
        return self._checkpoint_count

    @property
    def next_uid(self) -> int:
        return self._next_uid

    @property
    def fsync_policy(self) -> str:
        return self.policy.spec()
