"""The signature store: durable sink + recovery source for the database.

:class:`SignatureStore` ties the pieces together:

* **appends** go to the :class:`~repro.store.wal.SegmentedLog` (one record
  per *accepted, non-duplicate* signature, in database-index order — the
  log is exactly the database's append history);
* **checkpoints** snapshot the derived metadata (content hashes, top-frame
  locations, the per-user adjacency index, the next user id) into
  ``MANIFEST.json`` so a restart can load the checkpointed prefix without
  re-validating it;
* **opening** a data directory replays: segment files are scanned (CRC
  verified only past the checkpoint), torn tails truncated, and each
  record surfaces as a :class:`RecoveredEntry` ready to be loaded into
  :class:`~repro.server.database.SignatureDatabase` — blobs, dedup hash,
  sender uid, and top frames, with signature *parsing* needed only for the
  tail records the manifest does not cover.

A manifest that disagrees with the log (it claims more records than the
log actually holds — e.g. a checkpoint survived but log segments were
lost) is discarded and the whole log is replayed with full verification;
the log, not the manifest, is the source of truth.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.store.checkpoint import (
    Manifest,
    append_manifest_delta,
    clear_manifest_delta,
    load_manifest_with_deltas,
    load_uid_watermark,
    write_manifest,
    write_uid_watermark,
)
from repro.store.records import LogRecord
from repro.store.wal import (
    DEFAULT_SEGMENT_RECORDS,
    FsyncPolicy,
    SegmentedLog,
    parse_fsync_policy,
)
from repro.util.errors import ValidationError
from repro.util.logging import get_logger

log = get_logger("store")


class StoreError(Exception):
    """Unrecoverable store inconsistency (a logic error, not crash damage;
    crash damage is always repaired silently)."""


@dataclass(frozen=True)
class RecoveredEntry:
    """One replayed record with everything the database needs to rebuild
    its in-memory state without re-deriving it."""

    index: int
    blob: bytes
    sig_id: str
    sender_uid: int
    top_frames: frozenset


class SignatureStore:
    """Open (recovering) a data directory; append; checkpoint; close."""

    def __init__(self, data_dir: str,
                 fsync: str | FsyncPolicy = "always",
                 segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 checkpoint_every: int = 0,
                 group_commit: bool = True):
        self.data_dir = data_dir
        self.policy = parse_fsync_policy(fsync)
        self.checkpoint_every = max(0, checkpoint_every)
        self._lock = threading.Lock()
        self._ckpt_lock = threading.Lock()  # one manifest writer at a time
        self._ckpt_failed_at = 0  # record count when a checkpoint last failed
        self._checkpoints_written = 0  # manifests/deltas written here
        # Derived metadata mirrors (one slot per record) for checkpoints.
        # Dropped entirely once a metadata provider is attached
        # (set_metadata_provider) — the database already holds all three.
        self._sig_ids: list[str] | None = []
        self._top_frames: list[tuple] | None = []
        self._uids: list[int] | None = []
        self._provider = None  # duck-typed: __len__ + checkpoint_metadata
        self._next_uid = 1
        os.makedirs(data_dir, exist_ok=True)
        manifest = load_manifest_with_deltas(data_dir)
        if manifest and manifest.segment_records != segment_records:
            # The directory's segmentation is a property of its files, not
            # of this process's configuration: adopt what it was written
            # with (the log's seq/index math depends on it).
            log.warning(
                "data dir %s was written with %d records/segment; using "
                "that instead of the configured %d",
                data_dir, manifest.segment_records, segment_records,
            )
            segment_records = manifest.segment_records
        trusted = manifest.record_count if manifest else 0
        try:
            self._log = SegmentedLog(data_dir,
                                     segment_records=segment_records,
                                     fsync=self.policy,
                                     trusted_records=trusted,
                                     group_commit=group_commit)
        except ValueError as exc:
            raise StoreError(str(exc)) from exc
        try:
            if manifest and self._log.record_count < manifest.record_count:
                # The log lost records the checkpoint vouches for: the
                # manifest is stale/lying.  Re-open with nothing trusted
                # and replay everything with full verification.
                log.warning(
                    "manifest claims %d records but the log holds %d; "
                    "discarding checkpoint and fully replaying",
                    manifest.record_count, self._log.record_count,
                )
                self._log.close()
                manifest = None
                self._log = SegmentedLog(data_dir,
                                         segment_records=segment_records,
                                         fsync=self.policy)
            self._checkpoint_count = manifest.record_count if manifest else 0
            # record_count of the on-disk full MANIFEST.json (the delta
            # chain's anchor); None forces the next checkpoint to write a
            # fresh full manifest.
            self._manifest_base = (manifest.base_record_count
                                   if manifest else None)
            self._replayed = self._build_entries(
                self._log.recovered_records(), manifest
            )
        except Exception:
            self._log.close()  # don't leak the fd / flusher thread
            raise
        if manifest:
            self._next_uid = max(self._next_uid, manifest.next_uid)
        # The eager sidecar outruns the periodic manifest: a token issued
        # right before kill -9 is covered by it alone.
        self._next_uid = max(self._next_uid, load_uid_watermark(data_dir))
        self._persisted_uid = self._next_uid
        self.recovery = self._log.recovery
        self.replayed_past_checkpoint = (
            len(self._replayed) - self._checkpoint_count
        )

    # ------------------------------------------------------------- recovery
    def _build_entries(self, records: list[LogRecord],
                       manifest: Manifest | None) -> list[RecoveredEntry]:
        entries: list[RecoveredEntry] = []
        checkpointed = manifest.record_count if manifest else 0
        for index, record in enumerate(records):
            if index < checkpointed:
                sig_id, frames = manifest.entries[index]
                top_frames = frozenset(frames)
            else:
                try:
                    signature = DeadlockSignature.from_bytes(
                        record.blob, origin=ORIGIN_REMOTE
                    )
                except ValidationError as exc:
                    # CRC-valid but unparseable: the record was never a
                    # validated signature, which only a writer bug produces.
                    raise StoreError(
                        f"record {index} is checksummed but not a valid "
                        f"signature: {exc}"
                    ) from exc
                sig_id = signature.sig_id
                top_frames = signature.top_frames
            entries.append(RecoveredEntry(
                index=index,
                blob=record.blob,
                sig_id=sig_id,
                sender_uid=record.sender_uid,
                top_frames=top_frames,
            ))
            self._sig_ids.append(sig_id)
            self._top_frames.append(tuple(sorted(top_frames)))
            # The log record itself carries the uid, so the per-user index
            # needs no manifest snapshot — it is rebuilt on demand from
            # this per-record list (checkpoints walk only their slice).
            self._uids.append(record.sender_uid)
            self._next_uid = max(self._next_uid, record.sender_uid + 1)
        return entries

    def recovered_entries(self) -> list[RecoveredEntry]:
        """The replayed records (consumed once, by the database load)."""
        entries, self._replayed = self._replayed, []
        return entries

    def set_metadata_provider(self, provider) -> None:
        """Stop mirroring per-record metadata; pull it from ``provider``
        at checkpoint time instead.

        ``provider`` (in practice the
        :class:`~repro.server.database.SignatureDatabase` writing through
        this store) must expose ``__len__`` and
        ``checkpoint_metadata(lo, hi)`` returning ``(sig_id, top_frames,
        sender_uid)`` per record.  Since the database already keeps every
        one of those fields, dropping the store's own ``_sig_ids`` /
        ``_top_frames`` / ``_uids`` lists halves the per-record metadata
        footprint at million-signature scale.  The provider must be in
        lockstep with the log when attached (the database attaches itself
        right after replaying this store)."""
        with self._lock:
            if len(provider) != self._log.record_count:
                raise StoreError(
                    f"metadata provider holds {len(provider)} records but "
                    f"the log holds {self._log.record_count}; attach it "
                    "only when in lockstep"
                )
            self._provider = provider
            self._sig_ids = None
            self._top_frames = None
            self._uids = None

    def set_metrics(self, metrics) -> None:
        """Attach an observability registry (see :mod:`repro.obs`): the
        WAL's fsync waits land in the ``stage.wal_fsync`` histogram and
        checkpoints are counted.  The server calls this on whatever store
        it is given, so caller-constructed stores are covered too."""
        self._log.set_metrics(metrics)
        metrics.register_counter("store.checkpoints",
                                 lambda: self._checkpoints_written)
        metrics.register_gauge("store.records",
                               lambda: self._log.record_count)

    # -------------------------------------------------------------- writing
    def append(self, blob: bytes, sig_id: str, sender_uid: int,
               top_frames: frozenset, trace=None) -> int:
        """Log one accepted signature; returns its record index.

        Under the ``always`` policy the record is fsynced before this
        returns — the caller may ack the ADD the moment it does.
        """
        with self._lock:
            index = self._stage_locked(blob, sig_id, sender_uid, top_frames)
            # Back off after a failure: retry only once another
            # checkpoint_every records accumulate, not on every append
            # (the O(history) manifest build would otherwise run — and
            # fail — on every single ADD while the disk is sick).
            # With a metadata provider attached the cadence trigger moves
            # to the provider (see maybe_checkpoint): at this point the
            # database has not published the entry yet, so a checkpoint
            # here would always run one record short.
            due = self._provider is None and self._cadence_due_locked()
        try:
            self._log.commit_appended(index + 1, trace=trace)
        except OSError:
            # The record never became durable and the caller will treat
            # this append as failed — undo it (log + mirrors, atomically
            # w.r.t. other appends) so the layers stay in lockstep.  When
            # the rollback is impossible (a wider group-commit batch, or
            # a later append already landed) the record stays in the log
            # unacked; the database reconciles around it.
            self.rollback_staged(index)
            raise
        if due:
            self._cadence_checkpoint()
        return index

    def _stage_locked(self, blob: bytes, sig_id: str, sender_uid: int,
                      top_frames: frozenset) -> int:
        # Log write and metadata mirror under one lock, so concurrent
        # appenders cannot interleave them: _sig_ids[i] always describes
        # log record i (checkpoints depend on it).  Only the *write
        # phase* happens here — the fsync (commit phase) runs outside
        # this lock, so concurrent appends can share one group-committed
        # flush instead of serializing on it.
        index = self._log.append_unflushed(blob, sender_uid)
        if self._provider is None:
            self._sig_ids.append(sig_id)
            self._top_frames.append(tuple(sorted(top_frames)))
            self._uids.append(sender_uid)
        self._next_uid = max(self._next_uid, sender_uid + 1)
        return index

    def stage_append(self, blob: bytes, sig_id: str, sender_uid: int,
                     top_frames: frozenset) -> int:
        """The write phase of :meth:`append` alone: buffer the record and
        return its index — **no durability yet**.  For callers (the
        database) that hold their own append lock and must not serialize
        the fsync behind it: stage under the lock, then
        :meth:`commit_staged` outside it (group-committed with every
        other in-flight append), then publish; a failed commit goes
        through :meth:`rollback_staged`."""
        with self._lock:
            return self._stage_locked(blob, sig_id, sender_uid, top_frames)

    def commit_staged(self, target: int, trace=None) -> None:
        """Block until the first ``target`` staged records are durable
        (one group-committed fsync under ``always``; immediate under the
        other policies)."""
        self._log.commit_appended(target, trace=trace)

    def rollback_staged(self, index: int) -> bool:
        """Undo a staged record whose commit failed, if it is still the
        newest and no fsync covered it; mirrors are trimmed with it.
        ``False`` means the record stays in the log (unacked) and the
        caller reconciles around it."""
        with self._lock:
            rolled = self._log.rollback_appended(index)
            if rolled and self._provider is None:
                del self._sig_ids[index:]
                del self._top_frames[index:]
                del self._uids[index:]
            return rolled

    def _cadence_due_locked(self) -> bool:
        # Back off after a failure: retry only once another
        # checkpoint_every records accumulate, not on every append
        # (the O(history) manifest build would otherwise run — and
        # fail — on every single ADD while the disk is sick).
        watermark = max(self._checkpoint_count, self._ckpt_failed_at)
        return bool(self.checkpoint_every
                    and self._log.record_count - watermark
                    >= self.checkpoint_every)

    def _cadence_checkpoint(self) -> None:
        # Best-effort: the records being covered are already durable in
        # the log; a failed manifest write must not turn an acked-able
        # append into an error.  Restart just replays a longer tail.
        try:
            self.checkpoint()
        except OSError:
            with self._lock:
                self._ckpt_failed_at = self._log.record_count
            log.exception("checkpoint failed; continuing with the "
                          "previous manifest")

    def maybe_checkpoint(self) -> None:
        """Run a cadence checkpoint if one is due.

        With a metadata provider attached, the provider (the database)
        calls this right after publishing each appended entry — the only
        moment both layers agree on the full count.  Without one,
        :meth:`append` handles the cadence itself and this is a no-op.
        """
        with self._lock:
            if self._provider is None or not self._cadence_due_locked():
                return
        self._cadence_checkpoint()

    def note_next_uid(self, next_uid: int) -> None:
        """Raise the uid watermark and persist it *eagerly* (called on
        token issue, so a restart — even ``kill -9`` before the next
        checkpoint — never re-issues a uid that only ever fetched a
        token).  Token issue is off the ADD/GET hot path (once per
        client), so the fsync per fresh uid is affordable."""
        with self._lock:
            self._next_uid = max(self._next_uid, next_uid)
            if self._next_uid <= self._persisted_uid:
                return
            value = self._next_uid
        # Write outside the lock: the sidecar fsync must not stall
        # concurrent ADD appends.  Best-effort — the in-memory watermark
        # stays raised either way and the next checkpoint covers it.
        try:
            write_uid_watermark(self.data_dir, value)
        except OSError:
            log.exception("uid watermark write failed; the next "
                          "checkpoint will persist it instead")
            return
        with self._lock:
            self._persisted_uid = max(self._persisted_uid, value)

    # ---------------------------------------------------------- checkpoints
    def _metadata_slice(self, lo: int, hi: int) -> list[tuple]:
        """``(sig_id, top_frames, sender_uid)`` for records ``[lo, hi)``,
        from the provider (append-only, so a bare slice is safe) or the
        local mirrors."""
        if self._provider is not None:
            return self._provider.checkpoint_metadata(lo, hi)
        with self._lock:
            return list(zip(self._sig_ids[lo:hi], self._top_frames[lo:hi],
                            self._uids[lo:hi]))

    def checkpoint(self, full: bool = False) -> Manifest | None:
        """Flush the log, then persist a checkpoint.

        The first checkpoint of a data dir (and any ``full=True`` call —
        :meth:`close` forces one) atomically rewrites ``MANIFEST.json``.
        Every other call appends a **delta line** covering only the
        records since the previous checkpoint — O(delta) instead of the
        O(history) full-manifest rewrite that used to stall the appending
        worker once the store grew past ~50k signatures.  Returns the
        manifest for full writes, ``None`` for deltas.

        The count is snapshotted *before* the flush, so the checkpoint
        never vouches for a record the log has not made durable — an
        append that lands between the snapshot and the flush is simply
        covered by the next checkpoint (matters under
        ``interval``/``never``).
        """
        with self._ckpt_lock:  # one checkpoint writer at a time
            with self._lock:
                # A concurrent append may have hit the log but not yet
                # mirrored its metadata (or reached the database when a
                # provider is attached); checkpoint what both layers
                # agree on.
                mirrored = (len(self._provider) if self._provider is not None
                            else len(self._sig_ids))
                count = min(self._log.record_count, mirrored)
                next_uid = self._next_uid
            covered = self._checkpoint_count
            base = self._manifest_base
            if (not full and base is not None and base <= covered < count):
                delta = self._metadata_slice(covered, count)
                self._log.flush()  # records [0, count) durable past here
                append_manifest_delta(self.data_dir, base, covered, delta,
                                      next_uid)
                with self._lock:
                    self._checkpoint_count = max(self._checkpoint_count,
                                                 count)
                    self._checkpoints_written += 1
                return None
            meta = self._metadata_slice(0, count)
            users: dict[int, list[int]] = {}
            for index, (_sig_id, _frames, uid) in enumerate(meta):
                users.setdefault(uid, []).append(index)
            manifest = Manifest(
                record_count=count,
                segment_records=self._log.segment_records,
                segments=self._log.segment_names(),
                entries=[(sig_id, frames) for sig_id, frames, _uid in meta],
                users=users,
                next_uid=next_uid,
            )
            self._log.flush()  # records [0, count) durable past this line
            write_manifest(self.data_dir, manifest)
            # The delta chain extended the *previous* base; now redundant
            # (and would mis-compose over the new one).
            clear_manifest_delta(self.data_dir)
            self._manifest_base = count
            with self._lock:
                self._checkpoint_count = max(self._checkpoint_count, count)
                self._checkpoints_written += 1
        return manifest

    # -------------------------------------------------------------- closing
    def flush(self) -> None:
        """Make everything appended so far durable (any policy)."""
        if not self._log.closed:
            self._log.flush()

    def close(self, final_checkpoint: bool = True) -> None:
        """Seal the store: final checkpoint (by default) and close the log.

        The log closes even when the checkpoint fails (its close flushes
        what the manifest could not vouch for) — a failed final checkpoint
        must not leak the tail handle and flusher thread or leave the
        store half-open."""
        if self._log.closed:
            return
        try:
            if final_checkpoint:
                # Full, so restarts load one file and the delta chain
                # (bounded only by uptime between closes) is reset.
                self.checkpoint(full=True)
        finally:
            self._log.close()

    @property
    def closed(self) -> bool:
        return self._log.closed

    # ---------------------------------------------------------------- stats
    @property
    def record_count(self) -> int:
        return self._log.record_count

    @property
    def durable_count(self) -> int:
        """Records an fsync provably covers (== record_count under
        ``always`` once every append has returned)."""
        return self._log.durable_count

    @property
    def fsyncs_issued(self) -> int:
        """Commit-phase fsyncs the log performed — the group-commit
        batching ratio is ``record_count / fsyncs_issued``."""
        return self._log.fsyncs_issued

    @property
    def group_commit(self) -> bool:
        """Whether concurrent ``always`` appends may share one fsync.
        The database checks this before taking its staged (three-phase)
        append path — with it off, appends serialize fsync-per-record,
        the measurement control for the batching win."""
        return self._log.group_commit

    @property
    def checkpoint_count(self) -> int:
        """Records covered by the newest durable checkpoint."""
        return self._checkpoint_count

    @property
    def next_uid(self) -> int:
        return self._next_uid

    @property
    def fsync_policy(self) -> str:
        return self.policy.spec()
