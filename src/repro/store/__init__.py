"""Durable storage for the Communix signature database.

The immunity story (§III-B) assumes the collaborative store is
*monotonically indexed and durable*: a server that forgets its signatures
on restart re-exposes every client fleet to deadlocks they were already
immunized against.  This package is that durability layer — a segmented
append-only write-ahead log with CRC-framed records, pluggable fsync
policies, torn-tail repair, and checkpointed restart:

* :mod:`repro.store.records` — the ``len | crc32 | payload`` record frame;
* :mod:`repro.store.wal` — segment files, rotation, fsync policies,
  crash recovery of the longest valid prefix;
* :mod:`repro.store.checkpoint` — the ``MANIFEST.json`` snapshot that
  lets restart skip re-validating the checkpointed prefix;
* :mod:`repro.store.store` — :class:`SignatureStore`, the facade the
  server wires into :class:`~repro.server.database.SignatureDatabase`.
"""

from repro.store.checkpoint import (
    Manifest,
    load_manifest,
    load_manifest_with_deltas,
    write_manifest,
)
from repro.store.records import LogRecord, pack_record, scan_records
from repro.store.store import RecoveredEntry, SignatureStore, StoreError
from repro.store.wal import (
    DEFAULT_SEGMENT_RECORDS,
    FsyncPolicy,
    SegmentedLog,
    parse_fsync_policy,
)

__all__ = [
    "DEFAULT_SEGMENT_RECORDS",
    "FsyncPolicy",
    "LogRecord",
    "Manifest",
    "RecoveredEntry",
    "SegmentedLog",
    "SignatureStore",
    "StoreError",
    "load_manifest",
    "load_manifest_with_deltas",
    "pack_record",
    "parse_fsync_policy",
    "scan_records",
    "write_manifest",
]
