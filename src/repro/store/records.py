"""On-disk record framing for the signature write-ahead log.

A log record mirrors the wire cache's ``len | payload`` shape with a
checksum between them::

    u32 len | u32 crc32 | payload          (all big-endian)

where ``len`` counts the *payload* bytes and ``crc32`` is
``zlib.crc32(payload)``.  The payload is a small envelope —

    u64 sender_uid | signature blob

— because the per-user adjacency index (§III-C2) must survive a restart
and the sender's uid is not part of the signature blob itself.

Torn tails are expected: a crash can leave a partial header, a partial
payload, or a payload whose checksum no longer matches.  :func:`scan_records`
therefore never raises on damage — it returns every record of the longest
valid prefix plus the byte offset where that prefix ends, and the caller
truncates the file there.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

_HEADER = struct.Struct(">II")
_UID = struct.Struct(">Q")

HEADER_BYTES = _HEADER.size
#: Sanity cap used while scanning: a length field above this is treated as
#: tail corruption, not as a real record.  Generous against the server's
#: 64 KiB signature cap, tight enough that a random bit-flip in a length
#: field cannot make the scanner walk gigabytes of garbage.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class LogRecord:
    """One recovered record: the signature blob plus its sender."""

    sender_uid: int
    blob: bytes


def pack_record(blob: bytes, sender_uid: int) -> bytes:
    """Frame one signature blob as a durable log record."""
    payload = _UID.pack(sender_uid) + blob
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def record_size(blob: bytes) -> int:
    """On-disk bytes :func:`pack_record` will produce for ``blob``."""
    return HEADER_BYTES + _UID.size + len(blob)


def unpack_payload(payload: bytes) -> LogRecord:
    """Split a validated record payload into (sender_uid, blob)."""
    if len(payload) < _UID.size:
        raise ValueError("record payload shorter than its uid field")
    return LogRecord(_UID.unpack_from(payload)[0], payload[_UID.size:])


def scan_records(data: bytes, *, verify_crc: bool = True
                 ) -> tuple[list[LogRecord], int]:
    """``(records, valid_bytes)`` — the longest valid record prefix.

    ``valid_bytes`` is the offset just past the last valid record; anything
    beyond it is a torn tail (partial write or corruption) the caller
    should truncate away.  With ``verify_crc`` off, checksums are skipped —
    the checkpointed-prefix fast path, where the manifest already vouches
    for the records — but framing is still parsed to slice the payloads.
    """
    records: list[LogRecord] = []
    offset = 0
    total = len(data)
    while True:
        if offset + HEADER_BYTES > total:
            return records, offset
        length, crc = _HEADER.unpack_from(data, offset)
        if length < _UID.size or length > MAX_PAYLOAD_BYTES:
            return records, offset
        end = offset + HEADER_BYTES + length
        if end > total:
            return records, offset
        payload = data[offset + HEADER_BYTES:end]
        if verify_crc and zlib.crc32(payload) != crc:
            return records, offset
        records.append(unpack_payload(payload))
        offset = end
