"""Checkpoint manifest (``MANIFEST.json``) for the signature store.

A checkpoint is a snapshot of everything the server would otherwise have
to *recompute* from the log on restart: how many records are durable, which
segment files hold them, the per-record metadata (content hash + top-frame
locations) that normally requires deserializing every blob, the per-user
record index behind the adjacency check, and the next user id to issue.

With a manifest present, restart replays only the records *past*
``record_count`` — the checkpointed prefix is loaded straight off the
segment files without CRC re-verification or signature parsing.  A missing,
torn, or inconsistent manifest is never fatal: the store falls back to a
full validating replay of the log (the manifest is an accelerator, the log
is the truth).

The file is written atomically (temp file + ``fsync`` + ``os.replace`` +
directory ``fsync``), so a crash mid-checkpoint leaves the previous
manifest intact.

Rewriting the full manifest is O(history) — at 50k+ signatures the JSON
dump alone stalls the appending thread for tens of milliseconds.  So only
the *first* checkpoint (and the final one at clean shutdown) writes
``MANIFEST.json``; periodic checkpoints append a **delta line** to
``MANIFEST.delta.jsonl`` instead, covering just the records since the
previous checkpoint — O(delta) work regardless of history size.  On open
the deltas are composed over their base manifest
(:func:`load_manifest_with_deltas`); a torn trailing delta line (crash
mid-append) simply ends the composition there, and a delta chain whose
base doesn't match is discarded wholesale — same "accelerator, not truth"
stance as the manifest itself.

The uid watermark has a second, *eager* home: the tiny ``UID_WATERMARK``
sidecar, rewritten (same atomic dance) on every token issue.  Checkpoints
are periodic, so without the sidecar a ``kill -9`` landing between a token
issue and the next checkpoint would replay an older ``next_uid`` and hand
the same uid to a different person — merging their quota and adjacency
history.  The sidecar is a single integer, cheap enough to persist per
issue; on open the store takes the max of manifest, log records, and
sidecar.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.store.wal import fsync_dir
from repro.util.logging import get_logger

log = get_logger("store.checkpoint")

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_DELTA_NAME = "MANIFEST.delta.jsonl"
MANIFEST_VERSION = 1
UID_WATERMARK_NAME = "UID_WATERMARK"

#: ``(class_name, method, line)`` — a frame location as stored in
#: signature metadata.
Location = tuple[str, str, int]


@dataclass
class Manifest:
    record_count: int
    segment_records: int
    segments: list[str] = field(default_factory=list)
    #: One ``(sig_id, top_frame_locations)`` per checkpointed record.
    entries: list[tuple[str, tuple[Location, ...]]] = field(default_factory=list)
    #: uid -> record indices (the adjacency-index snapshot, §III-C2).
    users: dict[int, list[int]] = field(default_factory=dict)
    #: Restart continuity for :class:`~repro.crypto.userid.UserIdAuthority`.
    next_uid: int = 1
    #: ``record_count`` of the on-disk ``MANIFEST.json`` this object was
    #: composed from (== ``record_count`` when no deltas applied).  Set by
    #: :func:`load_manifest_with_deltas` only; not serialized.
    base_record_count: int | None = None

    def encode(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "record_count": self.record_count,
            "segment_records": self.segment_records,
            "segments": list(self.segments),
            "entries": [
                [sig_id, [list(loc) for loc in frames]]
                for sig_id, frames in self.entries
            ],
            "users": {str(uid): idxs for uid, idxs in self.users.items()},
            "next_uid": self.next_uid,
        }

    @staticmethod
    def decode(obj: dict) -> "Manifest":
        if obj.get("version") != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {obj.get('version')!r}")
        record_count = int(obj["record_count"])
        segment_records = int(obj["segment_records"])
        if record_count < 0 or segment_records < 1:
            raise ValueError(
                f"nonsensical manifest counts (records={record_count}, "
                f"segment_records={segment_records})"
            )
        entries = [
            (str(sig_id), tuple((str(c), str(m), int(line))
                                for c, m, line in frames))
            for sig_id, frames in obj["entries"]
        ]
        if len(entries) != record_count:
            raise ValueError(
                f"manifest lists {len(entries)} entries for "
                f"{record_count} records"
            )
        users = {int(uid): [int(i) for i in idxs]
                 for uid, idxs in obj.get("users", {}).items()}
        for idxs in users.values():
            if any(i < 0 or i >= record_count for i in idxs):
                raise ValueError("manifest user index out of range")
        return Manifest(
            record_count=record_count,
            segment_records=segment_records,
            segments=[str(s) for s in obj.get("segments", [])],
            entries=entries,
            users=users,
            next_uid=int(obj.get("next_uid", 1)),
        )


def manifest_path(data_dir: str) -> str:
    return os.path.join(data_dir, MANIFEST_NAME)


def write_manifest(data_dir: str, manifest: Manifest) -> None:
    """Atomically persist the manifest (crash-safe replace)."""
    path = manifest_path(data_dir)
    tmp = path + ".tmp"
    data = json.dumps(manifest.encode(), separators=(",", ":"))
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(data_dir)


def uid_watermark_path(data_dir: str) -> str:
    return os.path.join(data_dir, UID_WATERMARK_NAME)


def write_uid_watermark(data_dir: str, next_uid: int) -> None:
    """Atomically persist the next-uid watermark (crash-safe replace)."""
    path = uid_watermark_path(data_dir)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{next_uid}\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(data_dir)


def load_uid_watermark(data_dir: str) -> int:
    """The persisted watermark, or 1 when absent or unusable (the manifest
    and the log records still bound ``next_uid`` from below, so a damaged
    sidecar degrades to the pre-sidecar behavior, never to a failure)."""
    path = uid_watermark_path(data_dir)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            value = int(fh.read().strip())
    except FileNotFoundError:
        return 1
    except (ValueError, OSError) as exc:
        log.warning("ignoring unusable uid watermark %s (%s)", path, exc)
        return 1
    if value < 1:
        log.warning("ignoring nonsensical uid watermark %d in %s", value, path)
        return 1
    return value


def load_manifest(data_dir: str) -> Manifest | None:
    """The manifest, or ``None`` when absent or unusable (any damage means
    "checkpoint ignored, full replay" — never a startup failure)."""
    path = manifest_path(data_dir)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            obj = json.load(fh)
        return Manifest.decode(obj)
    except FileNotFoundError:
        return None
    except (ValueError, KeyError, TypeError, OSError) as exc:
        log.warning("ignoring unusable manifest %s (%s); will fully replay",
                    path, exc)
        return None


# ------------------------------------------------------- manifest deltas
def manifest_delta_path(data_dir: str) -> str:
    return os.path.join(data_dir, MANIFEST_DELTA_NAME)


def append_manifest_delta(data_dir: str, base_count: int, from_count: int,
                          entries: list[tuple[str, tuple[Location, ...], int]],
                          next_uid: int) -> None:
    """Append one checkpoint delta line covering records
    ``[from_count, from_count + len(entries))``.

    ``base_count`` pins the delta chain to the full manifest it extends
    (its ``record_count``); ``entries`` carry ``(sig_id, top_frames,
    sender_uid)`` — the uid rides along so the composed manifest can
    rebuild the per-user adjacency index without a second structure.  The
    line is flushed and fsynced before returning: a checkpoint must never
    vouch for records less durable than itself."""
    line = json.dumps({
        "base": base_count,
        "from": from_count,
        "entries": [
            [sig_id, [list(loc) for loc in frames], uid]
            for sig_id, frames, uid in entries
        ],
        "next_uid": next_uid,
    }, separators=(",", ":"))
    path = manifest_delta_path(data_dir)
    existed = os.path.exists(path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    if not existed:
        fsync_dir(data_dir)  # the delta file's dir entry is durable


def clear_manifest_delta(data_dir: str) -> None:
    """Remove the delta chain (after a full manifest made it redundant)."""
    try:
        os.unlink(manifest_delta_path(data_dir))
    except FileNotFoundError:
        pass


def load_manifest_with_deltas(data_dir: str) -> Manifest | None:
    """The *effective* manifest: the full ``MANIFEST.json`` with every
    cleanly-composable delta line applied on top.

    Composition stops (without failing) at the first line that is torn,
    unparseable, pinned to a different base, or discontiguous with the
    count composed so far — everything before it still accelerates the
    restart, everything after it is re-validated from the log."""
    manifest = load_manifest(data_dir)
    if manifest is None:
        return None
    manifest.base_record_count = manifest.record_count
    path = manifest_delta_path(data_dir)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError:
        return manifest
    except OSError as exc:
        log.warning("ignoring unreadable manifest delta %s (%s)", path, exc)
        return manifest
    base_count = manifest.record_count
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            if int(obj["base"]) != base_count:
                raise ValueError(
                    f"delta base {obj['base']} != manifest {base_count}")
            if int(obj["from"]) != manifest.record_count:
                raise ValueError(
                    f"delta from {obj['from']} != composed "
                    f"{manifest.record_count}")
            entries = [
                (str(sig_id), tuple((str(c), str(m), int(ln))
                                    for c, m, ln in frames), int(uid))
                for sig_id, frames, uid in obj["entries"]
            ]
            next_uid = int(obj.get("next_uid", 1))
        except (ValueError, KeyError, TypeError, IndexError) as exc:
            log.warning("stopping manifest-delta composition at line %d "
                        "of %s (%s); later records replay from the log",
                        lineno + 1, path, exc)
            break
        for sig_id, frames, uid in entries:
            index = manifest.record_count
            manifest.entries.append((sig_id, frames))
            manifest.users.setdefault(uid, []).append(index)
            manifest.record_count = index + 1
        manifest.next_uid = max(manifest.next_uid, next_uid)
    return manifest
