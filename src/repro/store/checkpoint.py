"""Checkpoint manifest (``MANIFEST.json``) for the signature store.

A checkpoint is a snapshot of everything the server would otherwise have
to *recompute* from the log on restart: how many records are durable, which
segment files hold them, the per-record metadata (content hash + top-frame
locations) that normally requires deserializing every blob, the per-user
record index behind the adjacency check, and the next user id to issue.

With a manifest present, restart replays only the records *past*
``record_count`` — the checkpointed prefix is loaded straight off the
segment files without CRC re-verification or signature parsing.  A missing,
torn, or inconsistent manifest is never fatal: the store falls back to a
full validating replay of the log (the manifest is an accelerator, the log
is the truth).

The file is written atomically (temp file + ``fsync`` + ``os.replace`` +
directory ``fsync``), so a crash mid-checkpoint leaves the previous
manifest intact.

The uid watermark has a second, *eager* home: the tiny ``UID_WATERMARK``
sidecar, rewritten (same atomic dance) on every token issue.  Checkpoints
are periodic, so without the sidecar a ``kill -9`` landing between a token
issue and the next checkpoint would replay an older ``next_uid`` and hand
the same uid to a different person — merging their quota and adjacency
history.  The sidecar is a single integer, cheap enough to persist per
issue; on open the store takes the max of manifest, log records, and
sidecar.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.store.wal import fsync_dir
from repro.util.logging import get_logger

log = get_logger("store.checkpoint")

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1
UID_WATERMARK_NAME = "UID_WATERMARK"

#: ``(class_name, method, line)`` — a frame location as stored in
#: signature metadata.
Location = tuple[str, str, int]


@dataclass
class Manifest:
    record_count: int
    segment_records: int
    segments: list[str] = field(default_factory=list)
    #: One ``(sig_id, top_frame_locations)`` per checkpointed record.
    entries: list[tuple[str, tuple[Location, ...]]] = field(default_factory=list)
    #: uid -> record indices (the adjacency-index snapshot, §III-C2).
    users: dict[int, list[int]] = field(default_factory=dict)
    #: Restart continuity for :class:`~repro.crypto.userid.UserIdAuthority`.
    next_uid: int = 1

    def encode(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "record_count": self.record_count,
            "segment_records": self.segment_records,
            "segments": list(self.segments),
            "entries": [
                [sig_id, [list(loc) for loc in frames]]
                for sig_id, frames in self.entries
            ],
            "users": {str(uid): idxs for uid, idxs in self.users.items()},
            "next_uid": self.next_uid,
        }

    @staticmethod
    def decode(obj: dict) -> "Manifest":
        if obj.get("version") != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {obj.get('version')!r}")
        record_count = int(obj["record_count"])
        segment_records = int(obj["segment_records"])
        if record_count < 0 or segment_records < 1:
            raise ValueError(
                f"nonsensical manifest counts (records={record_count}, "
                f"segment_records={segment_records})"
            )
        entries = [
            (str(sig_id), tuple((str(c), str(m), int(line))
                                for c, m, line in frames))
            for sig_id, frames in obj["entries"]
        ]
        if len(entries) != record_count:
            raise ValueError(
                f"manifest lists {len(entries)} entries for "
                f"{record_count} records"
            )
        users = {int(uid): [int(i) for i in idxs]
                 for uid, idxs in obj.get("users", {}).items()}
        for idxs in users.values():
            if any(i < 0 or i >= record_count for i in idxs):
                raise ValueError("manifest user index out of range")
        return Manifest(
            record_count=record_count,
            segment_records=segment_records,
            segments=[str(s) for s in obj.get("segments", [])],
            entries=entries,
            users=users,
            next_uid=int(obj.get("next_uid", 1)),
        )


def manifest_path(data_dir: str) -> str:
    return os.path.join(data_dir, MANIFEST_NAME)


def write_manifest(data_dir: str, manifest: Manifest) -> None:
    """Atomically persist the manifest (crash-safe replace)."""
    path = manifest_path(data_dir)
    tmp = path + ".tmp"
    data = json.dumps(manifest.encode(), separators=(",", ":"))
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(data_dir)


def uid_watermark_path(data_dir: str) -> str:
    return os.path.join(data_dir, UID_WATERMARK_NAME)


def write_uid_watermark(data_dir: str, next_uid: int) -> None:
    """Atomically persist the next-uid watermark (crash-safe replace)."""
    path = uid_watermark_path(data_dir)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{next_uid}\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(data_dir)


def load_uid_watermark(data_dir: str) -> int:
    """The persisted watermark, or 1 when absent or unusable (the manifest
    and the log records still bound ``next_uid`` from below, so a damaged
    sidecar degrades to the pre-sidecar behavior, never to a failure)."""
    path = uid_watermark_path(data_dir)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            value = int(fh.read().strip())
    except FileNotFoundError:
        return 1
    except (ValueError, OSError) as exc:
        log.warning("ignoring unusable uid watermark %s (%s)", path, exc)
        return 1
    if value < 1:
        log.warning("ignoring nonsensical uid watermark %d in %s", value, path)
        return 1
    return value


def load_manifest(data_dir: str) -> Manifest | None:
    """The manifest, or ``None`` when absent or unusable (any damage means
    "checkpoint ignored, full replay" — never a startup failure)."""
    path = manifest_path(data_dir)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            obj = json.load(fh)
        return Manifest.decode(obj)
    except FileNotFoundError:
        return None
    except (ValueError, KeyError, TypeError, OSError) as exc:
        log.warning("ignoring unusable manifest %s (%s); will fully replay",
                    path, exc)
        return None
