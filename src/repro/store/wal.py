"""Segmented append-only write-ahead log (``segment-<n>.cxlog`` files).

The log rotates to a fresh segment file every ``segment_records`` appends,
so segment *n* always holds records ``[n * segment_records,
(n+1) * segment_records)`` — the same stripe boundaries as the in-memory
:class:`~repro.server.database.SignatureDatabase` segments, which keeps
"replay segment file → rebuild database segment" a one-to-one walk.

Durability is a pluggable **fsync policy** (:func:`parse_fsync_policy`):

* ``always`` — every append is flushed *and* fsynced before it returns;
  an acked ADD survives ``kill -9``.  Concurrent appends **group-commit**:
  the first thread to reach the commit phase becomes the batch leader and
  issues one fsync covering every record written so far; the others just
  wait for a leader whose fsync covers them.  One disk flush amortises
  over the whole batch — the durability contract is unchanged (no append
  returns before its record is on disk), only the fsync count drops.
* ``interval:<ms>`` — a background flusher thread fsyncs the tail file
  every ``<ms>`` milliseconds; a crash loses at most that window.
* ``never`` — the OS decides; a clean :meth:`close` still flushes.

Sealed segments are flushed **and fsynced at rotation under every
policy** — ``flush()`` and checkpoints only reach the current tail file,
so rotation is the one moment a sealed segment can be made durable.

Opening a directory recovers it: segment files are scanned in order, a
torn tail (partial record after a crash) is truncated back to the last
valid record, and any segments *after* a damaged one are set aside as
``*.orphan`` files rather than silently merged past a hole.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from time import perf_counter

from repro.obs import STAGE_GROUP_COMMIT, STAGE_WAL_FSYNC
from repro.store.records import LogRecord, pack_record, scan_records
from repro.util.logging import get_logger

log = get_logger("store.wal")

#: Records per segment file; mirrors the database's in-memory stripe size
#: (``repro.server.database.DEFAULT_SEGMENT_SIZE``) so one log segment
#: replays into exactly one database segment.
DEFAULT_SEGMENT_RECORDS = 1024

SEGMENT_SUFFIX = ".cxlog"
_SEGMENT_RE = re.compile(r"^segment-(\d{8})\.cxlog$")

FSYNC_ALWAYS = "always"
FSYNC_INTERVAL = "interval"
FSYNC_NEVER = "never"


@dataclass(frozen=True)
class FsyncPolicy:
    """A parsed fsync policy: ``mode`` plus the interval (seconds) when
    ``mode == "interval"``."""

    mode: str
    interval_s: float = 0.0

    def spec(self) -> str:
        if self.mode == FSYNC_INTERVAL:
            return f"interval:{int(self.interval_s * 1000)}"
        return self.mode


def parse_fsync_policy(spec: str | FsyncPolicy) -> FsyncPolicy:
    """``"always"`` / ``"never"`` / ``"interval:<ms>"`` → policy object."""
    if isinstance(spec, FsyncPolicy):
        return spec
    text = str(spec).strip().lower()
    if text == FSYNC_ALWAYS:
        return FsyncPolicy(FSYNC_ALWAYS)
    if text == FSYNC_NEVER:
        return FsyncPolicy(FSYNC_NEVER)
    head, _, arg = text.partition(":")
    if head == FSYNC_INTERVAL:
        try:
            millis = float(arg)
        except ValueError:
            millis = -1.0
        if millis > 0:
            return FsyncPolicy(FSYNC_INTERVAL, interval_s=millis / 1000.0)
    raise ValueError(
        f"bad fsync policy {spec!r} (want always, never, or interval:<ms>)"
    )


def segment_filename(seq: int) -> str:
    return f"segment-{seq:08d}{SEGMENT_SUFFIX}"


def fsync_dir(path: str) -> None:
    """Make a directory entry durable: fsyncing file *contents* does not
    persist the file's existence — without this, a power loss can drop a
    freshly-rotated segment (and every acked record in it) wholesale."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def list_segments(data_dir: str) -> list[tuple[int, str]]:
    """Sorted ``(seq, filename)`` pairs of the segment files in a dir."""
    found = []
    for name in os.listdir(data_dir):
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), name))
    found.sort()
    return found


@dataclass
class RecoveryReport:
    """What :class:`SegmentedLog` found (and repaired) while opening."""

    record_count: int = 0
    segment_count: int = 0
    truncated_bytes: int = 0
    orphaned_segments: int = 0


class SegmentedLog:
    """The durable byte layer: append records, rotate segments, recover.

    Thread safety: :meth:`append` may be called from many worker threads
    (they serialize on an internal lock); the background flusher only ever
    flushes the current tail file under that same lock.
    """

    def __init__(self, data_dir: str,
                 segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 fsync: str | FsyncPolicy = FSYNC_ALWAYS,
                 trusted_records: int = 0,
                 group_commit: bool = True):
        """``trusted_records`` is the checkpointed prefix length: records a
        durable manifest already vouches for skip CRC re-verification when
        their segment is fully covered (framing is still parsed).

        ``group_commit`` batches concurrent ``always`` appends into one
        fsync (see the module docstring); disable it to get the original
        one-fsync-per-append behaviour (the benchmark baseline)."""
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        self.data_dir = data_dir
        self.segment_records = segment_records
        self.trusted_records = max(0, trusted_records)
        self.policy = parse_fsync_policy(fsync)
        self.group_commit = bool(group_commit)
        self.recovery = RecoveryReport()
        self._lock = threading.Lock()
        self._commit_lock = threading.Lock()  # group-commit leader election
        self._file = None  # tail segment file handle (append mode)
        self._tail_seq = 0
        self._tail_records = 0
        self._count = 0
        self._durable = 0  # records covered by a completed fsync
        self._fsyncs_issued = 0  # commit-phase fsyncs (batching visibility)
        self._dirty = False  # bytes written since the last fsync
        self._last_pos = 0  # file offset of the newest record's start
        self._closed = False
        self._broken = False  # a failed write could not be rolled back
        self._flusher: threading.Thread | None = None
        self._flusher_stop = threading.Event()
        self._h_fsync = None  # stage.wal_fsync histogram (set_metrics)
        self._h_group = None  # stage.group_commit histogram (set_metrics)
        os.makedirs(data_dir, exist_ok=True)
        self._recovered = self._recover()
        self._durable = self._count  # everything recovered is on disk
        self._open_tail()
        if self.policy.mode == FSYNC_INTERVAL:
            self._start_flusher()

    # ------------------------------------------------------------- recovery
    def _recover(self) -> list[LogRecord]:
        """Scan segments in order; truncate the torn tail; orphan anything
        past a damaged segment.  Returns every recovered record."""
        records: list[LogRecord] = []
        report = self.recovery
        segments = list_segments(self.data_dir)
        broken_at: int | None = None
        for position, (seq, name) in enumerate(segments):
            if broken_at is not None or seq != position:
                # A gap in the sequence (or anything after damage) cannot
                # be stitched past: set it aside for the operator.
                self._orphan(name)
                report.orphaned_segments += 1
                if broken_at is None:
                    broken_at = position
                continue
            path = os.path.join(self.data_dir, name)
            with open(path, "rb") as fh:
                data = fh.read()
            # A segment whose every record sits inside the checkpointed
            # prefix was already validated before the manifest was
            # written; parse its framing but skip the CRC pass.
            verify = ((position + 1) * self.segment_records
                      > self.trusted_records)
            found, valid_bytes = scan_records(data, verify_crc=verify)
            if len(found) > self.segment_records:
                # More records than one segment can hold: the directory
                # was written under a different segmentation.  Refusing is
                # the only safe move — the seq/index math below would
                # silently misplace the tail.
                raise ValueError(
                    f"{name} holds {len(found)} records but this log is "
                    f"configured for {self.segment_records} per segment; "
                    "reopen with the segmentation the data dir was "
                    "written with"
                )
            torn = valid_bytes < len(data)
            if torn:
                log.warning("torn tail in %s: truncating %d byte(s) after "
                            "record %d", name, len(data) - valid_bytes,
                            len(records) + len(found))
                report.truncated_bytes += len(data) - valid_bytes
                self._truncate(path, valid_bytes)
            records.extend(found)
            if len(found) < self.segment_records:
                # A short segment is only legal as the live tail.  When a
                # *cleanly*-short one (no torn bytes — every byte parsed)
                # has segments after it and no manifest vouches for the
                # layout, this is indistinguishable from a reopen with the
                # wrong segment_records; auto-orphaning the followers
                # would silently discard durable records, so refuse.
                if (position < len(segments) - 1 and not torn
                        and self.trusted_records == 0):
                    raise ValueError(
                        f"{name} holds {len(found)} records (expected "
                        f"{self.segment_records}) yet further segments "
                        "follow and no manifest describes the layout; "
                        "reopen with the segmentation this directory was "
                        "written with, or restore MANIFEST.json"
                    )
                broken_at = position + 1
        self._count = len(records)
        self._tail_seq = self._count // self.segment_records
        self._tail_records = self._count % self.segment_records
        report.record_count = self._count
        report.segment_count = self._tail_seq + (1 if self._tail_records else 0)
        return records

    def _orphan(self, name: str) -> None:
        src = os.path.join(self.data_dir, name)
        dst = src + ".orphan"
        log.warning("setting aside unexpected segment %s", name)
        suffix = 0
        while os.path.exists(dst):  # pragma: no cover - repeated crashes
            suffix += 1
            dst = f"{src}.orphan.{suffix}"
        os.replace(src, dst)

    @staticmethod
    def _truncate(path: str, size: int) -> None:
        with open(path, "r+b") as fh:
            fh.truncate(size)
            fh.flush()
            os.fsync(fh.fileno())

    def recovered_records(self) -> list[LogRecord]:
        """The records found at open time (consumed once by the store)."""
        records, self._recovered = self._recovered, []
        return records

    # -------------------------------------------------------------- writing
    def _open_tail(self) -> None:
        path = os.path.join(self.data_dir, segment_filename(self._tail_seq))
        existed = os.path.exists(path)
        self._file = open(path, "ab")
        if not existed:
            fsync_dir(self.data_dir)  # the new file's dir entry is durable

    def _rotate_locked(self) -> None:
        """Seal the full tail segment (flush + fsync, under *every*
        policy: ``flush()``/checkpoints only ever touch the current tail,
        so this is the one chance to make a sealed segment durable — one
        fsync per ``segment_records`` appends is cheap even for ``never``)
        and start the next one.  Ordered so any failure leaves the old
        tail open and every counter untouched — the caller's append simply
        fails without side effects."""
        fh = self._file
        fh.flush()
        os.fsync(fh.fileno())
        next_seq = self._tail_seq + 1
        new = open(os.path.join(self.data_dir, segment_filename(next_seq)),
                   "ab")
        fsync_dir(self.data_dir)  # persist the new segment's dir entry
        fh.close()
        self._file = new
        self._tail_seq = next_seq
        self._tail_records = 0
        self._dirty = False

    def append(self, blob: bytes, sender_uid: int, trace=None) -> int:
        """Durably append one record; returns its log index.

        All-or-nothing: on a disk error the partial write is rolled back
        (file truncated to its pre-append length, buffer discarded) before
        the ``OSError`` propagates, so the log's record count never runs
        ahead of what the caller observed — a failed append changes
        nothing.  If even the rollback fails the log marks itself broken
        and every further append raises cleanly.

        Under ``always`` with :attr:`group_commit` the write phase (under
        the append lock) and the commit phase (leader-elected fsync) are
        separate, so other threads keep buffering records while a batch
        leader waits on the disk; no append returns before an fsync covers
        its record.  When a group fsync fails with *several* records
        pending, none of the waiters ack (each surfaces the ``OSError``)
        but the batch cannot be rolled back — a crash-restart may then
        recover records that were never acked, which is safe: replay is
        idempotent at the database layer (sig_id dedup) and an unacked ADD
        resurfacing is indistinguishable from a client retry.
        """
        grouped = (self.policy.mode == FSYNC_ALWAYS and self.group_commit)
        if grouped:
            index, pos = self._write_phase(blob, sender_uid)
            self._commit(index + 1, pos, trace)
            return index
        record = pack_record(blob, sender_uid)
        with self._lock:
            if self._closed:
                raise ValueError("log is closed")
            if self._broken:
                raise OSError("log failed a write and could not roll back; "
                              "restart to recover")
            # Rotate *before* writing, so a rotation failure surfaces with
            # nothing of this record on disk yet.
            if self._tail_records >= self.segment_records:
                self._rotate_locked()
            index = self._count
            pos = self._file.tell()
            try:
                self._file.write(record)
                if self.policy.mode == FSYNC_ALWAYS:
                    histogram = self._h_fsync
                    timed = histogram is not None or trace is not None
                    started = perf_counter() if timed else 0.0
                    self._file.flush()
                    os.fsync(self._file.fileno())
                    if timed:
                        elapsed = perf_counter() - started
                        if histogram is not None:
                            histogram.record(elapsed)
                        if trace is not None:
                            trace.stamp(STAGE_WAL_FSYNC, elapsed)
                    if index + 1 > self._durable:
                        self._durable = index + 1
                else:
                    self._dirty = True
            except OSError:
                self._rollback(pos)
                raise
            self._count = index + 1
            self._tail_records += 1
        return index

    def append_unflushed(self, blob: bytes, sender_uid: int) -> int:
        """The write phase alone: buffer the record under the append lock
        and return its index — **no durability yet** under any policy.
        The caller must follow up with :meth:`commit_appended` (outside
        any lock of its own) before acking; this is how the store keeps
        its metadata mirror in index-lockstep with the log without
        serializing group commits behind its lock."""
        index, _pos = self._write_phase(blob, sender_uid)
        return index

    def commit_appended(self, target: int, trace=None) -> None:
        """Make the first ``target`` records durable (group-committed
        under ``always``; a no-op under ``interval``/``never``, same as
        an inline append).  Unlike :meth:`append`, a failed fsync here
        never rolls the record back — the caller's mirror already points
        at it — so the record stays in the log unacked and the ``OSError``
        propagates (see :meth:`append` on why that is safe)."""
        if self.policy.mode != FSYNC_ALWAYS:
            return
        self._commit(target, None, trace)

    def _write_phase(self, blob: bytes, sender_uid: int) -> tuple[int, int]:
        record = pack_record(blob, sender_uid)
        with self._lock:
            if self._closed:
                raise ValueError("log is closed")
            if self._broken:
                raise OSError("log failed a write and could not roll back; "
                              "restart to recover")
            if self._tail_records >= self.segment_records:
                self._rotate_locked()
            index = self._count
            pos = self._file.tell()
            try:
                self._file.write(record)
                self._dirty = True
            except OSError:
                self._rollback(pos)
                raise
            self._count = index + 1
            self._tail_records += 1
            self._last_pos = pos
        return index, pos

    def rollback_appended(self, index: int) -> bool:
        """Best-effort undo of record ``index`` after its commit phase
        failed, for callers (the store) whose bookkeeping must stay in
        index-lockstep with the log.  Succeeds only when the record is
        still the newest one and no fsync covered it — otherwise the log
        is left untouched and ``False`` says "the record stays; reconcile
        around it"."""
        with self._lock:
            if (self._closed or self._broken or self._count != index + 1
                    or self._durable > index):
                return False
            self._rollback(self._last_pos)
            if self._broken:
                return False
            self._count = index
            if self._tail_records > 0:
                self._tail_records -= 1
            return True

    # --------------------------------------------------------- group commit
    def _commit(self, target: int, pos: int | None, trace) -> None:
        """Block until an fsync covers the first ``target`` records.

        Exactly one thread holds the commit lock at a time; whoever gets
        it while ``target`` is still uncovered becomes the batch leader
        and fsyncs everything written so far.  Later appenders queueing on
        the lock usually find their record already covered and return
        without touching the disk — that wait *is* the group commit.
        ``pos`` is the record's pre-append file offset, used to roll back
        when the failed batch contains only this record (keeping the
        single-writer all-or-nothing contract intact)."""
        histogram = self._h_fsync
        timed = histogram is not None or trace is not None
        started = perf_counter() if timed else 0.0
        with self._commit_lock:
            # Lock-acquisition wait = riding someone else's batch: that
            # wait *is* the group commit, so it gets its own stage next
            # to the whole-commit wal_fsync stamp below.
            if timed:
                acquired = perf_counter()
                lock_wait = acquired - started
                if self._h_group is not None:
                    self._h_group.record(lock_wait)
                if trace is not None:
                    trace.stamp(STAGE_GROUP_COMMIT, lock_wait)
            if self._durable < target:
                self._fsync_batch_commit_locked(target, pos)
        if timed:
            elapsed = perf_counter() - started
            if histogram is not None:
                histogram.record(elapsed)
            if trace is not None:
                trace.stamp(STAGE_WAL_FSYNC, elapsed)

    def _fsync_batch_commit_locked(self, target: int, pos: int | None) -> None:
        """Leader path: flush the tail under the append lock, then fsync a
        dup of its descriptor *outside* it so concurrent appends keep
        buffering.  The dup keeps the open file description alive even if
        a rotation swaps the tail mid-fsync (the rotated-out segment was
        already fsynced by ``_rotate_locked``, so syncing it again is just
        a no-op)."""
        fd = -1
        try:
            with self._lock:
                if self._broken:
                    raise OSError("log failed a write and could not roll "
                                  "back; restart to recover")
                if self._file is None or self._file.closed:
                    raise OSError("log tail is not open")
                covered = self._count
                self._file.flush()
                fd = os.dup(self._file.fileno())
                self._dirty = False
            os.fsync(fd)
            self._fsyncs_issued += 1
        except OSError:
            self._abort_batch(target, pos)
            raise
        finally:
            if fd >= 0:
                os.close(fd)
        if covered > self._durable:
            self._durable = covered

    def _abort_batch(self, target: int, pos: int | None) -> None:
        """A group fsync failed.  If the batch held exactly the leader's
        own record, roll it back (truncate to ``pos``, undo the counters)
        so the failed append leaves no trace — the same contract as the
        non-grouped path.  A wider batch cannot be unwound record by
        record: leave the log as-is and let every uncovered waiter surface
        the error itself (none of them ack).  ``pos`` of ``None`` means
        the caller's bookkeeping already references the record
        (:meth:`commit_appended`) — never roll back then."""
        if pos is None:
            return
        with self._lock:
            sole = (self._count == target and self._durable == target - 1)
            if not sole or self._broken or self._closed:
                return
            self._rollback(pos)
            if not self._broken:
                self._count = target - 1
                if self._tail_records > 0:
                    self._tail_records -= 1

    def set_metrics(self, metrics) -> None:
        """Record fsync waits into the registry's ``stage.wal_fsync``
        histogram (and commit-leader waits into ``stage.group_commit``);
        no-op overhead when the null registry is attached."""
        if metrics.enabled:
            self._h_fsync = metrics.histogram(f"stage.{STAGE_WAL_FSYNC}")
            self._h_group = metrics.histogram(f"stage.{STAGE_GROUP_COMMIT}")
        else:
            self._h_fsync = None
            self._h_group = None

    def _rollback(self, pos: int) -> None:
        """Undo a failed append: drop any buffered bytes and cut the tail
        file back to ``pos``.  Reopening the handle is what discards the
        write buffer — otherwise its partial record could flush later,
        splicing garbage mid-log.

        If the close-time flush *also* fails, earlier buffered records
        (acked under ``interval``/``never``) never reached the disk: the
        file is shorter than ``pos`` and truncating to ``pos`` would
        zero-fill a hole that poisons every later record.  There is no
        consistent state to continue from, so the log marks itself broken
        — restart recovers the on-disk prefix."""
        flushed = True
        try:
            self._file.close()
        except OSError:
            flushed = False
        if not flushed:
            self._broken = True
            log.error("rollback could not flush buffered records; log "
                      "disabled — restart recovers the on-disk prefix")
            return
        try:
            path = os.path.join(self.data_dir,
                                segment_filename(self._tail_seq))
            with open(path, "r+b") as fh:
                fh.truncate(pos)  # flush succeeded, so the file covers pos
            self._open_tail()
        except OSError:  # pragma: no cover - disk fully gone
            self._broken = True
            log.exception("could not roll back a failed append; "
                          "log marked broken")

    def flush(self) -> None:
        """Flush and fsync the tail regardless of policy."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._file is None or self._file.closed:
            return
        histogram = self._h_fsync
        started = perf_counter() if histogram is not None else 0.0
        self._file.flush()
        os.fsync(self._file.fileno())
        if histogram is not None:
            histogram.record(perf_counter() - started)
        self._dirty = False
        if self._count > self._durable:
            self._durable = self._count

    # ------------------------------------------------------------- flusher
    def _start_flusher(self) -> None:
        self._flusher_stop.clear()
        self._flusher = threading.Thread(
            target=self._flusher_run, name="communix-wal-flusher", daemon=True
        )
        self._flusher.start()

    def _flusher_run(self) -> None:
        while not self._flusher_stop.wait(self.policy.interval_s):
            with self._lock:
                if self._closed:
                    return
                if self._dirty:
                    try:
                        self._flush_locked()
                    except OSError:  # pragma: no cover - disk went away
                        log.exception("background fsync failed")

    # -------------------------------------------------------------- closing
    def close(self) -> None:
        """Stop the flusher, flush + fsync the tail, release the handle."""
        if self._flusher is not None:
            self._flusher_stop.set()
            self._flusher.join(timeout=5.0)
            self._flusher = None
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file is not None and not self._file.closed:
                self._flush_locked()
                self._file.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def durable_count(self) -> int:
        """Records covered by a completed fsync (== ``record_count`` after
        any successful ``always`` append or explicit :meth:`flush`)."""
        return self._durable

    @property
    def fsyncs_issued(self) -> int:
        """Commit-phase fsyncs performed so far — compare against the
        append count to see group-commit batching in action."""
        return self._fsyncs_issued

    def segment_names(self) -> list[str]:
        """Current segment file names, in record order."""
        return [name for _, name in list_segments(self.data_dir)]
