"""Run a Communix client daemon (or one-shot tools) from the command line.

Usage::

    python -m repro.client --server tcp://HOST:PORT [--repository PATH]
        [--period-seconds 86400] [--once]
    python -m repro.client stats --server tcp://HOST:PORT [--watch N]

``--server`` accepts any endpoint URL (``tcp://host:port``,
``unix:///path``) or the legacy bare ``HOST:PORT``.

The daemon downloads new signatures from the server into the machine-local
repository (incrementally — only what is missing), once per period; the
paper's deployment period is one day.  ``--once`` performs a single poll and
exits, which is handy in scripts and cron jobs.

``stats`` issues a STATS request and pretty-prints the v2 response —
request counters, rejection breakdown, token-cache hit rate, and the
per-stage latency histograms the server records (see
``docs/architecture.md`` §9) — falling back to the six v1 counters when
the server predates STATS v2.  ``--watch N`` refreshes every N seconds.
"""

from __future__ import annotations

import argparse
import signal
import threading
import time

from repro.client.client import CommunixClient, DEFAULT_PERIOD
from repro.client.endpoints import SocketEndpoint
from repro.core.repository import LocalRepository
from repro.net import EndpointError
from repro.obs import summary_from_wire
from repro.util.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.client",
        description="Communix signature-download daemon",
    )
    parser.add_argument(
        "--server", required=True, metavar="URL",
        help="server endpoint: tcp://HOST:PORT, unix:///PATH, or HOST:PORT",
    )
    parser.add_argument(
        "--repository", default="communix-repository.json",
        help="local repository file (created if missing)",
    )
    parser.add_argument(
        "--period-seconds", type=float, default=DEFAULT_PERIOD,
        help="seconds between polls (paper: 86400, once a day)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="poll a single time and exit",
    )
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.client stats",
        description="Fetch and pretty-print a Communix server's STATS",
    )
    parser.add_argument(
        "--server", required=True, metavar="URL",
        help="server endpoint: tcp://HOST:PORT, unix:///PATH, or HOST:PORT",
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh every SECONDS until interrupted",
    )
    return parser


def format_stats(payload: dict) -> str:
    """Human-readable rendering of a STATS response (v1 or v2)."""
    version = payload.get("version", 1)
    lines = [f"STATS v{version}"]
    lines.append(f"  database_size      {payload.get('database_size', 0)}")
    lines.append(f"  adds_accepted      {payload.get('adds_accepted', 0)}")
    lines.append(f"  gets_served        {payload.get('gets_served', 0)}")
    hits = payload.get("token_cache_hits", 0)
    misses = payload.get("token_cache_misses", 0)
    total = hits + misses
    rate = f" ({hits / total:.1%} hit)" if total else ""
    lines.append(f"  token_cache        {hits} hits / {misses} misses{rate}")
    if version < 2:
        lines.append("  (v1 server: no stage histograms; upgrade for more)")
        return "\n".join(lines)
    lines.append(
        f"  signatures_served  {payload.get('signatures_served', 0)}"
    )
    rejected = payload.get("adds_rejected") or {}
    if rejected:
        breakdown = ", ".join(
            f"{verdict}={count}" for verdict, count in sorted(rejected.items())
        )
        lines.append(f"  adds_rejected      {breakdown}")
    metrics = payload.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("  stage latencies (ms):")
        lines.append(f"    {'stage':<22}{'count':>9}{'p50':>9}"
                     f"{'p95':>9}{'p99':>9}{'max':>9}")
        for name in sorted(histograms):
            summary = summary_from_wire(histograms[name])
            if not summary.get("count"):
                continue
            lines.append(
                f"    {name:<22}{summary['count']:>9}"
                f"{summary['p50_ms']:>9.2f}{summary['p95_ms']:>9.2f}"
                f"{summary['p99_ms']:>9.2f}{summary['max_ms']:>9.2f}"
            )
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("  gauges:")
        for name in sorted(gauges):
            lines.append(f"    {name:<26}{gauges[name]:>12g}")
    counters = metrics.get("counters") or {}
    shown = {"adds_accepted", "gets_served", "signatures_served",
             "adds_rejected", "token_cache.hits", "token_cache.misses"}
    extra = {k: v for k, v in counters.items() if k not in shown}
    if extra:
        lines.append("  counters:")
        for name in sorted(extra):
            lines.append(f"    {name:<26}{extra[name]:>12}")
    return "\n".join(lines)


def stats_main(argv: list[str]) -> int:
    args = build_stats_parser().parse_args(argv)
    try:
        endpoint = SocketEndpoint(args.server)
    except EndpointError as exc:
        raise SystemExit(f"--server: {exc}")
    try:
        while True:
            print(format_stats(endpoint.stats()))
            if args.watch is None:
                return 0
            time.sleep(max(0.1, args.watch))
            print()
    except KeyboardInterrupt:
        return 0
    finally:
        endpoint.close()


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        import sys

        argv = sys.argv[1:]
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    args = build_parser().parse_args(argv)
    enable_console_logging()
    try:
        endpoint = SocketEndpoint(args.server)
    except EndpointError as exc:
        raise SystemExit(f"--server: {exc}")
    repository = LocalRepository(path=args.repository)
    client = CommunixClient(
        endpoint=endpoint, repository=repository, period=args.period_seconds
    )
    if args.once:
        report = client.poll_once()
        print(
            f"downloaded {report.received} signatures "
            f"(stored {report.stored}, malformed {report.malformed}); "
            f"repository now holds {len(repository)}"
        )
        endpoint.close()
        return 1 if report.failed else 0
    client.start()
    print(f"communix-client polling {args.server} every "
          f"{args.period_seconds:.0f}s into {args.repository}")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        client.stop()
        endpoint.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
