"""Run a Communix client daemon from the command line.

Usage::

    python -m repro.client --server tcp://HOST:PORT [--repository PATH]
        [--period-seconds 86400] [--once]

``--server`` accepts any endpoint URL (``tcp://host:port``,
``unix:///path``) or the legacy bare ``HOST:PORT``.

The daemon downloads new signatures from the server into the machine-local
repository (incrementally — only what is missing), once per period; the
paper's deployment period is one day.  ``--once`` performs a single poll and
exits, which is handy in scripts and cron jobs.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.client.client import CommunixClient, DEFAULT_PERIOD
from repro.client.endpoints import SocketEndpoint
from repro.core.repository import LocalRepository
from repro.net import EndpointError
from repro.util.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.client",
        description="Communix signature-download daemon",
    )
    parser.add_argument(
        "--server", required=True, metavar="URL",
        help="server endpoint: tcp://HOST:PORT, unix:///PATH, or HOST:PORT",
    )
    parser.add_argument(
        "--repository", default="communix-repository.json",
        help="local repository file (created if missing)",
    )
    parser.add_argument(
        "--period-seconds", type=float, default=DEFAULT_PERIOD,
        help="seconds between polls (paper: 86400, once a day)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="poll a single time and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    enable_console_logging()
    try:
        endpoint = SocketEndpoint(args.server)
    except EndpointError as exc:
        raise SystemExit(f"--server: {exc}")
    repository = LocalRepository(path=args.repository)
    client = CommunixClient(
        endpoint=endpoint, repository=repository, period=args.period_seconds
    )
    if args.once:
        report = client.poll_once()
        print(
            f"downloaded {report.received} signatures "
            f"(stored {report.stored}, malformed {report.malformed}); "
            f"repository now holds {len(repository)}"
        )
        endpoint.close()
        return 1 if report.failed else 0
    client.start()
    print(f"communix-client polling {args.server} every "
          f"{args.period_seconds:.0f}s into {args.repository}")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        client.stop()
        endpoint.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
