"""Server endpoints: how client-side components reach the Communix server.

All endpoints expose the same calls (the :class:`ServerEndpoint`
protocol): ``add(blob, token)``, ``get(from_index)``,
``get_page(from_index, max_count)`` and ``issue_token()``.  ``get`` is the
legacy unpaginated download (the whole tail in one response); ``get_page``
is the paginated form the client daemon loops over, bounded per response
by ``max_count`` and resumable via the returned ``more`` flag.

Addressing goes through :mod:`repro.net`: :class:`SocketEndpoint` takes
any endpoint URL (``tcp://host:port``, ``unix:///path``, legacy
``host:port``) and speaks the same framed protocol over either family;
:class:`TcpEndpoint` remains as the historical ``(host, port)``
constructor.
"""

from __future__ import annotations

import socket
import threading
from typing import Protocol

from repro.net import dial, parse_endpoint, tcp_endpoint
from repro.server.protocol import (
    decode_get_page,
    decode_get_response,
    encode_add_request,
    encode_request,
    encode_stats_request,
    read_frame,
    write_frame,
)
from repro.server.server import CommunixServer
from repro.util.encoding import from_canonical_json
from repro.util.errors import ProtocolError


class ServerEndpoint(Protocol):
    def add(self, blob: bytes, token: str) -> bool: ...

    def get(self, from_index: int) -> tuple[int, list[bytes]]: ...

    def get_page(self, from_index: int, max_count: int
                 ) -> tuple[int, list[bytes], bool]: ...

    def issue_token(self) -> str: ...


class InProcessEndpoint:
    """Directly invokes a server's request-processing routines (no network).

    This is exactly the configuration the paper's Fig. 2 benchmarks: "we
    invoke the request processing routines from [N] simultaneous threads".
    """

    def __init__(self, server: CommunixServer):
        self._server = server

    def add(self, blob: bytes, token: str) -> bool:
        return self._server.process_add(blob, token).accepted

    def get(self, from_index: int) -> tuple[int, list[bytes]]:
        return self._server.process_get(from_index)

    def get_page(self, from_index: int, max_count: int
                 ) -> tuple[int, list[bytes], bool]:
        return self._server.process_get_page(from_index, max_count)

    def issue_token(self) -> str:
        return self._server.issue_user_token()


class SocketEndpoint:
    """A persistent client connection to a :class:`ServerTransport`,
    over TCP or a UNIX-domain socket.

    Thread-safe by serializing requests on the single connection; separate
    client threads should each own their endpoint (as the Fig. 3 benchmark
    threads do) to get connection-level parallelism.
    """

    def __init__(self, target, connect_timeout: float = 5.0,
                 io_timeout: float = 30.0):
        """``target`` is an endpoint URL, legacy ``host:port`` string,
        ``(host, port)`` tuple, or :class:`repro.net.Endpoint`."""
        self._endpoint = parse_endpoint(target)
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    @property
    def endpoint(self):
        return self._endpoint

    # ---------------------------------------------------------- connection
    def _connection(self) -> socket.socket:
        if self._sock is None:
            sock = dial(self._endpoint, timeout=self._connect_timeout)
            sock.settimeout(self._io_timeout)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None

    def _roundtrip(self, request: bytes) -> bytes:
        with self._lock:
            try:
                sock = self._connection()
                write_frame(sock, request)
                response = read_frame(sock)
            except OSError as exc:
                self._drop_connection()
                raise ProtocolError(f"server connection failed: {exc}") from exc
            if response is None:
                self._drop_connection()
                raise ProtocolError("server closed the connection")
            return response

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------ requests
    def add(self, blob: bytes, token: str) -> bool:
        response = self._roundtrip(encode_add_request(blob, token))
        decoded = from_canonical_json(response)
        return bool(decoded.get("ok"))

    def get(self, from_index: int) -> tuple[int, list[bytes]]:
        response = self._roundtrip(
            encode_request({"op": "GET", "from_index": from_index})
        )
        return decode_get_response(response)

    def get_page(self, from_index: int, max_count: int
                 ) -> tuple[int, list[bytes], bool]:
        """One bounded page: ``(next_index, blobs, more)``.  The server
        clamps ``max_count`` to its own page cap; loop while ``more``."""
        response = self._roundtrip(
            encode_request(
                {"op": "GET", "from_index": from_index, "max_count": max_count}
            )
        )
        return decode_get_page(response)

    def get_raw(self, from_index: int, max_count: int | None = None) -> bytes:
        """The raw GET response — lets callers count signatures without
        materializing them (what the downloader does for accounting)."""
        request: dict = {"op": "GET", "from_index": from_index}
        if max_count is not None:
            request["max_count"] = max_count
        return self._roundtrip(encode_request(request))

    def issue_token(self) -> str:
        response = self._roundtrip(encode_request({"op": "ISSUE_ID"}))
        decoded = from_canonical_json(response)
        if not decoded.get("ok"):
            raise ProtocolError("server refused to issue a token")
        return str(decoded["token"])

    def stats(self, version: int = 2) -> dict:
        """The server's STATS response as a dict.

        Asking for v2 degrades gracefully: a pre-versioning server
        ignores the ``version`` field and answers in the v1 shape (no
        ``version`` key in the response), which callers detect with
        ``response.get("version", 1)``.
        """
        response = self._roundtrip(encode_stats_request(version))
        decoded = from_canonical_json(response)
        if not isinstance(decoded, dict) or not decoded.get("ok"):
            raise ProtocolError("server refused the STATS request")
        return decoded


class TcpEndpoint(SocketEndpoint):
    """Historical ``(host, port)`` constructor for a TCP connection."""

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0,
                 io_timeout: float = 30.0):
        super().__init__(tcp_endpoint(host, port),
                         connect_timeout=connect_timeout,
                         io_timeout=io_timeout)
