"""The Communix client: periodic incremental signature downloads (§III-B).

The client runs as a background process, decoupled from the agent, and
updates the machine's local signature repository from the Communix server
once a day ("a high frequency would overload the Communix server"); updates
are incremental — only signatures the repository does not yet have are
requested.

:class:`SocketEndpoint` talks to a real :class:`ServerTransport` over TCP
or a UNIX-domain socket (:class:`TcpEndpoint` is its historical
``(host, port)`` spelling); :class:`InProcessEndpoint` invokes a server's
request-processing routines directly (the Fig. 2 configuration, also
convenient in tests).
"""

from repro.client.client import CommunixClient
from repro.client.endpoints import (
    InProcessEndpoint,
    ServerEndpoint,
    SocketEndpoint,
    TcpEndpoint,
)

__all__ = [
    "CommunixClient",
    "InProcessEndpoint",
    "ServerEndpoint",
    "SocketEndpoint",
    "TcpEndpoint",
]
