"""The Communix client daemon (paper §III-B).

"The Communix client, running on an arbitrary machine in the Internet,
periodically downloads the new deadlock signatures from the server into a
local repository.  The local repository is updated once a day [...].  The
updates are incremental, i.e., the client requests from the server only the
signatures that are not present in the local repository."

The daemon thread polls a :class:`Clock`, so tests drive it with a
:class:`ManualClock` (advance a day, observe one download) while production
uses the system clock with ``period=86400``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.client.endpoints import ServerEndpoint
from repro.core.repository import LocalRepository
from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.util.clock import Clock, SystemClock
from repro.util.errors import CommunixError, ValidationError
from repro.util.logging import get_logger

log = get_logger("client")

DEFAULT_PERIOD = 86_400.0  # once a day


#: Signatures requested per page; the server may clamp this further.  At
#: ~1.7 KB per signature (paper §IV-A) a page is a few MB — bounded frames
#: instead of one response holding the whole database.
DEFAULT_PAGE_SIZE = 2048


@dataclass
class DownloadReport:
    requested_from: int
    received: int = 0
    stored: int = 0
    malformed: int = 0
    pages: int = 0
    failed: bool = False
    error: str = ""


@dataclass
class CommunixClient:
    endpoint: ServerEndpoint
    repository: LocalRepository
    clock: Clock = field(default_factory=SystemClock)
    period: float = DEFAULT_PERIOD
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self):
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._next_due = self.clock.now()  # first poll runs immediately
        self.reports: list[DownloadReport] = []

    # ------------------------------------------------------------- polling
    def poll_once(self) -> DownloadReport:
        """One incremental download: ``GET(n+1)`` in the paper's terms.

        With a paginated endpoint the download streams page by page until
        the server reports no more; each page is stored before the next is
        requested, so an interrupted download resumes from the page
        boundary rather than from scratch.  Endpoints without ``get_page``
        (old servers, test doubles) fall back to one unpaginated GET.
        """
        start = self.repository.server_index
        report = DownloadReport(requested_from=start)
        get_page = getattr(self.endpoint, "get_page", None)
        cursor = start
        while True:
            try:
                if get_page is not None:
                    next_index, blobs, more = get_page(cursor, self.page_size)
                else:
                    next_index, blobs = self.endpoint.get(cursor)
                    more = False
            except CommunixError as exc:
                report.failed = True
                report.error = str(exc)
                log.warning("download failed: %s", exc)
                self.reports.append(report)
                return report
            report.pages += 1
            report.received += len(blobs)
            signatures: list[DeadlockSignature] = []
            for blob in blobs:
                try:
                    signatures.append(
                        DeadlockSignature.from_bytes(blob, origin=ORIGIN_REMOTE)
                    )
                except ValidationError:
                    # A hostile or buggy server cannot corrupt the repository.
                    report.malformed += 1
            report.stored += self.repository.append_from_server(
                signatures, next_server_index=next_index
            )
            if not more or next_index <= cursor:  # no forward progress
                break
            cursor = next_index
        self.reports.append(report)
        log.info(
            "downloaded %d signatures (stored %d, malformed %d) "
            "in %d page(s) from index %d",
            report.received, report.stored, report.malformed,
            report.pages, start,
        )
        return report

    # ---------------------------------------------------------- background
    def start(self) -> None:
        """Run the daily poll in a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="communix-client", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _loop(self) -> None:
        # Check the (possibly manual) clock at a short real cadence; fire
        # when its time passes the next due date.
        while not self._stop.wait(0.02):
            now = self.clock.now()
            if now >= self._next_due:
                try:
                    self.poll_once()
                finally:
                    self._next_due = now + self.period
