"""Run a Communix signature server from the command line.

Usage::

    python -m repro.server [--host 0.0.0.0] [--port 7199]
        [--quota-per-day 10] [--no-adjacency-check]

The server prints its bound address and serves until interrupted.  Clients
connect with :class:`repro.client.TcpEndpoint` or via
``python -m repro.client``.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Communix collaborative deadlock-immunity server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7199)
    parser.add_argument(
        "--quota-per-day", type=int, default=10,
        help="max signatures accepted per user per day (paper: 10)",
    )
    parser.add_argument(
        "--no-adjacency-check", action="store_true",
        help="disable the same-user adjacency rejection (testing only)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=60.0,
        help="close connections idle longer than this many seconds",
    )
    parser.add_argument(
        "--backlog", type=int, default=512,
        help="listen backlog (raise for large client ramps)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="request-processing worker threads",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    enable_console_logging()
    config = ServerConfig(
        max_signatures_per_user_per_day=args.quota_per_day,
        adjacency_check=not args.no_adjacency_check,
    )
    server = CommunixServer(config=config)
    transport = ServerTransport(
        server, host=args.host, port=args.port,
        accept_backlog=args.backlog, workers=args.workers,
        idle_timeout=args.idle_timeout,
    )
    host, port = transport.start()
    print(f"communix-server listening on {host}:{port} "
          f"(quota {config.max_signatures_per_user_per_day}/user/day)")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        transport.stop()
        stats = server.stats
        print(
            f"served {stats.adds_accepted} adds, {stats.gets_served} gets; "
            f"database holds {len(server.database)} signatures"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
