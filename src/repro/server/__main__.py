"""Run a Communix signature server from the command line.

Usage::

    python -m repro.server [--addr tcp://0.0.0.0:7199]
        [--addr unix:///var/run/communix.sock]
        [--quota-per-day 10] [--no-adjacency-check]
        [--data-dir /var/lib/communix] [--fsync always]
        [--checkpoint-every 4096] [--server-procs 4]
        [--admin-addr tcp://127.0.0.1:9199] [--metrics-log metrics.jsonl]
        [--slow-request-ms 50] [--no-metrics]

``--addr`` is repeatable: the server listens on every given endpoint
simultaneously (TCP and UNIX-domain clients share one database).  The
older ``--host``/``--port`` pair still works as a deprecated alias for a
single ``tcp://HOST:PORT`` endpoint.  With ``--data-dir`` the signature
database is durable: accepted signatures go to a segmented write-ahead
log (fsync policy per ``--fsync``), restart replays it, and ``SIGTERM``/
``SIGINT`` trigger a graceful drain — in-flight requests finish, the log
is flushed and sealed with a final checkpoint, UNIX socket files are
unlinked — instead of the process dying mid-write.  The server prints its
bound address(es) and serves until interrupted.  Clients connect with
:class:`repro.client.SocketEndpoint` or via ``python -m repro.client``.

``--server-procs N`` federates the tier over N worker processes sharing
every listen endpoint (see :mod:`repro.server.federation` and
``docs/architecture.md`` §10): worker 0 is the single writer of the
write-ahead log and group-commits the ADDs its sibling replicas forward
to it, so throughput scales with processes while durability semantics
stay exactly those of the single-process server.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.crypto.backend import get_backend
from repro.net import EndpointError, parse_endpoint, tcp_endpoint
from repro.obs import MetricsLogWriter
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.store import StoreError, parse_fsync_policy
from repro.util.errors import CryptoError
from repro.util.logging import enable_console_logging

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7199


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Communix collaborative deadlock-immunity server",
    )
    parser.add_argument(
        "--addr", action="append", metavar="URL", default=None,
        help="listen endpoint (tcp://HOST:PORT or unix:///PATH or "
             "unix://@NAME); repeat to serve several at once",
    )
    parser.add_argument("--host", default=None,
                        help="deprecated alias for --addr tcp://HOST:PORT")
    parser.add_argument("--port", type=int, default=None,
                        help="deprecated alias for --addr tcp://HOST:PORT")
    parser.add_argument(
        "--quota-per-day", type=int, default=10,
        help="max signatures accepted per user per day (paper: 10)",
    )
    parser.add_argument(
        "--no-adjacency-check", action="store_true",
        help="disable the same-user adjacency rejection (testing only)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=60.0,
        help="close connections idle longer than this many seconds",
    )
    parser.add_argument(
        "--backlog", type=int, default=512,
        help="listen backlog (raise for large client ramps)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="request-processing worker threads",
    )
    parser.add_argument(
        "--server-procs", type=int, default=1, metavar="N",
        help="federate the server over N worker processes sharing the "
             "listen endpoint(s) (SO_REUSEPORT for TCP; passed listening "
             "FDs for unix://): worker 0 owns the write-ahead log and "
             "group-commits forwarded ADDs, the others forward mutations "
             "to it and serve GETs from replicated in-memory copies; "
             "1 (default) keeps the single-process server",
    )
    # Internal federation plumbing (set by the coordinator, never by hand).
    parser.add_argument("--federation-worker", type=int, default=None,
                        metavar="IDX", help=argparse.SUPPRESS)
    parser.add_argument("--internal-addr", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--fd-channel", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help="persist the signature database to a segmented write-ahead "
             "log in DIR (replayed on restart); default: memory only",
    )
    parser.add_argument(
        "--fsync", metavar="POLICY", default="always",
        help="store fsync policy: 'always' (acked ADDs survive kill -9), "
             "'interval:<ms>' (background flusher), or 'never'",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=4096, metavar="N",
        help="write a checkpoint manifest every N accepted signatures "
             "(0: only at clean shutdown); restart replays just the "
             "records past the newest checkpoint",
    )
    parser.add_argument(
        "--crypto-backend", metavar="NAME", default=None,
        help="AES backend for user-ID tokens: 'pure' (FIPS-197 reference), "
             "'fast' (OpenSSL via the cryptography package), or 'auto' "
             "(default: REPRO_CRYPTO_BACKEND env var, then fast when "
             "available)",
    )
    parser.add_argument(
        "--token-cache-size", type=int, default=65_536, metavar="N",
        help="bound on the validator's decoded-token LRU cache",
    )
    parser.add_argument(
        "--guard", action="store_true",
        help="enable the streaming admission guard (repro.guard): "
             "count-min sketches over sender uid / signature id / source "
             "endpoint feed a flood detector that sheds or throttles "
             "flooding keys before crypto and quota work is spent",
    )
    parser.add_argument(
        "--guard-budget", type=int, default=64, metavar="N",
        help="guard master budget in operations per decay window-pair "
             "(per-dimension budgets derive from it; see repro.guard)",
    )
    parser.add_argument(
        "--guard-window", type=float, default=5.0, metavar="SECONDS",
        help="guard decay-window length; detection reacts within about "
             "one window and a retired flooder is forgotten after two",
    )
    parser.add_argument(
        "--guard-tarpit", type=float, default=0.025, metavar="SECONDS",
        help="delay before a loop-shed response is flushed; the shed "
             "connection is held busy meanwhile, so a closed-loop "
             "flooder is throttled to ~1/tarpit requests per second",
    )
    parser.add_argument(
        "--admin-addr", action="append", metavar="URL", default=None,
        help="serve a plaintext-HTTP observability plane on this endpoint "
             "(GET /metrics Prometheus text, /stats JSON, /traces slowest "
             "request traces, /healthz); repeatable",
    )
    parser.add_argument(
        "--metrics-log", metavar="PATH", default=None,
        help="append a JSONL metrics snapshot to PATH every "
             "--metrics-interval seconds (plus one final line at shutdown)",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=5.0, metavar="SECONDS",
        help="seconds between --metrics-log snapshots",
    )
    parser.add_argument(
        "--slow-request-ms", type=float, default=0.0, metavar="MS",
        help="log any request slower than MS milliseconds with a "
             "per-stage breakdown (0: disabled)",
    )
    parser.add_argument(
        "--trace-buffer", type=int, default=64, metavar="N",
        help="retain the N slowest completed request traces in memory "
             "for the admin plane's /traces endpoint",
    )
    parser.add_argument(
        "--no-metrics", action="store_true",
        help="disable the metrics registry entirely (no stage histograms, "
             "no admin-plane data; STATS keeps its v1 counters)",
    )
    return parser


def resolve_endpoints(args) -> list:
    """The endpoint list from ``--addr`` flags, or the legacy
    ``--host``/``--port`` pair as one TCP endpoint."""
    if args.addr:
        endpoints = [parse_endpoint(spec) for spec in args.addr]
        if args.host is not None or args.port is not None:
            print("warning: --host/--port are ignored when --addr is given",
                  file=sys.stderr)
        return endpoints
    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    return [tcp_endpoint(host, port)]


def _format_primary(endpoint) -> str:
    """The first printed address: legacy ``host:port`` spelling for TCP
    (scripts parse it), the URL form for everything else."""
    if endpoint.is_tcp:
        return f"{endpoint.host}:{endpoint.port}"
    return endpoint.url()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    enable_console_logging()
    if args.federation_worker is not None:
        # Spawned by the federation coordinator: stdout is its JSON
        # control channel, endpoints arrive via --addr/--fd-channel.
        from repro.server.federation import federation_worker_main

        return federation_worker_main(args)
    try:
        endpoints = resolve_endpoints(args)
    except EndpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        parse_fsync_policy(args.fsync)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        get_backend(args.crypto_backend)  # fail fast on a bad/unavailable pin
    except CryptoError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        admin_endpoints = [parse_endpoint(spec)
                           for spec in (args.admin_addr or [])]
    except EndpointError as exc:
        print(f"error: --admin-addr: {exc}", file=sys.stderr)
        return 2
    if args.server_procs > 1:
        from repro.server.federation import run_federation

        return run_federation(args, endpoints, admin_endpoints)
    if args.server_procs < 1:
        print("error: --server-procs must be positive", file=sys.stderr)
        return 2
    config = ServerConfig(
        max_signatures_per_user_per_day=args.quota_per_day,
        adjacency_check=not args.no_adjacency_check,
        data_dir=args.data_dir,
        fsync_policy=args.fsync,
        checkpoint_every=args.checkpoint_every,
        crypto_backend=args.crypto_backend,
        token_cache_size=args.token_cache_size,
        metrics_enabled=not args.no_metrics,
        slow_request_ms=args.slow_request_ms,
        guard_enabled=args.guard,
        guard_budget=args.guard_budget,
        guard_window_s=args.guard_window,
        guard_tarpit_s=args.guard_tarpit,
        trace_buffer_size=args.trace_buffer,
    )
    try:
        server = CommunixServer(config=config)
    except (OSError, StoreError) as exc:
        print(f"error: cannot open data dir {args.data_dir!r}: {exc}",
              file=sys.stderr)
        return 2
    if server.store is not None:
        recovery = server.store.recovery
        print(
            f"communix-server restored {len(server.database)} signatures "
            f"from {args.data_dir} "
            f"({server.store.replayed_past_checkpoint} replayed past the "
            f"checkpoint, {recovery.truncated_bytes} torn byte(s) repaired; "
            f"fsync {server.store.fsync_policy})"
        )
    transport = ServerTransport(
        server, endpoints=endpoints,
        accept_backlog=args.backlog, workers=args.workers,
        idle_timeout=args.idle_timeout,
        admin_endpoints=admin_endpoints,
    )
    try:
        transport.start()
    except EndpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    metrics_writer = None
    if args.metrics_log:
        metrics_writer = MetricsLogWriter(
            server.metrics, args.metrics_log, interval=args.metrics_interval
        )
        metrics_writer.start()
    bound = transport.bound_endpoints
    print(f"communix-server listening on {_format_primary(bound[0])} "
          f"(quota {config.max_signatures_per_user_per_day}/user/day, "
          f"crypto backend {server.authority.backend_name})")
    for endpoint in bound[1:]:
        print(f"communix-server also listening on {endpoint.url()}")
    for endpoint in transport.bound_admin_endpoints:
        print(f"communix-server admin plane on {endpoint.url()}")
    # SIGTERM/SIGINT request a *graceful* stop: the handler only sets the
    # event, and the main thread then runs the full drain — in-flight
    # requests finish, the store is flushed and sealed (final checkpoint),
    # listeners close and UNIX socket files are unlinked — so a signaled
    # server never dies mid-write.
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        transport.stop()  # graceful drain; flushes the store
        if metrics_writer is not None:
            # After the drain, so the final JSONL line covers every
            # request this process served.
            metrics_writer.stop()
        try:
            server.close()  # seal: final checkpoint manifest + closed log
        except OSError as exc:
            # The log itself was flushed by the drain; only the manifest
            # is stale.  Report it but still exit with the stats line.
            print(f"error: final checkpoint failed: {exc}", file=sys.stderr)
        stats = server.stats
        durable = ""
        if server.store is not None:
            durable = (f" ({server.store.record_count} durable, "
                       f"checkpointed at {server.store.checkpoint_count})")
        print(
            f"served {stats.adds_accepted} adds, {stats.gets_served} gets; "
            f"database holds {len(server.database)} signatures{durable}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
