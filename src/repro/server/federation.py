"""Federated server tier: N worker processes behind one listen endpoint.

A single server process is one Python interpreter: one GIL, one FD
budget, one fsync stream.  Federation forks ``--server-procs N`` worker
processes that *share the client-facing endpoint* and splits the roles
the way the store's single-writer invariants demand:

* **Endpoint sharing** — TCP endpoints are bound by every worker with
  ``SO_REUSEPORT`` (the kernel load-balances accepts across the
  processes); the coordinator holds each resolved port open with a
  bound-but-never-listening probe socket so ``--port 0`` stays stable
  across worker restarts.  UNIX endpoints cannot be re-bound, so the
  coordinator binds + listens once and passes the listening FD to every
  worker over an inherited socketpair (``SCM_RIGHTS``); all workers then
  ``accept`` from the same socket.
* **Single-writer log** — worker 0 is the *log owner*: the only process
  that opens ``--data-dir``.  Replica workers forward validated ADDs to
  the owner over an internal ``unix://`` endpoint and ack their client
  only after the owner's durability reply; GETs are served from each
  replica's in-memory database, fed by the owner's apply-stream (see
  :mod:`repro.server.replication`).  Under ``--fsync always`` the owner
  batches concurrent forwarded appends into one fsync (group commit, see
  :mod:`repro.store.wal`).
* **Coordinator** — this module's :func:`run_federation`: spawns the
  workers, barriers on their ``ready`` events (owner first, so replicas
  always find the internal endpoint up), prints the canonical
  ``communix-server listening on ...`` line once all are serving, fans
  SIGTERM/SIGINT out as a two-phase graceful drain (replicas first, so
  their in-flight forwards still find the owner; then the owner, which
  seals the store), detects crashed workers (stdout EOF) and keeps the
  survivors serving, and merges the per-worker stats and metrics
  registries into one summary/``--metrics-log`` line.  UNIX socket
  files are **coordinator-owned**: stale-socket recovery happens here at
  bind time and the files are unlinked here at shutdown — a worker
  (least of all a crashing one) never unlinks a path its siblings still
  serve.

Control protocol (line-delimited JSON on the worker's stdout, bare
commands on its stdin — the idiom of :mod:`repro.loadgen.federation`)::

    worker  → {"event": "ready", "index": 0, "pid": ..., ...}
    coord   → drain\\n
    worker  → {"event": "result", "stats": {...}, "metrics": {...}, ...}
"""

from __future__ import annotations

import json
import os
import select
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.net import (
    EndpointError,
    adopt_listener,
    cleanup_listener,
    parse_endpoint,
    recv_listener_fd,
    reserve_tcp_port,
    send_listener_fd,
)
from repro.net import listen as net_listen
from repro.obs import merge_registry_snapshots
from repro.util.logging import get_logger

log = get_logger("server.federation")

#: Coordinator -> worker stdin command starting the graceful drain.
_DRAIN = "drain"
#: How long the coordinator waits for a worker's ``ready`` (the owner may
#: be replaying a large log first).
_READY_TIMEOUT = 120.0
#: How long a drained worker gets to emit its ``result`` and exit.
_DRAIN_TIMEOUT = 30.0
#: PYTHONPATH root so workers import the same ``repro`` as the coordinator.
_SRC_ROOT = str(Path(__file__).resolve().parent.parent.parent)


def _emit(payload: dict) -> None:
    sys.stdout.write(json.dumps(payload, sort_keys=True) + "\n")
    sys.stdout.flush()


# --------------------------------------------------------------- worker side
def _worker_config(args):
    """The worker's ServerConfig from the CLI namespace (same mapping as
    the single-process path in ``repro.server.__main__``)."""
    from repro.server.server import ServerConfig

    return ServerConfig(
        max_signatures_per_user_per_day=args.quota_per_day,
        adjacency_check=not args.no_adjacency_check,
        data_dir=args.data_dir,
        fsync_policy=args.fsync,
        checkpoint_every=args.checkpoint_every,
        crypto_backend=args.crypto_backend,
        token_cache_size=args.token_cache_size,
        metrics_enabled=not args.no_metrics,
        slow_request_ms=args.slow_request_ms,
        guard_enabled=args.guard,
        guard_budget=args.guard_budget,
        guard_window_s=args.guard_window,
        guard_tarpit_s=args.guard_tarpit,
        trace_buffer_size=args.trace_buffer,
    )


def _recv_shared_listeners(channel_fd: int) -> list:
    """Adopt every listening FD the coordinator sends over the inherited
    socketpair; EOF (coordinator closed its end) terminates the batch."""
    pairs = []
    channel = socket.socket(fileno=channel_fd)
    try:
        while True:
            try:
                url, fd = recv_listener_fd(channel)
            except EndpointError:
                break
            endpoint = parse_endpoint(url)
            pairs.append((adopt_listener(fd, endpoint), endpoint))
    finally:
        channel.close()
    return pairs


def federation_worker_main(args) -> int:
    """``python -m repro.server --federation-worker IDX``: one worker.

    stdout is the JSON control channel (never the human banner); logs go
    to stderr.  Worker 0 opens the store and serves the internal
    replication endpoint; every other index runs the forwarding replica
    core.  SIGTERM/SIGINT, a ``drain`` line on stdin, and stdin EOF (the
    coordinator died) all trigger the same graceful drain.
    """
    from repro.server.replication import FederatedWorkerServer, ReplicationHub
    from repro.server.server import CommunixServer
    from repro.server.transport import ServerTransport

    index = args.federation_worker
    is_owner = index == 0
    config = _worker_config(args)
    if not is_owner:
        config.data_dir = None  # the log is the owner's alone

    endpoints = [parse_endpoint(spec) for spec in (args.addr or [])]
    listen_sockets = []
    if args.fd_channel is not None:
        listen_sockets = _recv_shared_listeners(args.fd_channel)
    if not endpoints and not listen_sockets:
        _emit({"event": "abort", "index": index,
               "reason": "worker has no endpoints to serve"})
        return 2

    restored = None
    hub = None
    try:
        if is_owner:
            server = CommunixServer(config=config)
            if server.store is not None:
                recovery = server.store.recovery
                restored = (
                    f"communix-server restored {len(server.database)} "
                    f"signatures from {args.data_dir} "
                    f"({server.store.replayed_past_checkpoint} replayed past "
                    f"the checkpoint, {recovery.truncated_bytes} torn byte(s) "
                    f"repaired; fsync {server.store.fsync_policy})"
                )
            hub = ReplicationHub(server, args.internal_addr)
            hub.start()
        else:
            server = FederatedWorkerServer(config, args.internal_addr)
            server.start_replication()
    except Exception as exc:  # noqa: BLE001 - must reach the coordinator
        log.exception("worker %d failed to start", index)
        _emit({"event": "abort", "index": index, "reason": str(exc)})
        return 2

    transport = ServerTransport(
        server, endpoints=endpoints,
        accept_backlog=args.backlog, workers=args.workers,
        idle_timeout=args.idle_timeout,
        # Every worker serves its own admin plane: per-worker metrics
        # (a replica's replication.lag, the owner's group-commit stages)
        # are only scrapeable from the process that records them.  The
        # coordinator gives replicas ephemeral-port planes and prints
        # every resolved URL.
        admin_endpoints=[parse_endpoint(spec)
                         for spec in (args.admin_addr or [])],
        listen_sockets=listen_sockets,
        reuse_port=True,
        cleanup_listeners=False,  # socket files are the coordinator's
    )
    try:
        transport.start()
    except EndpointError as exc:
        _emit({"event": "abort", "index": index, "reason": str(exc)})
        if hub is not None:
            hub.stop()
        server.close()
        return 2

    _emit({
        "event": "ready",
        "index": index,
        "pid": os.getpid(),
        "addrs": [ep.url() for ep in transport.bound_endpoints],
        "admin": [ep.url() for ep in transport.bound_admin_endpoints],
        "backend": server.authority.backend_name,
        "restored": restored,
    })

    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    while not stop.is_set():
        try:
            readable, _, _ = select.select([sys.stdin], [], [], 0.2)
        except OSError:  # pragma: no cover - stdin gone
            break
        if not readable:
            continue
        command = sys.stdin.readline()
        if not command or command.strip() == _DRAIN:
            break  # EOF (dead coordinator) drains too

    transport.stop()  # graceful drain; flushes the store on the owner
    if hub is not None:
        hub.stop()
    try:
        server.close()
    except OSError as exc:
        log.error("final checkpoint failed: %s", exc)
    stats = server.stats
    result = {
        "event": "result",
        "index": index,
        "pid": os.getpid(),
        "ok": True,
        "stats": {
            "adds_accepted": stats.adds_accepted,
            "adds_rejected": stats.adds_rejected,
            "gets_served": stats.gets_served,
            "signatures_served": stats.signatures_served,
        },
        "metrics": server.metrics.snapshot(),
        "db_size": len(server.database),
    }
    if is_owner and server.store is not None:
        result["durable"] = server.store.record_count
        result["checkpointed"] = server.store.checkpoint_count
    if hub is not None:
        result["forwarded_adds"] = hub.forwarded_adds
        result["forwarded_issues"] = hub.forwarded_issues
    if not is_owner:
        result["replica_applied"] = server.replica_feed.applied
    _emit(result)
    return 0


# ---------------------------------------------------------- coordinator side
class _Worker:
    """Coordinator-side handle for one server worker process."""

    def __init__(self, index: int, proc: subprocess.Popen):
        self.index = index
        self.proc = proc
        self.events: dict[str, dict] = {}
        self.eof = False
        self.crashed = False

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return not self.eof and self.proc.poll() is None


def _worker_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC_ROOT + (os.pathsep + existing if existing else "")
    return env


def _spawn_worker(index: int, args, tcp_endpoints, unix_listeners,
                  internal_addr: str) -> _Worker:
    command = [
        sys.executable, "-u", "-m", "repro.server",
        "--federation-worker", str(index),
        "--internal-addr", internal_addr,
        "--quota-per-day", str(args.quota_per_day),
        "--idle-timeout", str(args.idle_timeout),
        "--backlog", str(args.backlog),
        "--workers", str(args.workers),
        "--fsync", args.fsync,
        "--checkpoint-every", str(args.checkpoint_every),
        "--token-cache-size", str(args.token_cache_size),
        "--slow-request-ms", str(args.slow_request_ms),
        "--trace-buffer", str(args.trace_buffer),
    ]
    for endpoint in tcp_endpoints:
        command += ["--addr", endpoint.url()]
    if args.no_adjacency_check:
        command.append("--no-adjacency-check")
    if args.guard:
        # Every worker runs its own guard over the traffic it terminates
        # (per-worker sketches); the coordinator's merged metrics pool
        # them into the owner-merged view via merge_registry_snapshots.
        command += ["--guard", "--guard-budget", str(args.guard_budget),
                    "--guard-window", str(args.guard_window),
                    "--guard-tarpit", str(args.guard_tarpit)]
    if args.crypto_backend:
        command += ["--crypto-backend", args.crypto_backend]
    if args.no_metrics:
        command.append("--no-metrics")
    if index == 0:
        if args.data_dir:
            command += ["--data-dir", args.data_dir]
        for spec in args.admin_addr or []:
            command += ["--admin-addr", spec]
    elif args.admin_addr:
        # The user asked for an admin plane: replicas get their own on an
        # ephemeral port (the user's explicit addresses belong to the
        # owner; two processes cannot share one without SO_REUSEPORT
        # scrape ambiguity).  Resolved URLs surface in the ready event.
        command += ["--admin-addr", "tcp://127.0.0.1:0"]
    channel = None
    pass_fds = ()
    if unix_listeners:
        channel = socket.socketpair()
        command += ["--fd-channel", str(channel[1].fileno())]
        pass_fds = (channel[1].fileno(),)
    proc = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=None,  # worker logs/tracebacks surface on our stderr
        text=True,
        bufsize=1,
        env=_worker_env(),
        pass_fds=pass_fds,
    )
    if channel is not None:
        parent, child = channel
        child.close()
        for sock, endpoint in unix_listeners:
            send_listener_fd(parent, endpoint, sock.fileno())
        parent.close()  # EOF tells the worker the batch is complete
    return _Worker(index, proc)


def _pump_events(workers: list[_Worker], wanted: str, deadline: float) -> None:
    """Read control lines until every live worker produced ``wanted`` (or
    aborted/died) or the deadline passes."""
    by_stream = {w.proc.stdout: w for w in workers}

    def pending() -> list[_Worker]:
        return [w for w in workers
                if not w.eof and wanted not in w.events
                and "abort" not in w.events]

    while pending() and time.monotonic() < deadline:
        streams = [w.proc.stdout for w in pending()]
        ready, _, _ = select.select(
            streams, [], [], min(0.5, max(0.01, deadline - time.monotonic()))
        )
        for stream in ready:
            worker = by_stream[stream]
            line = stream.readline()
            if not line:
                worker.eof = True
                continue
            try:
                message = json.loads(line)
            except ValueError:
                continue  # stray non-protocol output
            worker.events[str(message.get("event"))] = message


def _send_command(worker: _Worker, command: str) -> None:
    try:
        worker.proc.stdin.write(command + "\n")
        worker.proc.stdin.flush()
    except (OSError, ValueError):
        pass  # already dead; its EOF is handled by the pump


def _reap(workers: list[_Worker], grace: float = _DRAIN_TIMEOUT) -> None:
    for worker in workers:
        proc = worker.proc
        try:
            if proc.stdin:
                proc.stdin.close()
        except OSError:
            pass
        try:
            proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            proc.kill()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
        try:
            if proc.stdout:
                proc.stdout.close()
        except OSError:
            pass


def _drain_group(group: list[_Worker]) -> None:
    """Two-phase-drain helper: tell every live worker in ``group`` to
    drain and collect its ``result``."""
    live = [w for w in group if w.alive()]
    for worker in live:
        _send_command(worker, _DRAIN)
    if live:
        _pump_events(live, "result", time.monotonic() + _DRAIN_TIMEOUT)


def _format_primary(endpoint) -> str:
    if endpoint.is_tcp:
        return f"{endpoint.host}:{endpoint.port}"
    return endpoint.url()


def _merged_metrics(results: list[dict]) -> dict:
    """One registry snapshot for the whole tier: counters/histograms sum;
    the replicated database gauges are taken from the owner alone (every
    replica holds a copy of the same database — summing would read as
    ``procs × size``)."""
    merged = merge_registry_snapshots(r.get("metrics") or {} for r in results)
    owner = next((r for r in results if r.get("index") == 0), None)
    if owner:
        owner_gauges = (owner.get("metrics") or {}).get("gauges", {})
        for name in ("db.size", "db.segments"):
            if name in owner_gauges:
                merged["gauges"][name] = owner_gauges[name]
    return merged


def run_federation(args, endpoints, admin_endpoints) -> int:
    """Coordinator main for ``--server-procs N`` (N >= 2).

    Returns 0 on a clean run (all workers drained and reported); 1 when
    any worker crashed or failed to report.  ``endpoints`` and
    ``admin_endpoints`` are the already-parsed CLI endpoint lists.
    """
    procs = args.server_procs
    tcp_probes = []       # bound-not-listening sockets holding the ports
    unix_listeners = []   # coordinator-owned listening sockets to FD-pass
    bound = []            # all endpoints, original order, ports resolved
    try:
        for endpoint in endpoints:
            if endpoint.is_tcp:
                probe, resolved = reserve_tcp_port(endpoint)
                tcp_probes.append(probe)
                bound.append(resolved)
            else:
                sock, resolved = net_listen(endpoint, backlog=args.backlog)
                unix_listeners.append((sock, resolved))
                bound.append(resolved)
    except (EndpointError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        for probe in tcp_probes:
            probe.close()
        for sock, endpoint in unix_listeners:
            sock.close()
            cleanup_listener(endpoint)
        return 2

    tcp_bound = [ep for ep in bound if ep.is_tcp]
    internal_addr = f"unix://@communix-{os.getpid()}-repl"
    workers: list[_Worker] = []
    failures: list[str] = []
    rc = 0
    try:
        # The owner first — replicas dial the internal endpoint as soon as
        # they start, so it must be up before any replica is spawned.
        owner = _spawn_worker(0, args, tcp_bound, unix_listeners,
                              internal_addr)
        workers.append(owner)
        _pump_events([owner], "ready", time.monotonic() + _READY_TIMEOUT)
        if "ready" not in owner.events:
            reason = owner.events.get("abort", {}).get(
                "reason", "log owner produced no ready event")
            print(f"error: worker 0 (log owner): {reason}", file=sys.stderr)
            owner.proc.kill()
            return 1
        for index in range(1, procs):
            workers.append(_spawn_worker(index, args, tcp_bound,
                                         unix_listeners, internal_addr))
        replicas = workers[1:]
        _pump_events(replicas, "ready", time.monotonic() + _READY_TIMEOUT)
        not_ready = [w for w in replicas if "ready" not in w.events]
        if not_ready:
            for worker in not_ready:
                reason = worker.events.get("abort", {}).get(
                    "reason", "no ready event before timeout")
                print(f"error: worker {worker.index}: {reason}",
                      file=sys.stderr)
            for worker in workers:
                worker.proc.kill()
            return 1

        ready0 = owner.events["ready"]
        print(f"communix-federation: {procs} workers "
              f"(log owner pid {owner.pid}, replicas "
              f"{', '.join(str(w.pid) for w in replicas) or 'none'})")
        if ready0.get("restored"):
            print(ready0["restored"])
        print(f"communix-server listening on {_format_primary(bound[0])} "
              f"(quota {args.quota_per_day}/user/day, "
              f"crypto backend {ready0.get('backend', '?')}, "
              f"{procs} worker processes)")
        for endpoint in bound[1:]:
            print(f"communix-server also listening on {endpoint.url()}")
        for worker in workers:
            ready = worker.events.get("ready", {})
            role = "owner" if worker.index == 0 else f"replica {worker.index}"
            for url in ready.get("admin", []):
                print(f"communix-server admin plane ({role}) on {url}")

        # ----------------------------------------------------- serve loop
        stop = threading.Event()
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        by_stream = {w.proc.stdout: w for w in workers}
        while not stop.is_set():
            live = [w for w in workers if not w.eof]
            if not live:
                print("error: every worker exited; shutting down",
                      file=sys.stderr)
                rc = 1
                break
            try:
                ready, _, _ = select.select(
                    [w.proc.stdout for w in live], [], [], 0.2)
            except OSError:  # pragma: no cover - racing a closed pipe
                continue
            for stream in ready:
                worker = by_stream[stream]
                line = stream.readline()
                if line:
                    try:
                        message = json.loads(line)
                    except ValueError:
                        continue
                    worker.events[str(message.get("event"))] = message
                    continue
                worker.eof = True
                if stop.is_set() or "result" in worker.events:
                    continue
                worker.crashed = True
                rc = 1
                role = "log owner" if worker.index == 0 else "replica"
                failure = (f"worker {worker.index} ({role}, pid {worker.pid}) "
                           f"exited unexpectedly "
                           f"(rc={worker.proc.poll()})")
                failures.append(failure)
                print(f"communix-federation: {failure}; "
                      f"{sum(1 for w in workers if not w.eof)} worker(s) "
                      f"still serving", file=sys.stderr)

        # ------------------------------------------- two-phase drain
        # Replicas first: their in-flight ADDs forward to the owner, so
        # the owner's hub must outlive them; the owner drains last and
        # seals the store.
        _drain_group([w for w in workers if w.index != 0])
        _drain_group([w for w in workers if w.index == 0])
    finally:
        _reap(workers)
        for probe in tcp_probes:
            try:
                probe.close()
            except OSError:  # pragma: no cover
                pass
        for sock, endpoint in unix_listeners:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            cleanup_listener(endpoint)  # coordinator-owned unlink

    results = [w.events["result"] for w in workers if "result" in w.events]
    for worker in workers:
        if "result" not in worker.events and not worker.crashed:
            failures.append(f"worker {worker.index} reported no result")
            rc = 1
    if args.metrics_log and results and not args.no_metrics:
        record = {"ts": time.time(), **_merged_metrics(results)}
        try:
            with open(args.metrics_log, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        except OSError as exc:
            print(f"error: cannot write --metrics-log: {exc}",
                  file=sys.stderr)

    adds = sum(r["stats"]["adds_accepted"] for r in results)
    gets = sum(r["stats"]["gets_served"] for r in results)
    owner_result = next((r for r in results if r.get("index") == 0), None)
    db_size = owner_result["db_size"] if owner_result else 0
    durable = ""
    if owner_result and "durable" in owner_result:
        durable = (f" ({owner_result['durable']} durable, "
                   f"checkpointed at {owner_result['checkpointed']})")
    print(f"served {adds} adds, {gets} gets; "
          f"database holds {db_size} signatures{durable}")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return rc
