"""Wire protocol for the Communix server (length-prefixed frames over TCP).

Every message is one *frame*: a 4-byte big-endian length followed by that
many payload bytes.  Requests are canonical-JSON frames::

    {"op": "ADD", "token": "<hex>", "signature": "<base64 blob>"}
    {"op": "GET", "from_index": k}                     # unpaginated (legacy)
    {"op": "GET", "from_index": k, "max_count": m}     # paginated
    {"op": "ISSUE_ID"}
    {"op": "STATS"}                                    # v1 (legacy shape)
    {"op": "STATS", "version": 2}                      # + histograms/metrics

``ADD``/``ISSUE_ID``/``STATS`` responses are JSON frames.  ``GET`` responses
use a binary layout so the client can store and count signatures without
JSON-decoding each one (the agent parses them later, once, at startup).
An unpaginated request is answered in the legacy layout, so pre-pagination
clients keep working unchanged::

    b"SIGS" | next_index:u32 | count:u32 | (len:u32 | blob)*count

A paginated request (``max_count`` present) is answered with a ``more``
flag, so a cold client can stream the database in bounded frames and loop
until drained::

    b"SIG2" | next_index:u32 | count:u32 | more:u8 | (len:u32 | blob)*count

Truncated or oversized frames raise :class:`ProtocolError`.
"""

from __future__ import annotations

import base64
import socket
import struct
from typing import Any, Iterable

from repro.util.encoding import canonical_json, from_canonical_json
from repro.util.errors import ProtocolError

MAX_FRAME = 256 * 1024 * 1024  # GET(0) of a large database can be big
_GET_MAGIC = b"SIGS"
_GET_PAGE_MAGIC = b"SIG2"


# ----------------------------------------------------------------- framing
def write_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes | None:
    """Read one frame; ``None`` on clean EOF before any bytes."""
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            if header:
                raise ProtocolError("connection closed mid-header")
            return None
        header += chunk
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME:
        raise ProtocolError(f"declared frame length {length} exceeds maximum")
    return _recv_exact(sock, length)


# ---------------------------------------------------------------- requests
def encode_request(obj: dict[str, Any]) -> bytes:
    return canonical_json(obj)


def decode_request(payload: bytes) -> dict[str, Any]:
    try:
        obj = from_canonical_json(payload)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict) or "op" not in obj:
        raise ProtocolError("request must be an object with an 'op' field")
    return obj


def encode_add_request(blob: bytes, token: str) -> bytes:
    return encode_request(
        {
            "op": "ADD",
            "token": token,
            "signature": base64.b64encode(blob).decode("ascii"),
        }
    )


def decode_add_signature(request: dict[str, Any]) -> bytes:
    try:
        return base64.b64decode(request["signature"], validate=True)
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed ADD signature field: {exc}") from exc


def _checked_int(value: Any, field: str, *, minimum: int = 0) -> int:
    # bool is an int subclass; a client sending ``true`` is malformed.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"GET {field} must be an integer")
    if value < minimum:
        raise ProtocolError(f"GET {field} must be non-negative")
    return value


def encode_stats_request(version: int = 1) -> bytes:
    """A STATS request frame; ``version`` is omitted for v1 so the frame
    is byte-identical to what pre-versioning clients always sent (old
    servers ignore unknown fields either way)."""
    if version <= 1:
        return encode_request({"op": "STATS"})
    return encode_request({"op": "STATS", "version": version})


def decode_stats_version(request: dict[str, Any]) -> int:
    """The schema version a STATS request asks for (absent -> 1).

    A non-integer version is malformed; an unknown *future* version is
    clamped to the newest schema this server speaks (the response carries
    its actual ``version`` field, so the client can tell).
    """
    raw = request.get("version", 1)
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 1:
        raise ProtocolError("STATS version must be a positive integer")
    return raw


def decode_get_args(request: dict[str, Any]) -> tuple[int, int | None]:
    """Validated ``(from_index, max_count)`` of a GET request.

    Anything that is not a non-negative JSON integer — floats, strings,
    booleans, negatives — raises :class:`ProtocolError`, so a malformed
    request becomes a clean protocol-level error frame instead of an
    exception inside the server's worker pool.  ``max_count`` is ``None``
    when absent (the legacy unpaginated form).
    """
    from_index = _checked_int(request.get("from_index", 0), "from_index")
    raw_max = request.get("max_count")
    if raw_max is None:
        return from_index, None
    return from_index, _checked_int(raw_max, "max_count")


# ------------------------------------------------------------ GET response
def pack_signature_record(blob: bytes) -> bytes:
    """One ``len:u32 | blob`` record of a GET response body.

    The database precomposes these per segment, so the transport can splice
    cached byte runs straight into a response instead of re-packing every
    blob on every request.
    """
    return struct.pack(">I", len(blob)) + blob


def encode_get_response(next_index: int, blobs: list[bytes]) -> bytes:
    parts = [_GET_MAGIC, struct.pack(">II", next_index, len(blobs))]
    for blob in blobs:
        parts.append(struct.pack(">I", len(blob)))
        parts.append(blob)
    return b"".join(parts)


def get_response_parts(next_index: int, count: int,
                       chunks: Iterable[bytes]) -> list[bytes]:
    """Legacy-layout GET response as a parts list (header + precomposed
    record chunks).  The transport writes parts with vectored I/O, so a
    cache-hit GET never copies the payload into one buffer."""
    return [_GET_MAGIC, struct.pack(">II", next_index, count), *chunks]


def get_page_response_parts(next_index: int, count: int,
                            chunks: Iterable[bytes], more: bool) -> list[bytes]:
    """Paginated GET response (``SIG2``) as a parts list."""
    return [_GET_PAGE_MAGIC,
            struct.pack(">IIB", next_index, count, 1 if more else 0),
            *chunks]


def encode_get_response_chunks(next_index: int, count: int,
                               chunks: Iterable[bytes]) -> bytes:
    """Legacy-layout GET response from precomposed record chunks."""
    return b"".join(get_response_parts(next_index, count, chunks))


def encode_get_page_response(next_index: int, count: int,
                             chunks: Iterable[bytes], more: bool) -> bytes:
    """Paginated GET response (``SIG2``) from precomposed record chunks."""
    return b"".join(get_page_response_parts(next_index, count, chunks, more))


def _decode_records(payload: bytes, offset: int, count: int) -> list[bytes]:
    blobs: list[bytes] = []
    for _ in range(count):
        if offset + 4 > len(payload):
            raise ProtocolError("truncated GET response (length field)")
        (length,) = struct.unpack(">I", payload[offset:offset + 4])
        offset += 4
        if offset + length > len(payload):
            raise ProtocolError("truncated GET response (blob body)")
        blobs.append(payload[offset:offset + length])
        offset += length
    if offset != len(payload):
        raise ProtocolError("trailing bytes in GET response")
    return blobs


def decode_get_response(payload: bytes) -> tuple[int, list[bytes]]:
    if len(payload) < 12 or payload[:4] != _GET_MAGIC:
        raise ProtocolError("malformed GET response header")
    next_index, count = struct.unpack(">II", payload[4:12])
    return next_index, _decode_records(payload, 12, count)


def decode_get_page(payload: bytes) -> tuple[int, list[bytes], bool]:
    """(next_index, blobs, more) from either GET response layout.

    Accepts the paginated ``SIG2`` layout and the legacy ``SIGS`` layout
    (``more`` is then False: an unpaginated response is always complete).
    """
    if len(payload) >= 13 and payload[:4] == _GET_PAGE_MAGIC:
        next_index, count, more = struct.unpack(">IIB", payload[4:13])
        return next_index, _decode_records(payload, 13, count), bool(more)
    next_index, blobs = decode_get_response(payload)
    return next_index, blobs, False


def count_get_page(payload: bytes) -> tuple[int, int, bool]:
    """(next_index, count, more) without materializing the blobs — what a
    load-generation client uses to follow a paginated drain cheaply."""
    if len(payload) >= 13 and payload[:4] == _GET_PAGE_MAGIC:
        next_index, count, more = struct.unpack(">IIB", payload[4:13])
        return next_index, count, bool(more)
    next_index, count = count_get_response(payload)
    return next_index, count, False


def count_get_response(payload: bytes) -> tuple[int, int]:
    """(next_index, count) without materializing the blobs — what the
    Communix client uses to account for a download cheaply."""
    if len(payload) >= 13 and payload[:4] == _GET_PAGE_MAGIC:
        next_index, count = struct.unpack(">II", payload[4:12])
        return next_index, count
    if len(payload) < 12 or payload[:4] != _GET_MAGIC:
        raise ProtocolError("malformed GET response header")
    next_index, count = struct.unpack(">II", payload[4:12])
    return next_index, count
