"""Per-user daily signature quota (paper §III-C1).

"The server processes only up to 10 signatures per day from one user;
beyond this threshold, the signatures from that user are ignored."  With the
encrypted-ID requirement this bounds a flood: 100 attackers with 5 IDs each
can force at most 5,000 signatures per day into the pipeline (§IV-B).
"""

from __future__ import annotations

import threading

from repro.util.clock import Clock

SECONDS_PER_DAY = 86_400.0


class DailyQuota:
    def __init__(self, clock: Clock, limit_per_day: int = 10):
        self._clock = clock
        self._limit = limit_per_day
        self._lock = threading.Lock()
        self._counts: dict[tuple[int, int], int] = {}  # (uid, day) -> count

    def _day(self) -> int:
        return int(self._clock.now() // SECONDS_PER_DAY)

    def try_consume(self, uid: int) -> bool:
        """Record one signature from ``uid``; False if today's quota is spent."""
        key = (uid, self._day())
        with self._lock:
            used = self._counts.get(key, 0)
            if used >= self._limit:
                return False
            self._counts[key] = used + 1
            # Opportunistically drop stale days to bound memory.
            if len(self._counts) > 100_000:
                today = key[1]
                self._counts = {
                    k: v for k, v in self._counts.items() if k[1] >= today
                }
            return True

    def used_today(self, uid: int) -> int:
        with self._lock:
            return self._counts.get((uid, self._day()), 0)

    @property
    def limit(self) -> int:
        return self._limit
