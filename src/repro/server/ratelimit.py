"""Per-user daily signature quota (paper §III-C1).

"The server processes only up to 10 signatures per day from one user;
beyond this threshold, the signatures from that user are ignored."  With the
encrypted-ID requirement this bounds a flood: 100 attackers with 5 IDs each
can force at most 5,000 signatures per day into the pipeline (§IV-B).

Counts are bucketed by day (``day -> uid -> count``), so expiring history
is dropping whole day buckets — an O(stale days) dict pop the first time a
new day is seen, never a rebuild of every (uid, day) entry on the hot path.
"""

from __future__ import annotations

import threading

from repro.util.clock import Clock

SECONDS_PER_DAY = 86_400.0


class DailyQuota:
    def __init__(self, clock: Clock, limit_per_day: int = 10):
        self._clock = clock
        self._limit = limit_per_day
        self._lock = threading.Lock()
        self._days: dict[int, dict[int, int]] = {}  # day -> uid -> count

    def _day(self) -> int:
        return int(self._clock.now() // SECONDS_PER_DAY)

    def _bucket(self, day: int) -> dict[int, int]:
        """Today's bucket, creating it and dropping stale days (past days
        can never be consulted again — ``_day`` is monotonic in practice)."""
        bucket = self._days.get(day)
        if bucket is None:
            bucket = self._days[day] = {}
            for stale in [d for d in self._days if d < day]:
                del self._days[stale]
        return bucket

    def try_consume(self, uid: int) -> bool:
        """Record one signature from ``uid``; False if today's quota is spent."""
        day = self._day()
        with self._lock:
            bucket = self._bucket(day)
            used = bucket.get(uid, 0)
            if used >= self._limit:
                return False
            bucket[uid] = used + 1
            return True

    def refund(self, uid: int) -> None:
        """Give back one consumed slot (the signature was never stored —
        e.g. the durable store rejected the write after validation)."""
        day = self._day()
        with self._lock:
            bucket = self._days.get(day)
            if bucket is None:
                return  # the day rolled over; nothing to give back
            used = bucket.get(uid, 0)
            if used > 1:
                bucket[uid] = used - 1
            elif used == 1:
                del bucket[uid]

    def used_today(self, uid: int) -> int:
        with self._lock:
            return self._days.get(self._day(), {}).get(uid, 0)

    @property
    def tracked_days(self) -> int:
        """How many day buckets are held in memory (stale days drop)."""
        with self._lock:
            return len(self._days)

    @property
    def limit(self) -> int:
        return self._limit
