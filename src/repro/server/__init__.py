"""The Communix server: centralized signature distribution (paper §III-B/C2).

The server collects deadlock signatures from all machines and serves them
back incrementally.  It processes two request types — ``ADD(sig)`` and
``GET(k)`` ("send me the signatures from the database starting from index
k") — and performs server-side validation: encrypted sender IDs, a
per-user-per-day quota, and the same-user adjacency check.

:class:`CommunixServer` is the request-processing core, directly invokable
(how Fig. 2 benchmarks it); :class:`ServerTransport` exposes it over TCP
with a length-prefixed protocol (how Fig. 3 benchmarks it).
"""

from repro.server.database import SignatureDatabase
from repro.server.protocol import (
    read_frame,
    write_frame,
    encode_get_response,
    decode_get_response,
)
from repro.server.ratelimit import DailyQuota
from repro.server.server import AddOutcome, CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.server.validation import ServerSideValidator

__all__ = [
    "SignatureDatabase",
    "read_frame",
    "write_frame",
    "encode_get_response",
    "decode_get_response",
    "DailyQuota",
    "AddOutcome",
    "CommunixServer",
    "ServerConfig",
    "ServerTransport",
    "ServerSideValidator",
]
