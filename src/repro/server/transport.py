"""Event-driven transport for the Communix server (TCP and UNIX).

One ``selectors``-based event-loop thread owns every socket: it accepts,
reads, frames, and writes without ever blocking, so the server sustains
thousands of simultaneous persistent connections without spawning one
thread per connection (the paper's Fig. 2/Fig. 3 regime).  Request
*processing* — token decryption, validation, database access — runs on a
small worker pool so a slow ADD never stalls the loop; completed responses
are handed back to the loop over a self-pipe.

Per-connection guarantees:

* requests on one connection are answered in order (one in flight at a
  time; further pipelined frames queue on the connection);
* a connection idle longer than ``idle_timeout`` is closed;
* writes are buffered with a high/low watermark — a connection that cannot
  drain its responses stops being read until it catches up.

``stop()`` drains gracefully: in-flight requests finish, their responses
are flushed (bounded by ``drain_timeout``), the server's signature store
(when configured) is fsynced so every acked ADD is durable, then every
registered connection, the listeners, the wakeup pipe, and the selector
are closed — no leaked file descriptors, and UNIX socket files are
unlinked.

The syscall layer is batched (see ``benchmarks/bench_hotpath.py``):

* reads go through ``recv_into`` on a :class:`~repro.net.BufferPool`
  buffer — zero allocation per read event — and complete frames are
  parsed straight out of the pooled buffer, touching ``conn.inbuf`` only
  for the partial-frame remainder;
* responses completing in the same loop iteration are coalesced: each
  writable connection gets **one** vectored flush per iteration instead
  of one per completed request;
* workers post at most one wakeup byte per loop iteration (an armed
  flag), instead of one ``send`` per completion.

The transport is also the home of the server's observability plane (see
:mod:`repro.obs` and ``docs/architecture.md`` §9): when metrics are on it
stamps every request through per-stage histograms (queue wait, handler,
response flush — validate/crypto/db/WAL stages are stamped deeper in the
stack), probes its own loop health (select wait vs. work time per
iteration, worker queue depth, backpressure pauses, buffer-pool
occupancy), logs any request slower than ``--slow-request-ms`` with a
stage breakdown, and serves a plaintext-HTTP admin plane (``GET
/metrics`` in Prometheus text format, ``/stats`` as STATS-v2 JSON,
``/healthz``) on dedicated ``admin_endpoints`` from this same event loop.

Addressing goes through :mod:`repro.net`: the transport listens on one or
more endpoints (``tcp://host:port`` and/or ``unix:///path``)
simultaneously, so TCP clients and local UNIX-socket clients share one
server, one database, one event loop.  When the process runs out of file
descriptors (the Fig. 2 sweep drives it to the container's 20k-FD hard
cap), ``accept`` backs off briefly instead of spinning — pending
connections ride the listen backlog until capacity frees.
"""

from __future__ import annotations

import collections
import errno
import os
import selectors
import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor

try:
    import resource
except ImportError:  # pragma: no cover - non-Unix
    resource = None

from time import perf_counter

from repro.net import (
    BufferPool,
    Endpoint,
    cleanup_listener,
    parse_endpoint,
    tcp_endpoint,
)
from repro.net import listen as net_listen

from repro.obs import (
    STAGE_FLUSH,
    STAGE_HANDLER,
    STAGE_QUEUE_WAIT,
    RequestTrace,
    render_prometheus,
)
from repro.server.protocol import (
    MAX_FRAME,
    decode_add_signature,
    decode_get_args,
    decode_request,
    decode_stats_version,
    get_page_response_parts,
    get_response_parts,
)
from repro.server.server import CommunixServer
from repro.util.encoding import canonical_json
from repro.util.errors import ProtocolError
from repro.util.logging import get_logger

log = get_logger("server.transport")

_RECV_CHUNK = 256 * 1024
_SEND_CHUNK = 1024 * 1024
#: Stop reading a connection whose unsent responses exceed this...
_HIGH_WATERMARK = 8 * 1024 * 1024
#: ...and resume once they drain below this.
_LOW_WATERMARK = 1 * 1024 * 1024
#: Stop reading a connection with this many parsed-but-unserved requests
#: queued (one is in flight at a time); the thread-per-connection model
#: had this flow control for free — one frame read per frame served.
_MAX_PENDING = 32

_LISTENER = "listener"
_WAKEUP = "wakeup"
#: Largest HTTP request head the admin plane will buffer before dropping
#: the connection (scrapers send a one-line GET; anything bigger is abuse).
_ADMIN_MAX_REQUEST = 8 * 1024
#: How long accept stays paused after EMFILE/ENFILE before retrying.
_ACCEPT_COOLDOWN = 0.2
_FD_EXHAUSTED = {errno.EMFILE, errno.ENFILE}
#: Event-loop health tick: the loop schedules a timer every tick and
#: records how late it actually fires (``loop.timer_drift``) — scheduled
#: vs. actual drift is the classic event-loop stall detector.
_HEALTH_TICK_S = 0.25
#: A tick later than this counts as a stall (``loop.stalls``).
_STALL_THRESHOLD_S = 0.1


_HTTP_STATUS = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                500: "Internal Server Error"}

#: Precomposed shed response (frame header + body): a flooding endpoint's
#: frames are answered with this straight from the event loop — no JSON
#: parse, no worker dispatch, no crypto.
_SHED_BODY = canonical_json(
    {"ok": False, "verdict": "shed",
     "error": "admission guard: source endpoint is flooding"}
)
_SHED_PARTS = (struct.pack(">I", len(_SHED_BODY)), _SHED_BODY)


def _http_response(status: int, body: bytes, content_type: str) -> bytes:
    """A complete HTTP/1.0 response (the admin plane closes after each
    response, so no keep-alive bookkeeping is needed)."""
    head = (
        f"HTTP/1.0 {status} {_HTTP_STATUS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class _OutputQueue:
    """Pending response bytes as a queue of buffer views.

    Responses are enqueued as *parts* (frame header, response header,
    cached segment chunks) and written with vectored I/O — a cache-hit GET
    of a large database is never copied into one contiguous buffer.
    """

    __slots__ = ("parts", "size", "pushed", "written", "marks")

    #: sendmsg is capped at IOV_MAX buffers per call; stay well under it.
    MAX_VECTORS = 64

    def __init__(self) -> None:
        self.parts: collections.deque[memoryview] = collections.deque()
        self.size = 0
        #: Monotonic byte counters for flush-latency marks: ``pushed``
        #: counts every byte ever enqueued, ``written`` every byte ever
        #: sent; a mark placed at ``pushed`` completes once ``written``
        #: catches up to it.
        self.pushed = 0
        self.written = 0
        self.marks: collections.deque[
            tuple[int, float, str | None]
        ] = collections.deque()

    def push(self, buffers) -> None:
        for buffer in buffers:
            if buffer:
                self.parts.append(memoryview(buffer))
                self.size += len(buffer)
                self.pushed += len(buffer)

    def mark(self, timestamp: float, exemplar: str | None = None) -> None:
        """Mark the current enqueue position (a response boundary) so the
        flush stage can measure enqueue -> last-byte-written.  ``exemplar``
        is the request's trace id, carried through so the flush histogram
        can attribute its buckets."""
        self.marks.append((self.pushed, timestamp, exemplar))

    def take_flushed(self) -> list[tuple[float, str | None]]:
        """Pop the ``(start timestamp, exemplar)`` of every mark the
        writes so far have fully covered."""
        done = []
        marks = self.marks
        written = self.written
        while marks and marks[0][0] <= written:
            _, timestamp, exemplar = marks.popleft()
            done.append((timestamp, exemplar))
        return done

    def head(self) -> list[memoryview]:
        parts = self.parts
        return [parts[i] for i in range(min(len(parts), self.MAX_VECTORS))]

    def advance(self, n: int) -> None:
        self.size -= n
        self.written += n
        parts = self.parts
        while n:
            head = parts[0]
            if n >= len(head):
                n -= len(head)
                parts.popleft()
            else:
                parts[0] = head[n:]
                n = 0

    def clear(self) -> None:
        self.parts.clear()
        self.size = 0
        self.marks.clear()


class _Connection:
    """Loop-thread-owned state for one client socket.

    Only the event loop mutates a connection; workers see just the payload
    bytes and post results back through the completion queue.
    """

    __slots__ = ("sock", "fd", "peer", "endpoint_key", "inbuf", "out",
                 "pending", "busy", "paused", "events", "last_activity",
                 "admin", "close_after_flush")

    def __init__(self, sock: socket.socket, peer, now: float,
                 admin: bool = False, endpoint_key: str | None = None):
        self.sock = sock
        self.fd = sock.fileno()
        self.peer = peer
        #: Guard key for the remote socket endpoint (None when the guard
        #: is off): ``host:port`` for TCP, a per-connection id for UNIX
        #: peers (which have no address to speak of).
        self.endpoint_key = endpoint_key
        self.inbuf = bytearray()
        self.out = _OutputQueue()
        #: Parsed request payloads awaiting dispatch, each with the
        #: perf_counter() of the loop iteration that parsed it (0.0 when
        #: metrics are off) — the queue-wait stage's start mark.
        self.pending: collections.deque[tuple[bytes, float]] = (
            collections.deque()
        )
        self.busy = False  # one request in flight on the worker pool
        self.paused = False  # read interest dropped (backpressure)
        self.events = selectors.EVENT_READ
        self.last_activity = now
        self.admin = admin  # HTTP metrics plane, not the framed protocol
        self.close_after_flush = False  # admin responses close when drained


class ServerTransport:
    def __init__(self, server: CommunixServer, host: str = "127.0.0.1",
                 port: int = 0, accept_backlog: int = 512,
                 workers: int = 8, idle_timeout: float = 60.0,
                 drain_timeout: float = 2.0, endpoints=None,
                 admin_endpoints=None, slow_request_ms: float | None = None,
                 listen_sockets=None, reuse_port: bool = False,
                 cleanup_listeners: bool = True):
        """``endpoints`` is a list of endpoint URLs / :class:`Endpoint`
        objects to listen on simultaneously; when omitted, the legacy
        ``host``/``port`` pair becomes a single TCP endpoint.
        ``admin_endpoints`` are served as a plaintext-HTTP observability
        plane (``GET /metrics`` Prometheus text, ``/stats`` JSON,
        ``/healthz``) from the same event loop.  ``slow_request_ms``
        overrides ``server.config.slow_request_ms``.

        The federated tier's knobs: ``listen_sockets`` is a list of
        ``(socket, Endpoint)`` pairs *already bound and listening*
        (listening FDs the coordinator passed over ``SCM_RIGHTS``), served
        alongside anything in ``endpoints``.  ``reuse_port`` binds TCP
        endpoints with ``SO_REUSEPORT`` so sibling worker processes can
        share them.  ``cleanup_listeners=False`` leaves UNIX socket files
        alone at shutdown — they belong to the coordinator, and a worker
        (least of all a crashing one) must never unlink a path its
        siblings still serve."""
        self._server = server
        if endpoints:
            self._endpoints = [parse_endpoint(ep) for ep in endpoints]
        elif listen_sockets:
            self._endpoints = []
        else:
            self._endpoints = [tcp_endpoint(host, port)]
        self._listen_sockets = list(listen_sockets or [])
        self._reuse_port = reuse_port
        self._cleanup_listeners = cleanup_listeners
        self._admin_endpoints = [parse_endpoint(ep)
                                 for ep in (admin_endpoints or [])]
        if slow_request_ms is None:
            slow_request_ms = getattr(server.config, "slow_request_ms", 0.0)
        self._slow_threshold = max(0.0, slow_request_ms) / 1000.0
        self._backlog = accept_backlog
        self._workers = max(1, workers)
        self._idle_timeout = idle_timeout
        self._drain_timeout = drain_timeout
        self._listeners: dict[int, tuple[socket.socket, Endpoint]] = {}
        self._admin_fds: set[int] = set()
        self._bound: list[Endpoint] = []
        self._bound_admin: list[Endpoint] = []
        self._selector: selectors.BaseSelector | None = None
        self._loop_thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._wakeup_recv: socket.socket | None = None
        self._wakeup_send: socket.socket | None = None
        self._stop = threading.Event()
        self._conns: dict[int, _Connection] = {}
        self._completions: collections.deque[
            tuple[_Connection, list[bytes], str | None]
        ] = collections.deque()
        self._last_sweep = 0.0
        self._accept_paused_until = 0.0
        #: recv_into targets; the loop thread borrows per read event, so
        #: the pool's steady state is a single buffer.
        self._recv_pool = BufferPool(_RECV_CHUNK)
        #: Wakeup batching: workers send one byte per *loop iteration*,
        #: not per completion.  True = a wakeup byte is already in flight.
        self._wakeup_armed = False
        # Observability: instruments pre-resolved off the server's
        # registry; _obs_on gates every perf_counter() read so the
        # --no-metrics server pays nothing.
        metrics = server.metrics
        self._metrics = metrics
        self._obs_on = metrics.enabled
        self._slow_log_on = self._slow_threshold > 0.0
        self._h_queue_wait = metrics.histogram(f"stage.{STAGE_QUEUE_WAIT}")
        self._h_handler = metrics.histogram(f"stage.{STAGE_HANDLER}")
        self._h_flush = metrics.histogram(f"stage.{STAGE_FLUSH}")
        #: loop.select_wait: time the loop sat in select() per iteration.
        self._h_select_wait = metrics.histogram("loop.select_wait")
        #: loop.lag: time spent *outside* select() per iteration — how
        #: long a newly-ready event can wait for the loop's attention.
        self._h_loop_lag = metrics.histogram("loop.lag")
        #: loop.timer_drift: how late the loop's scheduled health tick
        #: actually fired — the cross-check on loop.lag that catches
        #: stalls even when no socket event wakes the loop.
        self._h_timer_drift = metrics.histogram("loop.timer_drift")
        self._c_stalls = metrics.counter("loop.stalls")
        self._c_iterations = metrics.counter("loop.iterations")
        #: workers.queue_time: most recent queue-wait observed by any
        #: worker — a cheap "is the pool backed up right now" gauge next
        #: to the full stage.queue_wait histogram.
        self._g_queue_time = metrics.gauge("workers.queue_time")
        #: The server's ring of slowest completed traces (``/traces``).
        self._traces = getattr(server, "traces", None)
        self._c_accepts = metrics.counter("net.accepts")
        self._c_slow = metrics.counter("net.slow_requests")
        self._c_pauses = metrics.counter("net.backpressure_pauses")
        self._c_admin = metrics.counter("net.admin_requests")
        # Admission guard (repro.guard): the loop-level endpoint check.
        # _guard is read on every _pump when present, so resolve it once.
        self._guard = getattr(server, "guard", None)
        self._tarpit_s = (self._guard.config.tarpit_s
                          if self._guard is not None else 0.0)
        #: (due, conn, response parts) FIFO of tarpitted shed responses;
        #: due times are monotone (constant delay), and a tarpitted
        #: connection is held busy so per-connection response order is
        #: preserved — the tarpit is a worker that takes tarpit_s.
        self._tarpit: collections.deque[
            tuple[float, _Connection, tuple]
        ] = collections.deque()
        self._accept_seq = 0  # distinguishes UNIX peers (fd values recycle)
        self._c_loop_shed = metrics.counter("net.guard_loop_shed")

    # ------------------------------------------------------------ lifecycle
    def start(self) -> tuple[str, int]:
        """Bind every endpoint and start the loop.  Returns the legacy
        ``(host, port)`` pair — see :attr:`address`; multi-endpoint callers
        read :attr:`bound_endpoints` for the full list."""
        bound: list[tuple[socket.socket, Endpoint]] = []
        admin_bound: list[tuple[socket.socket, Endpoint]] = []
        # Pre-bound listeners (federation: FDs the coordinator passed us)
        # go first so they stay the primary address.
        for sock, endpoint in self._listen_sockets:
            sock.setblocking(False)
            bound.append((sock, parse_endpoint(endpoint)))
        try:
            for endpoint in self._endpoints:
                bound.append(net_listen(endpoint, backlog=self._backlog,
                                        reuse_port=self._reuse_port))
            for endpoint in self._admin_endpoints:
                admin_bound.append(net_listen(endpoint, backlog=16))
        except Exception:
            for sock, endpoint in bound + admin_bound:
                sock.close()
                if self._cleanup_listeners:
                    cleanup_listener(endpoint)
            raise
        # Admin listeners live in the same table (every cleanup path —
        # pause, drain, force-close — already walks it); _admin_fds is
        # what routes their accepted connections to the HTTP handler.
        self._listeners = {sock.fileno(): (sock, ep)
                           for sock, ep in bound + admin_bound}
        self._admin_fds = {sock.fileno() for sock, _ in admin_bound}
        self._bound = [ep for _, ep in bound]
        self._bound_admin = [ep for _, ep in admin_bound]

        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._wakeup_send.setblocking(False)

        selector = selectors.DefaultSelector()
        for sock, _ in self._listeners.values():
            selector.register(sock, selectors.EVENT_READ, _LISTENER)
        selector.register(self._wakeup_recv, selectors.EVENT_READ, _WAKEUP)
        self._selector = selector

        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="communix-worker"
        )
        self._register_gauges()
        self._stop.clear()
        self._accept_paused_until = 0.0
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="communix-server-loop", daemon=True
        )
        self._loop_thread.start()
        log.info("server listening on %s (event loop, %d workers)",
                 ", ".join(ep.url() for ep in self._bound), self._workers)
        return self.address

    def stop(self) -> None:
        """Drain in-flight requests, close every connection and FD."""
        if self._loop_thread is None:
            return
        self._stop.set()
        self._wake()
        self._loop_thread.join(timeout=self._drain_timeout + 5.0)
        if self._loop_thread.is_alive():  # pragma: no cover - last resort
            log.error("event loop failed to exit; forcing FD cleanup")
            self._force_close_all()
        self._loop_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._listeners = {}
        self._admin_fds = set()
        self._selector = None
        self._wakeup_recv = None
        self._wakeup_send = None

    @property
    def address(self) -> tuple[str, int]:
        """The first bound TCP endpoint as legacy ``(host, port)``; for a
        UNIX-only server, ``(path, 0)`` (use :attr:`bound_endpoints`)."""
        endpoints = self._bound or self._endpoints
        for endpoint in endpoints:
            if endpoint.is_tcp:
                return endpoint.host, endpoint.port
        return endpoints[0].path, 0

    def _register_gauges(self) -> None:
        """Event-loop health probes, read lazily at snapshot/scrape time
        (never on the hot path).  The queue-depth probe reaches into the
        executor's private work queue — guarded, since it is a CPython
        implementation detail."""
        metrics = self._metrics
        metrics.register_gauge("net.connections",
                               lambda: len(self._conns))
        metrics.register_gauge(
            "net.paused_connections",
            lambda: sum(1 for c in self._conns.values() if c.paused),
        )
        metrics.register_gauge("net.completions_pending",
                               lambda: len(self._completions))
        metrics.register_gauge(
            "net.output_backlog_bytes",
            lambda: sum(c.out.size for c in self._conns.values()),
        )
        metrics.register_gauge("workers.queue_depth", self._worker_queue_depth)
        metrics.register_gauge("bufpool.allocated",
                               lambda: self._recv_pool.allocated)
        metrics.register_gauge("bufpool.free",
                               lambda: self._recv_pool.free_count)
        # FD budget: open count vs. the soft RLIMIT_NOFILE cap the accept
        # backoff fights against.  /proc is Linux-only; a raising callable
        # is skipped by snapshot(), so these degrade to absent elsewhere.
        metrics.register_gauge("proc.fd_open",
                               lambda: len(os.listdir("/proc/self/fd")))
        if resource is not None:
            metrics.register_gauge(
                "proc.fd_limit",
                lambda: resource.getrlimit(resource.RLIMIT_NOFILE)[0],
            )

    def _worker_queue_depth(self) -> int:
        executor = self._executor
        queue = getattr(executor, "_work_queue", None) if executor else None
        return queue.qsize() if queue is not None else 0

    @property
    def bound_endpoints(self) -> list[Endpoint]:
        """Every endpoint this transport is listening on (bound ports
        resolved); empty before ``start()``."""
        return list(self._bound)

    @property
    def bound_admin_endpoints(self) -> list[Endpoint]:
        """Admin-plane endpoints (bound ports resolved); empty when no
        ``admin_endpoints`` were configured or before ``start()``."""
        return list(self._bound_admin)

    @property
    def connection_count(self) -> int:
        """Registered client connections (0 after a clean ``stop()``)."""
        return len(self._conns)

    def open_fds(self) -> list[int]:
        """File descriptors this transport currently holds open — the FD
        leak regression check; empty after a clean ``stop()``."""
        fds = []
        for sock, _ in self._listeners.values():
            if sock.fileno() >= 0:
                fds.append(sock.fileno())
        for sock in (self._wakeup_recv, self._wakeup_send):
            if sock is not None and sock.fileno() >= 0:
                fds.append(sock.fileno())
        fds.extend(conn.fd for conn in self._conns.values()
                   if conn.sock.fileno() >= 0)
        return fds

    def _wake(self) -> None:
        # One byte per loop iteration: once a wakeup is in flight, further
        # completions ride it instead of each paying a send() syscall.
        # The flag is racy by design — the worst interleaving sends one
        # redundant byte, and the loop drains the completion deque on
        # every iteration regardless.
        if self._wakeup_armed:
            return
        send = self._wakeup_send
        if send is None:
            return
        self._wakeup_armed = True
        try:
            send.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe full (wakeup already pending) or already closed

    # ---------------------------------------------------------------- loop
    def _run_loop(self) -> None:
        selector = self._selector
        obs_on = self._obs_on
        # Health tick: schedule a timer every _HEALTH_TICK_S and measure
        # how late it fires.  Unlike loop.lag (work time per iteration),
        # the drift survives iterations that block in a slow handler or a
        # long write — the scheduled-vs-actual gap IS the stall.
        next_tick = (time.monotonic() + _HEALTH_TICK_S) if obs_on else 0.0
        try:
            while not self._stop.is_set():
                timeout = 0.2
                if self._accept_paused_until:
                    timeout = min(timeout, _ACCEPT_COOLDOWN)
                if self._tarpit:
                    timeout = max(0.0, min(
                        timeout, self._tarpit[0][0] - time.monotonic()
                    ))
                if obs_on:
                    timeout = max(0.0, min(
                        timeout, next_tick - time.monotonic()
                    ))
                before_select = perf_counter() if obs_on else 0.0
                events = selector.select(timeout=timeout)
                work_started = perf_counter() if obs_on else 0.0
                if obs_on:
                    now = time.monotonic()
                    if now >= next_tick:
                        drift = now - next_tick
                        self._h_timer_drift.record(drift)
                        if drift > _STALL_THRESHOLD_S:
                            self._c_stalls.add()
                        # Re-anchor on now: a long stall is one stall,
                        # not a burst of catch-up ticks.
                        next_tick = now + _HEALTH_TICK_S
                for key, mask in events:
                    if key.data is _LISTENER:
                        self._on_accept(key.fileobj)
                    elif key.data is _WAKEUP:
                        self._drain_wakeup()
                    else:
                        conn: _Connection = key.data
                        if mask & selectors.EVENT_WRITE:
                            self._flush(conn)
                        if (mask & selectors.EVENT_READ
                                and self._conns.get(conn.fd) is conn):
                            self._on_readable(conn)
                self._maybe_resume_accept()
                self._drain_completions()
                self._drain_tarpit()
                self._sweep_idle()
                if obs_on:
                    self._h_select_wait.record(work_started - before_select)
                    self._h_loop_lag.record(perf_counter() - work_started)
                    self._c_iterations.add()
            self._drain_on_stop()
        except Exception:  # pragma: no cover - loop must never die silently
            log.exception("event loop crashed")
        finally:
            self._force_close_all()

    # -------------------------------------------------------------- accept
    def _on_accept(self, listener: socket.socket) -> None:
        admin = listener.fileno() in self._admin_fds
        while True:
            try:
                sock, peer = listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                if exc.errno in _FD_EXHAUSTED:
                    # Out of descriptors: stop accepting for a beat instead
                    # of spinning on a permanently-readable listener.  The
                    # pending connections stay queued in the listen backlog
                    # and are accepted once connections close.
                    self._pause_accept()
                return
            sock.setblocking(False)
            endpoint_key = None
            if self._guard is not None and not admin:
                self._accept_seq += 1
                if isinstance(peer, tuple) and len(peer) >= 2:
                    endpoint_key = f"{peer[0]}:{peer[1]}"
                else:
                    endpoint_key = f"unix:{self._accept_seq}"
            conn = _Connection(sock, peer, time.monotonic(), admin=admin,
                               endpoint_key=endpoint_key)
            self._conns[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            if self._obs_on:
                self._c_accepts.add()

    def _pause_accept(self) -> None:
        if self._accept_paused_until:
            return
        log.warning("out of file descriptors (%d connections); pausing "
                    "accept for %.1fs", len(self._conns), _ACCEPT_COOLDOWN)
        for sock, _ in self._listeners.values():
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                pass
        self._accept_paused_until = time.monotonic() + _ACCEPT_COOLDOWN

    def _maybe_resume_accept(self) -> None:
        if (not self._accept_paused_until
                or time.monotonic() < self._accept_paused_until):
            return
        self._accept_paused_until = 0.0
        for sock, _ in self._listeners.values():
            try:
                self._selector.register(sock, selectors.EVENT_READ, _LISTENER)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                pass

    # ---------------------------------------------------------------- read
    def _on_readable(self, conn: _Connection) -> None:
        pool = self._recv_pool
        buf = pool.acquire()
        try:
            n = conn.sock.recv_into(buf)
        except (BlockingIOError, InterruptedError):
            pool.release(buf)
            return
        except OSError:
            pool.release(buf)
            self._close_conn(conn)
            return
        if not n:
            pool.release(buf)
            self._close_conn(conn)  # peer gone; drop any queued work
            return
        conn.last_activity = time.monotonic()
        ok = self._ingest(conn, memoryview(buf)[:n])
        pool.release(buf)
        if not ok:
            return
        self._pump(conn)
        self._update_events(conn)

    def _ingest(self, conn: _Connection, view: memoryview) -> bool:
        """Absorb one read's bytes; False if the connection was closed
        for a protocol violation.

        When nothing is buffered from earlier reads — the dominant case —
        complete frames are parsed straight out of the pooled receive
        buffer and only a trailing partial frame is copied into
        ``conn.inbuf``; the request/response steady state never copies
        payload bytes twice.
        """
        if conn.admin:
            return self._ingest_admin(conn, view)
        enqueued_at = perf_counter() if self._obs_on else 0.0
        if conn.inbuf:
            conn.inbuf += view
            return self._parse_frames(conn, enqueued_at)
        offset, total = 0, len(view)
        pending = conn.pending
        while total - offset >= 4:
            (length,) = struct.unpack_from(">I", view, offset)
            if length > MAX_FRAME:
                log.warning("dropping %s: declared frame of %d bytes",
                            conn.peer, length)
                self._close_conn(conn)
                return False
            if total - offset - 4 < length:
                break
            pending.append(
                (bytes(view[offset + 4:offset + 4 + length]), enqueued_at)
            )
            offset += 4 + length
        if offset < total:
            conn.inbuf += view[offset:]
        return True

    def _parse_frames(self, conn: _Connection, enqueued_at: float = 0.0
                      ) -> bool:
        """Split complete frames off the input buffer; False if the
        connection was closed for a protocol violation."""
        buf = conn.inbuf
        while True:
            if len(buf) < 4:
                return True
            (length,) = struct.unpack_from(">I", buf)
            if length > MAX_FRAME:
                log.warning("dropping %s: declared frame of %d bytes",
                            conn.peer, length)
                self._close_conn(conn)
                return False
            if len(buf) < 4 + length:
                return True
            conn.pending.append((bytes(buf[4:4 + length]), enqueued_at))
            del buf[:4 + length]

    # ------------------------------------------------------------ dispatch
    def _pump(self, conn: _Connection) -> None:
        """Submit the connection's next queued request (one in flight)."""
        if conn.busy or not conn.pending:
            return
        if (conn.endpoint_key is not None
                and self._guard.endpoint_action(conn.endpoint_key)
                != "admit"):
            self._shed_head(conn)
            return
        conn.busy = True
        payload, enqueued_at = conn.pending.popleft()
        self._executor.submit(self._work, conn, payload, enqueued_at)

    def _shed_head(self, conn: _Connection) -> None:
        """Answer the head-of-queue request with the precomposed shed
        frame, never parsing it or touching the worker pool.  The
        response rides the tarpit queue (optionally with a delay): the
        connection is held busy until it leaves, which both preserves
        per-connection response order and throttles a closed-loop
        flooder to ~1/tarpit_s requests per second."""
        conn.pending.popleft()
        self._guard.note_rejection(conn.endpoint_key, "shed")
        if self._obs_on:
            self._c_loop_shed.add()
        conn.busy = True
        due = time.monotonic() + self._tarpit_s
        self._tarpit.append((due, conn, _SHED_PARTS))

    def _drain_tarpit(self) -> None:
        """Release tarpitted shed responses whose delay has elapsed
        (called every loop iteration; the select timeout is clamped to
        the head entry's due time)."""
        tarpit = self._tarpit
        if not tarpit:
            return
        now = time.monotonic()
        while tarpit and tarpit[0][0] <= now:
            _, conn, parts = tarpit.popleft()
            conn.busy = False
            if self._conns.get(conn.fd) is not conn:
                continue  # closed while parked
            conn.out.push(parts)
            conn.last_activity = now
            self._flush(conn)
            if self._conns.get(conn.fd) is conn:
                self._pump(conn)
                self._update_events(conn)

    def _work(self, conn: _Connection, payload: bytes,
              enqueued_at: float = 0.0) -> None:
        """Worker-pool entry: compute a response, post it to the loop.

        A response is a parts list — ``[frame header, part, ...]`` — so
        large GET payloads stay as references to the database's cached
        segment chunks all the way to the socket.
        """
        obs_on = self._obs_on
        slow_on = self._slow_log_on
        # The trace doubles as the source of histogram exemplars, so it is
        # minted whenever metrics are on (not just when the slow log is
        # armed); --no-metrics still pays zero allocations here.
        trace = RequestTrace() if (obs_on or slow_on) else None
        exemplar = trace.hex_id() if trace is not None else None
        started = perf_counter() if (obs_on or slow_on) else 0.0
        if enqueued_at and (obs_on or slow_on):
            queue_wait = started - enqueued_at
            self._h_queue_wait.record(queue_wait, exemplar)
            self._g_queue_time.set(queue_wait)
            if trace is not None:
                trace.stamp(STAGE_QUEUE_WAIT, queue_wait)
        try:
            response = self._dispatch(payload, trace, conn.endpoint_key)
        except ProtocolError as exc:
            response = canonical_json({"ok": False, "error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            log.exception("unexpected dispatch failure")
            response = canonical_json(
                {"ok": False, "error": f"internal server error: {exc}"}
            )
        if obs_on or slow_on:
            handler_time = perf_counter() - started
            self._h_handler.record(handler_time, exemplar)
            if trace is not None:
                trace.stamp(STAGE_HANDLER, handler_time)
                if self._traces is not None:
                    self._traces.note(trace)
                if slow_on and trace.total() >= self._slow_threshold:
                    self._c_slow.add()
                    log.warning(
                        "slow request op=%s trace=%s from %s: "
                        "total=%.2fms %s",
                        trace.op, exemplar, conn.peer,
                        trace.total() * 1000.0, trace.breakdown(),
                    )
        if isinstance(response, bytes):
            response = [response]
        length = sum(len(part) for part in response)
        if length > MAX_FRAME:  # mirrors the framing contract clients enforce
            response = [canonical_json(
                {"ok": False, "error": "response exceeds maximum frame size"}
            )]
            length = len(response[0])
        response.insert(0, struct.pack(">I", length))
        self._completions.append((conn, response, exemplar))
        self._wake()

    def _drain_wakeup(self) -> None:
        self._wakeup_armed = False
        try:
            while self._wakeup_recv.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def _drain_completions(self) -> None:
        """Move completed responses onto their connections, then flush.

        Enqueue-everything-first, flush-once-per-connection: when several
        pipelined responses for one connection complete in the same loop
        iteration, they leave in a single vectored ``sendmsg`` instead of
        paying one flush per response.
        """
        completions = self._completions
        dirty: dict[int, _Connection] = {}
        now = time.monotonic()
        obs_on = self._obs_on
        while completions:
            try:
                conn, response_parts, exemplar = completions.popleft()
            except IndexError:  # pragma: no cover - single consumer
                break
            conn.busy = False
            if self._conns.get(conn.fd) is not conn:
                continue  # connection closed while the request ran
            conn.out.push(response_parts)
            if obs_on:
                # Flush stage starts the moment the response is queued;
                # it completes when the socket write covers the mark.
                conn.out.mark(perf_counter(), exemplar)
            conn.last_activity = now
            dirty[conn.fd] = conn
        for fd, conn in dirty.items():
            if self._conns.get(fd) is not conn:
                continue  # closed by an earlier flush in this batch
            self._flush(conn)
            if self._conns.get(fd) is conn:
                self._pump(conn)
                self._update_events(conn)

    # --------------------------------------------------------------- write
    def _flush(self, conn: _Connection) -> None:
        out = conn.out
        sendmsg = getattr(conn.sock, "sendmsg", None)
        while out.size:
            try:
                if sendmsg is not None:
                    sent = sendmsg(out.head())
                else:  # pragma: no cover - platforms without sendmsg
                    sent = conn.sock.send(out.parts[0][:_SEND_CHUNK])
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if not sent:
                break
            out.advance(sent)
            conn.last_activity = time.monotonic()
        if out.marks:
            ended = perf_counter()
            for queued_at, exemplar in out.take_flushed():
                self._h_flush.record(ended - queued_at, exemplar)
        if conn.close_after_flush and not out.size:
            self._close_conn(conn)
            return
        self._update_events(conn)

    def _update_events(self, conn: _Connection) -> None:
        if self._conns.get(conn.fd) is not conn:
            return
        backlog = conn.out.size
        queued = len(conn.pending)
        if conn.paused:
            if backlog < _LOW_WATERMARK and queued <= _MAX_PENDING // 2:
                conn.paused = False
        elif backlog > _HIGH_WATERMARK or queued > _MAX_PENDING:
            conn.paused = True
            if self._obs_on:
                self._c_pauses.add()
        mask = 0
        if not conn.paused:
            mask |= selectors.EVENT_READ
        if conn.out.size:
            mask |= selectors.EVENT_WRITE
        if mask == conn.events:
            return
        # A fully paused connection (reads paused, nothing to write) must
        # leave the selector entirely — a zero mask is not registrable.
        if mask == 0:
            self._selector.unregister(conn.sock)
        elif conn.events == 0:
            self._selector.register(conn.sock, mask, conn)
        else:
            self._selector.modify(conn.sock, mask, conn)
        conn.events = mask

    # ------------------------------------------------------------- closing
    def _close_conn(self, conn: _Connection) -> None:
        if self._conns.pop(conn.fd, None) is not conn:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        conn.pending.clear()
        conn.inbuf.clear()
        conn.out.clear()

    def _sweep_idle(self) -> None:
        if not self._idle_timeout:
            return
        now = time.monotonic()
        if now - self._last_sweep < 1.0:
            return
        self._last_sweep = now
        for conn in list(self._conns.values()):
            if conn.busy:
                continue  # a request is being processed on its behalf
            # last_activity advances on reads AND on write progress, so
            # this also reaps a peer that requested a big response and
            # then stopped reading it — the old transport's 30 s socket
            # timeout bounded that; this sweep is its replacement.
            if now - conn.last_activity > self._idle_timeout:
                log.info("closing idle connection %s", conn.peer)
                self._close_conn(conn)

    def _drain_on_stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests,
        flush their responses, then close everything."""
        for sock, endpoint in self._listeners.values():
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
            sock.close()
            if self._cleanup_listeners:
                cleanup_listener(endpoint)
        deadline = time.monotonic() + self._drain_timeout
        while time.monotonic() < deadline:
            self._drain_completions()
            self._drain_tarpit()
            live = [c for c in self._conns.values()
                    if c.busy or c.out.size]
            if not live:
                break
            for key, mask in self._selector.select(timeout=0.05):
                if key.data is _WAKEUP:
                    self._drain_wakeup()
                elif isinstance(key.data, _Connection):
                    if mask & selectors.EVENT_WRITE:
                        self._flush(key.data)
        # Every in-flight ADD has now been processed (or abandoned with its
        # connection): push the write-ahead log to disk so a stop under the
        # interval/never fsync policies loses nothing that was acked.
        try:
            self._server.flush_store()
        except Exception:  # pragma: no cover - disk failure at shutdown
            log.exception("failed to flush signature store during drain")

    def _force_close_all(self) -> None:
        self._tarpit.clear()
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        for sock, endpoint in self._listeners.values():
            try:
                sock.close()
            except OSError:
                pass
            if self._cleanup_listeners:
                cleanup_listener(endpoint)
        for sock in (self._wakeup_recv, self._wakeup_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:
                pass

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, payload: bytes, trace=None,
                  endpoint_key: str | None = None) -> bytes | list[bytes]:
        request = decode_request(payload)
        op = request["op"]
        if trace is not None:
            trace.op = op
        if op == "ADD":
            blob = decode_add_signature(request)
            token = str(request.get("token", ""))
            outcome = self._server.process_add(blob, token, trace)
            if endpoint_key is not None and not outcome.accepted:
                # Validation feedback for the guard's endpoint dimension:
                # sustained rejections (not raw volume — closed-loop
                # benign traffic looks the same by rate) are what flag a
                # source endpoint for loop-level shedding.
                self._guard.note_rejection(endpoint_key, outcome.verdict)
            return canonical_json(
                {
                    "ok": outcome.accepted,
                    "verdict": outcome.verdict,
                    "index": outcome.index,
                }
            )
        if op == "GET":
            from_index, max_count = decode_get_args(request)
            if max_count is None:
                # Legacy unpaginated GET: the whole tail in one frame.
                next_index, count, chunks, _ = self._server.process_get_wire(
                    from_index, trace=trace
                )
                return get_response_parts(next_index, count, chunks)
            next_index, count, chunks, more = self._server.process_get_wire(
                from_index, max_count, trace=trace
            )
            return get_page_response_parts(next_index, count, chunks, more)
        if op == "ISSUE_ID":
            return canonical_json({"ok": True, "token": self._server.issue_user_token()})
        if op == "STATS":
            version = decode_stats_version(request)
            return canonical_json(self._server.stats_payload(version))
        raise ProtocolError(f"unknown op {op!r}")

    # ---------------------------------------------------------- admin plane
    def _ingest_admin(self, conn: _Connection, view: memoryview) -> bool:
        """Absorb bytes from an admin-plane connection and answer complete
        HTTP requests.  Runs on the loop thread: rendering a snapshot is
        O(instruments), and scrapes arrive once per interval, not per
        request — not worth a worker-pool round trip."""
        conn.inbuf += view
        if len(conn.inbuf) > _ADMIN_MAX_REQUEST:
            log.warning("dropping admin connection %s: oversized request",
                        conn.peer)
            self._close_conn(conn)
            return False
        head_end = conn.inbuf.find(b"\r\n\r\n")
        if head_end < 0:
            return True
        request_line = bytes(conn.inbuf[:head_end]).split(b"\r\n", 1)[0]
        del conn.inbuf[:]
        try:
            response = self._admin_response(request_line)
        except Exception:  # pragma: no cover - defensive
            log.exception("admin request failed")
            response = _http_response(500, b"internal error\n",
                                      "text/plain; charset=utf-8")
        if self._obs_on:
            self._c_admin.add()
        conn.out.push([response])
        conn.close_after_flush = True
        self._flush(conn)
        return self._conns.get(conn.fd) is conn

    def _admin_response(self, request_line: bytes) -> bytes:
        parts = request_line.split()
        if len(parts) < 2 or parts[0] != b"GET":
            return _http_response(405, b"only GET is supported\n",
                                  "text/plain; charset=utf-8")
        target = parts[1].split(b"?", 1)
        path = target[0]
        query = target[1] if len(target) > 1 else b""
        if path == b"/metrics":
            body = render_prometheus(self._metrics.snapshot()).encode("utf-8")
            return _http_response(
                200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
        if path == b"/stats":
            body = canonical_json(self._server.stats_payload(version=2))
            return _http_response(200, body + b"\n", "application/json")
        if path == b"/traces":
            return self._traces_response(query)
        if path in (b"/healthz", b"/"):
            return _http_response(200, b"ok\n",
                                  "text/plain; charset=utf-8")
        return _http_response(404, b"not found\n",
                              "text/plain; charset=utf-8")

    def _traces_response(self, query: bytes) -> bytes:
        """``GET /traces``: the retained slowest traces (slowest first)
        plus the per-histogram bucket exemplars, so "show me the trace
        behind the p99 bucket" is one scrape.  ``?id=<hex>`` looks up one
        retained trace (404 when it has been evicted)."""
        buffer = self._traces
        wanted = None
        for param in query.split(b"&"):
            if param.startswith(b"id="):
                wanted = param[3:].decode("ascii", "replace")
        if wanted is not None:
            found = buffer.find(wanted) if buffer is not None else None
            if found is None:
                return _http_response(404, b"trace not found\n",
                                      "text/plain; charset=utf-8")
            return _http_response(200, canonical_json({"trace": found}) + b"\n",
                                  "application/json")
        exemplars: dict[str, dict] = {}
        for name, wire in self._metrics.snapshot()["histograms"].items():
            if wire.get("exemplars"):
                exemplars[name] = wire["exemplars"]
        payload = {
            "traces": buffer.snapshot() if buffer is not None else [],
            "exemplars": exemplars,
        }
        return _http_response(200, canonical_json(payload) + b"\n",
                              "application/json")
