"""TCP transport for the Communix server.

A classic thread-per-connection accept loop: each client connection gets a
handler thread that reads request frames and writes response frames until
the peer disconnects.  Connections are persistent — a Communix client (or a
benchmark thread) issues its whole ``ADD, GET(0)`` sequence over one
connection, as the paper's end-to-end setup does.
"""

from __future__ import annotations

import socket
import threading

from repro.server.protocol import (
    decode_add_signature,
    decode_request,
    encode_get_response,
    read_frame,
    write_frame,
)
from repro.server.server import CommunixServer
from repro.util.encoding import canonical_json
from repro.util.errors import ProtocolError
from repro.util.logging import get_logger

log = get_logger("server.transport")


class ServerTransport:
    def __init__(self, server: CommunixServer, host: str = "127.0.0.1",
                 port: int = 0, accept_backlog: int = 512):
        self._server = server
        self._host = host
        self._port = port
        self._backlog = accept_backlog
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._handlers: set[threading.Thread] = set()
        self._handlers_lock = threading.Lock()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(self._backlog)
        listener.settimeout(0.2)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="communix-server-accept", daemon=True
        )
        self._accept_thread.start()
        log.info("server listening on %s:%d", self._host, self._port)
        return self._host, self._port

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=1.0)

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    # ---------------------------------------------------------------- loops
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, peer),
                name=f"communix-conn-{peer[1]}",
                daemon=True,
            )
            with self._handlers_lock:
                self._handlers.add(handler)
            handler.start()

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        try:
            conn.settimeout(30.0)
            while not self._stop.is_set():
                try:
                    payload = read_frame(conn)
                except (ProtocolError, OSError):
                    break
                if payload is None:
                    break
                try:
                    response = self._dispatch(payload)
                except ProtocolError as exc:
                    response = canonical_json({"ok": False, "error": str(exc)})
                try:
                    write_frame(conn, response)
                except OSError:
                    break
        finally:
            conn.close()
            with self._handlers_lock:
                self._handlers.discard(threading.current_thread())

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, payload: bytes) -> bytes:
        request = decode_request(payload)
        op = request["op"]
        if op == "ADD":
            blob = decode_add_signature(request)
            token = str(request.get("token", ""))
            outcome = self._server.process_add(blob, token)
            return canonical_json(
                {
                    "ok": outcome.accepted,
                    "verdict": outcome.verdict,
                    "index": outcome.index,
                }
            )
        if op == "GET":
            try:
                from_index = int(request.get("from_index", 0))
            except (TypeError, ValueError) as exc:
                raise ProtocolError("GET from_index must be an integer") from exc
            next_index, blobs = self._server.process_get(from_index)
            return encode_get_response(next_index, blobs)
        if op == "ISSUE_ID":
            return canonical_json({"ok": True, "token": self._server.issue_user_token()})
        if op == "STATS":
            stats = self._server.stats
            return canonical_json(
                {
                    "ok": True,
                    "database_size": len(self._server.database),
                    "adds_accepted": stats.adds_accepted,
                    "gets_served": stats.gets_served,
                }
            )
        raise ProtocolError(f"unknown op {op!r}")
