"""Server-side signature validation (paper §III-C2).

Upon receiving signature S with encrypted ID I, the server:

1. decrypts I to recover the sender's user ID (rejecting forged tokens);
2. enforces the per-user daily quota (§III-C1);
3. rejects S if the same user already sent a signature *adjacent* to S —
   "S and S' have some (but not all) top frames in common".  This is the
   check that collapses an attacker's signature space from
   ``N^4 * sum(N_d^4)`` to just N (one signature per nested block).

Token decryption is AES work; the validator memoizes decoded tokens in a
**bounded LRU** (:class:`TokenCache`), which keeps crypto off the hot path
exactly as a production server would.  Only *valid* tokens are cached, and
the cache is capped: a forged-token flood can neither grow it without
bound nor evict legitimate entries (forgeries never enter the cache —
each forgery burns its own AES decode, the attacker's cost, not ours).
Hit/miss counters surface on the server's ``STATS`` response.
"""

from __future__ import annotations

import collections
import enum
import threading
from time import perf_counter

from repro.core.signature import DeadlockSignature
from repro.crypto.userid import UserIdAuthority
from repro.obs import STAGE_CRYPTO, STAGE_GUARD_CHECK
from repro.server.database import SignatureDatabase
from repro.server.ratelimit import DailyQuota
from repro.util.errors import CryptoError


class ServerVerdict(enum.Enum):
    OK = "ok"
    BAD_TOKEN = "bad_token"
    QUOTA_EXCEEDED = "quota_exceeded"
    ADJACENT = "adjacent"
    MALFORMED = "malformed"
    #: The admission guard (``repro.guard``) classified the sender or
    #: signature as flooding/over-allowance and dropped the request
    #: before the quota and adjacency checks ran.
    SHED = "shed"


def adjacent(top_frames_a: frozenset, top_frames_b: frozenset) -> bool:
    """Some, but not all, top frames in common (§III-C2)."""
    common = top_frames_a & top_frames_b
    return bool(common) and top_frames_a != top_frames_b


class TokenCache:
    """Thread-safe bounded LRU of ``token -> uid`` with hit/miss counters.

    The pre-LRU cache cleared itself wholesale when full, so a steady
    drip of *distinct* valid tokens (20k clients each holding their own)
    would periodically dump every warm entry and re-burn an AES decode
    per client.  LRU eviction keeps the active set warm and makes the
    worst case one decode per cold token, not one per flood cycle.
    """

    __slots__ = ("_data", "_lock", "capacity", "hits", "misses")

    def __init__(self, capacity: int = 65_536):
        self.capacity = max(1, capacity)
        self._data: collections.OrderedDict[str, int] = collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, token: str) -> int | None:
        with self._lock:
            uid = self._data.get(token)
            if uid is None:
                self.misses += 1
                return None
            self._data.move_to_end(token)
            self.hits += 1
            return uid

    def put(self, token: str, uid: int) -> None:
        with self._lock:
            if token in self._data:
                self._data.move_to_end(token)
            elif len(self._data) >= self.capacity:
                self._data.popitem(last=False)
            self._data[token] = uid

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }


class ServerSideValidator:
    def __init__(self, authority: UserIdAuthority, quota: DailyQuota,
                 database: SignatureDatabase, token_cache_size: int = 65_536,
                 metrics=None, guard=None):
        self._authority = authority
        self._quota = quota
        self._database = database
        self._guard = guard  # repro.guard.AdmissionGuard | None
        self._token_cache = TokenCache(token_cache_size)
        # AES-decode time on cache misses; None when metrics are off so
        # the hot path pays no perf_counter() reads.
        self._h_crypto = (metrics.histogram(f"stage.{STAGE_CRYPTO}")
                          if metrics is not None and metrics.enabled
                          else None)
        # Guard-verdict time; only materialised when both the guard and
        # metrics are on (the guard-off hot path must stay stamp-free).
        self._h_guard = (metrics.histogram(f"stage.{STAGE_GUARD_CHECK}")
                         if guard is not None and metrics is not None
                         and metrics.enabled
                         else None)

    @property
    def token_cache(self) -> TokenCache:
        return self._token_cache

    # -------------------------------------------------------------- tokens
    def resolve_uid(self, token: str, trace=None) -> int | None:
        uid = self._token_cache.get(token)
        if uid is not None:
            return uid
        histogram = self._h_crypto
        timed = histogram is not None or trace is not None
        started = perf_counter() if timed else 0.0
        try:
            decoded = self._authority.decode(token)
        except CryptoError:
            decoded = None
        if timed:
            elapsed = perf_counter() - started
            if histogram is not None:
                histogram.record(
                    elapsed, trace.hex_id() if trace is not None else None
                )
            if trace is not None:
                trace.stamp(STAGE_CRYPTO, elapsed)
        if decoded is None:
            return None
        self._token_cache.put(token, decoded.user_id)
        return decoded.user_id

    # ---------------------------------------------------------- validation
    def check_add(self, signature: DeadlockSignature, token: str,
                  trace=None) -> tuple[ServerVerdict, int | None]:
        """Full §III-C2 pipeline for one ADD; returns (verdict, uid)."""
        uid = self.resolve_uid(token, trace)
        if uid is None:
            return ServerVerdict.BAD_TOKEN, None
        return self.check_add_uid(signature, uid, trace), uid

    def check_add_uid(self, signature: DeadlockSignature, uid: int,
                      trace=None) -> ServerVerdict:
        """§III-C2 steps 2–3 (quota + adjacency) for an ADD whose token a
        trusted peer already decoded to ``uid`` — the log owner's entry
        point for forwarded federated ADDs, where the AES work happened on
        the forwarding worker but quota and adjacency are *global* state
        only the owner holds."""
        if self._guard is not None:
            histogram = self._h_guard
            timed = histogram is not None or trace is not None
            started = perf_counter() if timed else 0.0
            admitted = self._guard.admit_add(uid, signature.sig_id)
            if timed:
                elapsed = perf_counter() - started
                if histogram is not None:
                    histogram.record(
                        elapsed,
                        trace.hex_id() if trace is not None else None,
                    )
                if trace is not None:
                    trace.stamp(STAGE_GUARD_CHECK, elapsed)
            if not admitted:
                # Shed *before* the quota lock: a flooding sender must not
                # contend on (or consume) shared quota state, and the
                # offered signature still fed the guard's sketches so the
                # classification keeps tracking the flood while it sheds.
                return ServerVerdict.SHED
        if not self._quota.try_consume(uid):
            return ServerVerdict.QUOTA_EXCEEDED
        mine = signature.top_frames
        for previous in self._database.user_top_frames(uid):
            if adjacent(mine, previous):
                return ServerVerdict.ADJACENT
        return ServerVerdict.OK
