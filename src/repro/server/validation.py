"""Server-side signature validation (paper §III-C2).

Upon receiving signature S with encrypted ID I, the server:

1. decrypts I to recover the sender's user ID (rejecting forged tokens);
2. enforces the per-user daily quota (§III-C1);
3. rejects S if the same user already sent a signature *adjacent* to S —
   "S and S' have some (but not all) top frames in common".  This is the
   check that collapses an attacker's signature space from
   ``N^4 * sum(N_d^4)`` to just N (one signature per nested block).

Token decryption is AES work; the validator memoizes decoded tokens, which
keeps crypto off the hot path exactly as a production server would.
"""

from __future__ import annotations

import enum
import threading

from repro.core.signature import DeadlockSignature
from repro.crypto.userid import UserIdAuthority
from repro.server.database import SignatureDatabase
from repro.server.ratelimit import DailyQuota
from repro.util.errors import CryptoError


class ServerVerdict(enum.Enum):
    OK = "ok"
    BAD_TOKEN = "bad_token"
    QUOTA_EXCEEDED = "quota_exceeded"
    ADJACENT = "adjacent"
    MALFORMED = "malformed"


def adjacent(top_frames_a: frozenset, top_frames_b: frozenset) -> bool:
    """Some, but not all, top frames in common (§III-C2)."""
    common = top_frames_a & top_frames_b
    return bool(common) and top_frames_a != top_frames_b


class ServerSideValidator:
    def __init__(self, authority: UserIdAuthority, quota: DailyQuota,
                 database: SignatureDatabase, token_cache_size: int = 65_536):
        self._authority = authority
        self._quota = quota
        self._database = database
        self._token_cache: dict[str, int] = {}
        self._cache_lock = threading.Lock()
        self._cache_size = token_cache_size

    # -------------------------------------------------------------- tokens
    def resolve_uid(self, token: str) -> int | None:
        with self._cache_lock:
            uid = self._token_cache.get(token)
        if uid is not None:
            return uid
        try:
            decoded = self._authority.decode(token)
        except CryptoError:
            return None
        with self._cache_lock:
            if len(self._token_cache) >= self._cache_size:
                self._token_cache.clear()
            self._token_cache[token] = decoded.user_id
        return decoded.user_id

    # ---------------------------------------------------------- validation
    def check_add(self, signature: DeadlockSignature, token: str
                  ) -> tuple[ServerVerdict, int | None]:
        """Full §III-C2 pipeline for one ADD; returns (verdict, uid)."""
        uid = self.resolve_uid(token)
        if uid is None:
            return ServerVerdict.BAD_TOKEN, None
        if not self._quota.try_consume(uid):
            return ServerVerdict.QUOTA_EXCEEDED, uid
        mine = signature.top_frames
        for previous in self._database.user_top_frames(uid):
            if adjacent(mine, previous):
                return ServerVerdict.ADJACENT, uid
        return ServerVerdict.OK, uid
