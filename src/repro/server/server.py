"""The Communix server's request-processing core (paper §III-B/C2, §IV-A).

``process_add`` and ``process_get`` are the two routines the paper's Fig. 2
invokes "from 1,000-100,000 simultaneous threads"; they are fully
thread-safe and independent of any transport.  :class:`ServerTransport`
wraps them for the network (Fig. 3); benchmarks and tests may call them
directly.

Request accounting uses :class:`ShardedCounter` — per-thread counter shards
aggregated on read — so the hot path takes no stats lock at all.
"""

from __future__ import annotations

import operator
import threading
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.crypto.userid import UserIdAuthority
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    ShardedCounter,
    STAGE_DB_APPEND,
    STAGE_DB_READ,
    STAGE_VALIDATE,
    TraceBuffer,
)
from repro.server.database import SignatureDatabase
from repro.server.ratelimit import DailyQuota
from repro.server.validation import ServerSideValidator, ServerVerdict
from repro.util.clock import Clock, SystemClock
from repro.util.errors import ProtocolError, ValidationError
from repro.util.logging import get_logger

log = get_logger("server")

#: Current STATS response schema version; ``{"op": "STATS"}`` without a
#: ``version`` field still gets the original v1 shape.
STATS_VERSION = 2


@dataclass
class ServerConfig:
    max_signatures_per_user_per_day: int = 10
    require_token: bool = True
    adjacency_check: bool = True
    #: Upper bound on accepted signature blob size; a 2-thread signature is
    #: ~1.7 KB (paper §IV-A), so this is generous while bounding abuse.
    max_signature_bytes: int = 64 * 1024
    #: Hard cap on one paginated GET page; an oversized ``max_count`` from a
    #: client is clamped here.  Unpaginated (legacy) GETs are never clamped.
    max_get_page: int = 4096
    #: Durability: directory for the segmented write-ahead log (see
    #: :mod:`repro.store`).  ``None`` keeps the seed behavior — memory only,
    #: the database dies with the process.
    data_dir: str | None = None
    #: Store fsync policy: ``always`` (an acked ADD survives kill -9),
    #: ``interval:<ms>`` (background flusher; bounded loss window), or
    #: ``never`` (OS-paced; clean shutdown still flushes).
    fsync_policy: str = "always"
    #: Write a checkpoint manifest every this many accepted signatures
    #: (plus one on clean shutdown); 0 checkpoints only on shutdown.
    checkpoint_every: int = 4096
    #: AES backend for user-ID tokens: a registered name (``pure`` is the
    #: FIPS-197 reference, ``fast`` the OpenSSL path via ``cryptography``),
    #: or ``None``/``"auto"`` for the default order (``REPRO_CRYPTO_BACKEND``
    #: env var, then fast-when-available).  Ignored when an ``authority``
    #: object is handed to :class:`CommunixServer` directly.
    crypto_backend: str | None = None
    #: Bound on the validator's decoded-token LRU; a forged-token flood
    #: cannot grow it past this many entries.
    token_cache_size: int = 65_536
    #: Observability: when False the server runs with the no-op
    #: :data:`repro.obs.NULL_REGISTRY` — no per-stage histograms, no
    #: timing reads on the hot path (``--no-metrics``; the baseline the
    #: instrumentation-overhead benchmark compares against).
    metrics_enabled: bool = True
    #: Log a stage breakdown for any request slower than this many
    #: milliseconds (0 disables the slow-request log).
    slow_request_ms: float = 0.0
    #: Admission guard (``repro.guard``, ``--guard``): streaming flood
    #: detection in front of validation — per-uid/per-signature sketch
    #: checks before the quota lock, flooding source endpoints shed on
    #: the event loop before crypto.  Off by default: the fixed daily
    #: quota alone is the paper's §III-C1 behavior.
    guard_enabled: bool = False
    #: Master guard budget in operations per decay window-pair
    #: (``--guard-budget``); per-dimension budgets derive from it — see
    #: :class:`repro.guard.GuardConfig`.
    guard_budget: int = 64
    #: Guard decay-window length in seconds (``--guard-window``):
    #: detection latency is about one window, relax-back several.
    guard_window_s: float = 5.0
    #: Tarpit delay for loop-shed responses (``--guard-tarpit``): a shed
    #: connection is held busy this long per response, throttling a
    #: closed-loop flooder to ~1/tarpit requests per second.
    guard_tarpit_s: float = 0.025
    #: How many of the slowest completed traces the in-memory ring keeps
    #: for the admin plane's ``/traces`` endpoint (``--trace-buffer``).
    trace_buffer_size: int = 64


@dataclass
class AddOutcome:
    accepted: bool
    verdict: str
    index: int | None = None


# ShardedCounter moved to repro.obs.registry (imported above) so every
# layer shares the per-thread-shard counting idiom; it remains exported
# from this module for existing callers.

@dataclass
class ServerStats:
    """A point-in-time aggregation of the server's sharded counters."""

    adds_accepted: int = 0
    adds_rejected: dict[str, int] = field(default_factory=dict)
    gets_served: int = 0
    signatures_served: int = 0
    token_cache_hits: int = 0
    token_cache_misses: int = 0

    def note_rejection(self, verdict: str) -> None:
        self.adds_rejected[verdict] = self.adds_rejected.get(verdict, 0) + 1


class _StatsCounters:
    """Lock-free request accounting; ``snapshot()`` builds a ServerStats."""

    def __init__(self) -> None:
        self.adds_accepted = ShardedCounter()
        self.gets_served = ShardedCounter()
        self.signatures_served = ShardedCounter()
        self._rejections: dict[str, ShardedCounter] = {}
        self._rejections_lock = threading.Lock()  # rare path: new verdicts

    def note_rejection(self, verdict: str) -> None:
        counter = self._rejections.get(verdict)
        if counter is None:
            with self._rejections_lock:
                counter = self._rejections.setdefault(verdict, ShardedCounter())
        counter.add()

    def rejections_total(self) -> int:
        while True:
            try:
                return sum(c.value() for c in self._rejections.values())
            except RuntimeError:  # a new verdict appeared mid-sum; retry
                continue

    def snapshot(self) -> ServerStats:
        # Read each rejection counter exactly once: value() walks every
        # thread shard, and a second read could disagree with the first
        # (the filter would then disagree with the value it filtered on).
        rejected = {}
        for verdict, counter in list(self._rejections.items()):
            count = counter.value()
            if count:
                rejected[verdict] = count
        return ServerStats(
            adds_accepted=self.adds_accepted.value(),
            adds_rejected=rejected,
            gets_served=self.gets_served.value(),
            signatures_served=self.signatures_served.value(),
        )


class CommunixServer:
    def __init__(self, config: ServerConfig | None = None,
                 authority: UserIdAuthority | None = None,
                 clock: Clock | None = None, store=None, metrics=None):
        """``store`` overrides the config-driven store; by default a
        :class:`~repro.store.SignatureStore` is opened (replaying any
        existing log) when ``config.data_dir`` is set.  ``metrics``
        overrides the config-driven registry (pass
        :data:`repro.obs.NULL_REGISTRY` to compile instrumentation out)."""
        self.config = config or ServerConfig()
        self.clock = clock or SystemClock()
        if metrics is None:
            metrics = (MetricsRegistry() if self.config.metrics_enabled
                       else NULL_REGISTRY)
        self.metrics = metrics
        self.authority = authority or UserIdAuthority(
            backend=self.config.crypto_backend
        )
        if store is None and self.config.data_dir:
            from repro.store import SignatureStore  # cycle-free lazy import

            store = SignatureStore(
                self.config.data_dir,
                fsync=self.config.fsync_policy,
                checkpoint_every=self.config.checkpoint_every,
            )
        self.store = store
        if store is not None and hasattr(store, "set_metrics"):
            # Covers caller-supplied stores too: the WAL's fsync wait
            # lands in stage.wal_fsync either way.
            store.set_metrics(metrics)
        self.database = SignatureDatabase(store=store)
        if store is not None:
            # Never re-issue a uid the pre-restart server already handed
            # out: quota and adjacency history must stay per-person.
            self.authority.advance(store.next_uid)
        self.quota = DailyQuota(
            self.clock, self.config.max_signatures_per_user_per_day
        )
        self.guard = None
        if self.config.guard_enabled:
            from repro.guard import AdmissionGuard, GuardConfig

            self.guard = AdmissionGuard(
                GuardConfig(window_s=self.config.guard_window_s,
                            budget=self.config.guard_budget,
                            tarpit_s=self.config.guard_tarpit_s),
                metrics=metrics,
            )
        self.validator = ServerSideValidator(
            self.authority, self.quota, self.database,
            token_cache_size=self.config.token_cache_size,
            metrics=metrics, guard=self.guard,
        )
        self._counters = _StatsCounters()
        #: Ring of the N slowest completed traces, fed by the transport
        #: (and the replication hub for forwarded ADDs), served by the
        #: admin plane's ``/traces``.  Always present — it only fills
        #: when traces are being minted.
        self.traces = TraceBuffer(self.config.trace_buffer_size)
        # Pre-resolved stage histograms: the hot path must not pay a
        # registry lookup per request.  _obs_on gates even the
        # perf_counter() reads when the null registry is installed.
        self._obs_on = metrics.enabled
        self._h_validate = metrics.histogram(f"stage.{STAGE_VALIDATE}")
        self._h_db_append = metrics.histogram(f"stage.{STAGE_DB_APPEND}")
        self._h_db_read = metrics.histogram(f"stage.{STAGE_DB_READ}")
        self._register_derived(metrics)

    def _register_derived(self, metrics) -> None:
        """Expose the v1 counters (and cache/database occupancy) through
        the registry as *derived* instruments: the existing accounting
        stays the single source of truth, so the hot path never counts
        twice and a Prometheus scrape can never disagree with STATS."""
        counters = self._counters
        cache = self.validator.token_cache
        database = self.database
        metrics.register_counter("adds_accepted",
                                 counters.adds_accepted.value)
        metrics.register_counter("adds_rejected", counters.rejections_total)
        metrics.register_counter("gets_served", counters.gets_served.value)
        metrics.register_counter("signatures_served",
                                 counters.signatures_served.value)
        metrics.register_counter("token_cache.hits", lambda: cache.hits)
        metrics.register_counter("token_cache.misses", lambda: cache.misses)
        metrics.register_counter("db.page_cache_hits",
                                 lambda: database.page_cache_hits)
        metrics.register_counter("db.page_cache_misses",
                                 lambda: database.page_cache_misses)
        metrics.register_gauge("db.size", database.__len__)
        metrics.register_gauge("db.segments", lambda: database.segment_count)
        metrics.register_gauge("token_cache.size", cache.__len__)

    @property
    def stats(self) -> ServerStats:
        """A consistent-enough snapshot of the sharded request counters."""
        stats = self._counters.snapshot()
        cache = self.validator.token_cache
        stats.token_cache_hits = cache.hits
        stats.token_cache_misses = cache.misses
        return stats

    # ----------------------------------------------------------- user ids
    def issue_user_token(self) -> str:
        """Hand out a fresh encrypted user ID.

        The paper deliberately leaves the Sybil-resistant issuing *service*
        out of scope (§III-C2) and so do we: this method is the trusted
        stand-in used by examples, tests, and benchmarks.
        """
        token = self.authority.issue(issued_at=int(self.clock.now()))
        if self.store is not None:
            # Best-effort watermark (persisted at the next checkpoint) so
            # even a user who only fetched a token keeps their uid across
            # a restart.
            self.store.note_next_uid(self.authority.next_uid)
        return token

    # ---------------------------------------------------------- durability
    def flush_store(self) -> None:
        """Force everything acked so far onto disk (no-op without a store);
        the transport calls this at the end of its graceful drain."""
        if self.store is not None and not self.store.closed:
            self.store.flush()

    def close(self) -> None:
        """Seal the store: final checkpoint manifest + flushed, closed log.
        The server object remains usable for reads; further ADDs would
        fail, so close last."""
        if self.store is not None and not self.store.closed:
            self.store.close(final_checkpoint=True)

    # ------------------------------------------------------------ requests
    def process_add(self, blob: bytes, token: str, trace=None) -> AddOutcome:
        """Handle ``ADD(sig)``: validate and store one signature blob.

        ``trace`` is an optional :class:`repro.obs.RequestTrace` the
        transport hands down when the slow-request log is armed; stage
        timings always go to the registry histograms when metrics are on.
        """
        timed = self._obs_on or trace is not None
        exemplar = trace.hex_id() if trace is not None else None
        if len(blob) > self.config.max_signature_bytes:
            return self._rejected("oversized")
        try:
            signature = DeadlockSignature.from_bytes(blob, origin=ORIGIN_REMOTE)
        except ValidationError:
            return self._rejected("malformed")
        if self.config.require_token:
            started = perf_counter() if timed else 0.0
            verdict, uid = self.validator.check_add(signature, token, trace)
            if timed:
                elapsed = perf_counter() - started
                self._h_validate.record(elapsed, exemplar)
                if trace is not None:
                    trace.stamp(STAGE_VALIDATE, elapsed)
            if not self.config.adjacency_check and verdict is ServerVerdict.ADJACENT:
                verdict, uid = ServerVerdict.OK, uid
            if verdict is not ServerVerdict.OK:
                return self._rejected(verdict.value)
        else:
            uid = 0
        started = perf_counter() if timed else 0.0
        try:
            index = self.database.append(signature, blob, uid, trace=trace)
        except (OSError, ValueError):  # disk failure / store already sealed
            # The write-ahead log could not take the record: the signature
            # is NOT durable, so it must not be acked as stored — and the
            # quota slot validation consumed must be given back, or a
            # full disk would burn a user's whole daily allowance on
            # retries that stored nothing.
            log.exception("store append failed; ADD not acknowledged")
            if self.config.require_token:
                self.quota.refund(uid)
            return self._rejected("store_error")
        if timed:
            elapsed = perf_counter() - started
            self._h_db_append.record(elapsed, exemplar)
            if trace is not None:
                trace.stamp(STAGE_DB_APPEND, elapsed)
        self._counters.adds_accepted.add()
        return AddOutcome(accepted=True, verdict="ok", index=index)

    def process_forwarded_add(self, blob: bytes, uid: int,
                              trace=None) -> AddOutcome:
        """ADD forwarded over the internal endpoint by a federated replica
        worker that already decoded the sender token to ``uid`` (see
        :mod:`repro.server.federation`).

        The log owner re-runs everything *global* — per-user quota,
        adjacency, dedup, the durable append — plus the cheap local checks
        (size, parse: the owner should not trust peers further than it
        must).  Request accounting is deliberately skipped: the forwarding
        worker already counted this ADD against its own client-facing
        stats, and the coordinator sums those — counting here too would
        double-book every forwarded request in the merged totals.
        """
        timed = self._obs_on or trace is not None
        exemplar = trace.hex_id() if trace is not None else None
        if len(blob) > self.config.max_signature_bytes:
            return AddOutcome(accepted=False, verdict="oversized")
        try:
            signature = DeadlockSignature.from_bytes(blob, origin=ORIGIN_REMOTE)
        except ValidationError:
            return AddOutcome(accepted=False, verdict="malformed")
        if self.config.require_token:
            started = perf_counter() if timed else 0.0
            verdict = self.validator.check_add_uid(signature, uid, trace)
            if timed:
                elapsed = perf_counter() - started
                self._h_validate.record(elapsed, exemplar)
                if trace is not None:
                    trace.stamp(STAGE_VALIDATE, elapsed)
            if (not self.config.adjacency_check
                    and verdict is ServerVerdict.ADJACENT):
                verdict = ServerVerdict.OK
            if verdict is not ServerVerdict.OK:
                return AddOutcome(accepted=False, verdict=verdict.value)
        started = perf_counter() if timed else 0.0
        try:
            index = self.database.append(signature, blob, uid, trace=trace)
        except (OSError, ValueError):
            log.exception("store append failed; forwarded ADD not "
                          "acknowledged")
            if self.config.require_token:
                self.quota.refund(uid)
            return AddOutcome(accepted=False, verdict="store_error")
        if timed:
            elapsed = perf_counter() - started
            self._h_db_append.record(elapsed, exemplar)
            if trace is not None:
                trace.stamp(STAGE_DB_APPEND, elapsed)
        return AddOutcome(accepted=True, verdict="ok", index=index)

    def _clamp_page(self, max_count: int | None) -> int | None:
        if max_count is None:
            return None
        return min(max(0, max_count), self.config.max_get_page)

    @staticmethod
    def _checked_index(from_index) -> int:
        """Reject non-integral ``from_index`` before it reaches the
        database (a float or string from a caller must surface as a clean
        protocol error, not a ``TypeError`` inside the worker pool).
        Negative indices are tolerated here and clamped by the database;
        the wire layer (``decode_get_args``) is stricter."""
        try:
            return operator.index(from_index)
        except TypeError as exc:
            raise ProtocolError("GET from_index must be an integer") from exc

    def process_get(self, from_index: int,
                    max_count: int | None = None) -> tuple[int, list[bytes]]:
        """Handle ``GET(k)``: blobs from database index ``k`` on.

        Returns ``(next_index, blobs)`` so the client can resume
        incrementally with ``GET(next_index)`` tomorrow.  With ``max_count``
        the page is bounded (and clamped to ``config.max_get_page``); use
        :meth:`process_get_page` when the ``more`` flag is needed too.
        """
        next_index, blobs, _ = self.process_get_page(from_index, max_count)
        return next_index, blobs

    def process_get_page(self, from_index: int, max_count: int | None = None
                         ) -> tuple[int, list[bytes], bool]:
        """Paginated GET: ``(next_index, blobs, more)``."""
        next_index, blobs, more = self.database.blobs_page(
            self._checked_index(from_index), self._clamp_page(max_count)
        )
        self._counters.gets_served.add()
        self._counters.signatures_served.add(len(blobs))
        return next_index, blobs, more

    def process_get_wire(self, from_index: int, max_count: int | None = None,
                         trace=None
                         ) -> tuple[int, int, tuple[bytes, ...], bool]:
        """GET for the transport hot path: ``(next_index, count, chunks,
        more)`` where ``chunks`` are the database's precomposed response
        records (cache hits are O(segments), no per-blob work)."""
        timed = self._obs_on or trace is not None
        started = perf_counter() if timed else 0.0
        next_index, count, chunks, more = self.database.wire_from(
            self._checked_index(from_index), self._clamp_page(max_count)
        )
        if timed:
            elapsed = perf_counter() - started
            self._h_db_read.record(
                elapsed, trace.hex_id() if trace is not None else None
            )
            if trace is not None:
                trace.stamp(STAGE_DB_READ, elapsed)
        self._counters.gets_served.add()
        self._counters.signatures_served.add(count)
        return next_index, count, chunks, more

    def _rejected(self, verdict: str) -> AddOutcome:
        self._counters.note_rejection(verdict)
        return AddOutcome(accepted=False, verdict=verdict)

    # --------------------------------------------------------------- stats
    def stats_payload(self, version: int = 1) -> dict:
        """The STATS response body for the requested schema version.

        v1 is the original six-field shape, preserved byte-for-key for
        old clients.  v2 is a superset: everything v1 has, plus the
        rejection breakdown, ``signatures_served``, token-cache
        occupancy, and the full registry snapshot (per-stage histograms
        in the loadgen wire form, event-loop gauges, derived counters).
        """
        stats = self.stats
        payload = {
            "ok": True,
            "database_size": len(self.database),
            "adds_accepted": stats.adds_accepted,
            "gets_served": stats.gets_served,
            "token_cache_hits": stats.token_cache_hits,
            "token_cache_misses": stats.token_cache_misses,
        }
        if version < 2:
            return payload
        payload["version"] = STATS_VERSION
        payload["adds_rejected"] = stats.adds_rejected
        payload["signatures_served"] = stats.signatures_served
        payload["database_segments"] = self.database.segment_count
        payload["token_cache"] = self.validator.token_cache.stats()
        if self.guard is not None:
            payload["guard"] = self.guard.stats_payload()
        payload["metrics"] = self.metrics.snapshot()
        return payload
