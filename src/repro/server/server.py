"""The Communix server's request-processing core (paper §III-B/C2, §IV-A).

``process_add`` and ``process_get`` are the two routines the paper's Fig. 2
invokes "from 1,000-100,000 simultaneous threads"; they are fully
thread-safe and independent of any transport.  :class:`ServerTransport`
wraps them for the network (Fig. 3); benchmarks and tests may call them
directly.

Request accounting uses :class:`ShardedCounter` — per-thread counter shards
aggregated on read — so the hot path takes no stats lock at all.
"""

from __future__ import annotations

import operator
import threading
from dataclasses import dataclass, field

from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.crypto.userid import UserIdAuthority
from repro.server.database import SignatureDatabase
from repro.server.ratelimit import DailyQuota
from repro.server.validation import ServerSideValidator, ServerVerdict
from repro.util.clock import Clock, SystemClock
from repro.util.errors import ProtocolError, ValidationError
from repro.util.logging import get_logger

log = get_logger("server")


@dataclass
class ServerConfig:
    max_signatures_per_user_per_day: int = 10
    require_token: bool = True
    adjacency_check: bool = True
    #: Upper bound on accepted signature blob size; a 2-thread signature is
    #: ~1.7 KB (paper §IV-A), so this is generous while bounding abuse.
    max_signature_bytes: int = 64 * 1024
    #: Hard cap on one paginated GET page; an oversized ``max_count`` from a
    #: client is clamped here.  Unpaginated (legacy) GETs are never clamped.
    max_get_page: int = 4096
    #: Durability: directory for the segmented write-ahead log (see
    #: :mod:`repro.store`).  ``None`` keeps the seed behavior — memory only,
    #: the database dies with the process.
    data_dir: str | None = None
    #: Store fsync policy: ``always`` (an acked ADD survives kill -9),
    #: ``interval:<ms>`` (background flusher; bounded loss window), or
    #: ``never`` (OS-paced; clean shutdown still flushes).
    fsync_policy: str = "always"
    #: Write a checkpoint manifest every this many accepted signatures
    #: (plus one on clean shutdown); 0 checkpoints only on shutdown.
    checkpoint_every: int = 4096
    #: AES backend for user-ID tokens: a registered name (``pure`` is the
    #: FIPS-197 reference, ``fast`` the OpenSSL path via ``cryptography``),
    #: or ``None``/``"auto"`` for the default order (``REPRO_CRYPTO_BACKEND``
    #: env var, then fast-when-available).  Ignored when an ``authority``
    #: object is handed to :class:`CommunixServer` directly.
    crypto_backend: str | None = None
    #: Bound on the validator's decoded-token LRU; a forged-token flood
    #: cannot grow it past this many entries.
    token_cache_size: int = 65_536


@dataclass
class AddOutcome:
    accepted: bool
    verdict: str
    index: int | None = None


class ShardedCounter:
    """A counter each thread bumps in its own dict slot (no shared lock).

    Under the GIL a single ``d[key] = d.get(key, 0) + n`` with a key only
    this thread writes is free of lost updates; ``value()`` aggregates all
    shards on read.  Writers never contend, which is what lets Fig. 2's
    thousands of simultaneous request threads count without serializing.
    """

    __slots__ = ("_shards",)

    def __init__(self) -> None:
        self._shards: dict[int, int] = {}

    def add(self, n: int = 1) -> None:
        shards = self._shards
        ident = threading.get_ident()
        shards[ident] = shards.get(ident, 0) + n

    def value(self) -> int:
        while True:
            try:
                return sum(self._shards.values())
            except RuntimeError:  # a new shard appeared mid-sum; retry
                continue


@dataclass
class ServerStats:
    """A point-in-time aggregation of the server's sharded counters."""

    adds_accepted: int = 0
    adds_rejected: dict[str, int] = field(default_factory=dict)
    gets_served: int = 0
    signatures_served: int = 0
    token_cache_hits: int = 0
    token_cache_misses: int = 0

    def note_rejection(self, verdict: str) -> None:
        self.adds_rejected[verdict] = self.adds_rejected.get(verdict, 0) + 1


class _StatsCounters:
    """Lock-free request accounting; ``snapshot()`` builds a ServerStats."""

    def __init__(self) -> None:
        self.adds_accepted = ShardedCounter()
        self.gets_served = ShardedCounter()
        self.signatures_served = ShardedCounter()
        self._rejections: dict[str, ShardedCounter] = {}
        self._rejections_lock = threading.Lock()  # rare path: new verdicts

    def note_rejection(self, verdict: str) -> None:
        counter = self._rejections.get(verdict)
        if counter is None:
            with self._rejections_lock:
                counter = self._rejections.setdefault(verdict, ShardedCounter())
        counter.add()

    def snapshot(self) -> ServerStats:
        return ServerStats(
            adds_accepted=self.adds_accepted.value(),
            adds_rejected={
                verdict: counter.value()
                for verdict, counter in self._rejections.items()
                if counter.value()
            },
            gets_served=self.gets_served.value(),
            signatures_served=self.signatures_served.value(),
        )


class CommunixServer:
    def __init__(self, config: ServerConfig | None = None,
                 authority: UserIdAuthority | None = None,
                 clock: Clock | None = None, store=None):
        """``store`` overrides the config-driven store; by default a
        :class:`~repro.store.SignatureStore` is opened (replaying any
        existing log) when ``config.data_dir`` is set."""
        self.config = config or ServerConfig()
        self.clock = clock or SystemClock()
        self.authority = authority or UserIdAuthority(
            backend=self.config.crypto_backend
        )
        if store is None and self.config.data_dir:
            from repro.store import SignatureStore  # cycle-free lazy import

            store = SignatureStore(
                self.config.data_dir,
                fsync=self.config.fsync_policy,
                checkpoint_every=self.config.checkpoint_every,
            )
        self.store = store
        self.database = SignatureDatabase(store=store)
        if store is not None:
            # Never re-issue a uid the pre-restart server already handed
            # out: quota and adjacency history must stay per-person.
            self.authority.advance(store.next_uid)
        self.quota = DailyQuota(
            self.clock, self.config.max_signatures_per_user_per_day
        )
        self.validator = ServerSideValidator(
            self.authority, self.quota, self.database,
            token_cache_size=self.config.token_cache_size,
        )
        self._counters = _StatsCounters()

    @property
    def stats(self) -> ServerStats:
        """A consistent-enough snapshot of the sharded request counters."""
        stats = self._counters.snapshot()
        cache = self.validator.token_cache
        stats.token_cache_hits = cache.hits
        stats.token_cache_misses = cache.misses
        return stats

    # ----------------------------------------------------------- user ids
    def issue_user_token(self) -> str:
        """Hand out a fresh encrypted user ID.

        The paper deliberately leaves the Sybil-resistant issuing *service*
        out of scope (§III-C2) and so do we: this method is the trusted
        stand-in used by examples, tests, and benchmarks.
        """
        token = self.authority.issue(issued_at=int(self.clock.now()))
        if self.store is not None:
            # Best-effort watermark (persisted at the next checkpoint) so
            # even a user who only fetched a token keeps their uid across
            # a restart.
            self.store.note_next_uid(self.authority.next_uid)
        return token

    # ---------------------------------------------------------- durability
    def flush_store(self) -> None:
        """Force everything acked so far onto disk (no-op without a store);
        the transport calls this at the end of its graceful drain."""
        if self.store is not None and not self.store.closed:
            self.store.flush()

    def close(self) -> None:
        """Seal the store: final checkpoint manifest + flushed, closed log.
        The server object remains usable for reads; further ADDs would
        fail, so close last."""
        if self.store is not None and not self.store.closed:
            self.store.close(final_checkpoint=True)

    # ------------------------------------------------------------ requests
    def process_add(self, blob: bytes, token: str) -> AddOutcome:
        """Handle ``ADD(sig)``: validate and store one signature blob."""
        if len(blob) > self.config.max_signature_bytes:
            return self._rejected("oversized")
        try:
            signature = DeadlockSignature.from_bytes(blob, origin=ORIGIN_REMOTE)
        except ValidationError:
            return self._rejected("malformed")
        if self.config.require_token:
            verdict, uid = self.validator.check_add(signature, token)
            if not self.config.adjacency_check and verdict is ServerVerdict.ADJACENT:
                verdict, uid = ServerVerdict.OK, uid
            if verdict is not ServerVerdict.OK:
                return self._rejected(verdict.value)
        else:
            uid = 0
        try:
            index = self.database.append(signature, blob, uid)
        except (OSError, ValueError):  # disk failure / store already sealed
            # The write-ahead log could not take the record: the signature
            # is NOT durable, so it must not be acked as stored — and the
            # quota slot validation consumed must be given back, or a
            # full disk would burn a user's whole daily allowance on
            # retries that stored nothing.
            log.exception("store append failed; ADD not acknowledged")
            if self.config.require_token:
                self.quota.refund(uid)
            return self._rejected("store_error")
        self._counters.adds_accepted.add()
        return AddOutcome(accepted=True, verdict="ok", index=index)

    def _clamp_page(self, max_count: int | None) -> int | None:
        if max_count is None:
            return None
        return min(max(0, max_count), self.config.max_get_page)

    @staticmethod
    def _checked_index(from_index) -> int:
        """Reject non-integral ``from_index`` before it reaches the
        database (a float or string from a caller must surface as a clean
        protocol error, not a ``TypeError`` inside the worker pool).
        Negative indices are tolerated here and clamped by the database;
        the wire layer (``decode_get_args``) is stricter."""
        try:
            return operator.index(from_index)
        except TypeError as exc:
            raise ProtocolError("GET from_index must be an integer") from exc

    def process_get(self, from_index: int,
                    max_count: int | None = None) -> tuple[int, list[bytes]]:
        """Handle ``GET(k)``: blobs from database index ``k`` on.

        Returns ``(next_index, blobs)`` so the client can resume
        incrementally with ``GET(next_index)`` tomorrow.  With ``max_count``
        the page is bounded (and clamped to ``config.max_get_page``); use
        :meth:`process_get_page` when the ``more`` flag is needed too.
        """
        next_index, blobs, _ = self.process_get_page(from_index, max_count)
        return next_index, blobs

    def process_get_page(self, from_index: int, max_count: int | None = None
                         ) -> tuple[int, list[bytes], bool]:
        """Paginated GET: ``(next_index, blobs, more)``."""
        next_index, blobs, more = self.database.blobs_page(
            self._checked_index(from_index), self._clamp_page(max_count)
        )
        self._counters.gets_served.add()
        self._counters.signatures_served.add(len(blobs))
        return next_index, blobs, more

    def process_get_wire(self, from_index: int, max_count: int | None = None
                         ) -> tuple[int, int, tuple[bytes, ...], bool]:
        """GET for the transport hot path: ``(next_index, count, chunks,
        more)`` where ``chunks`` are the database's precomposed response
        records (cache hits are O(segments), no per-blob work)."""
        next_index, count, chunks, more = self.database.wire_from(
            self._checked_index(from_index), self._clamp_page(max_count)
        )
        self._counters.gets_served.add()
        self._counters.signatures_served.add(count)
        return next_index, count, chunks, more

    def _rejected(self, verdict: str) -> AddOutcome:
        self._counters.note_rejection(verdict)
        return AddOutcome(accepted=False, verdict=verdict)
