"""The Communix server's request-processing core (paper §III-B/C2, §IV-A).

``process_add`` and ``process_get`` are the two routines the paper's Fig. 2
invokes "from 1,000-100,000 simultaneous threads"; they are fully
thread-safe and independent of any transport.  :class:`ServerTransport`
wraps them for the network (Fig. 3); benchmarks and tests may call them
directly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.crypto.userid import UserIdAuthority
from repro.server.database import SignatureDatabase
from repro.server.ratelimit import DailyQuota
from repro.server.validation import ServerSideValidator, ServerVerdict
from repro.util.clock import Clock, SystemClock
from repro.util.errors import ValidationError
from repro.util.logging import get_logger

log = get_logger("server")


@dataclass
class ServerConfig:
    max_signatures_per_user_per_day: int = 10
    require_token: bool = True
    adjacency_check: bool = True
    #: Upper bound on accepted signature blob size; a 2-thread signature is
    #: ~1.7 KB (paper §IV-A), so this is generous while bounding abuse.
    max_signature_bytes: int = 64 * 1024


@dataclass
class AddOutcome:
    accepted: bool
    verdict: str
    index: int | None = None


@dataclass
class ServerStats:
    adds_accepted: int = 0
    adds_rejected: dict[str, int] = field(default_factory=dict)
    gets_served: int = 0
    signatures_served: int = 0

    def note_rejection(self, verdict: str) -> None:
        self.adds_rejected[verdict] = self.adds_rejected.get(verdict, 0) + 1


class CommunixServer:
    def __init__(self, config: ServerConfig | None = None,
                 authority: UserIdAuthority | None = None,
                 clock: Clock | None = None):
        self.config = config or ServerConfig()
        self.clock = clock or SystemClock()
        self.authority = authority or UserIdAuthority()
        self.database = SignatureDatabase()
        self.quota = DailyQuota(
            self.clock, self.config.max_signatures_per_user_per_day
        )
        self.validator = ServerSideValidator(
            self.authority, self.quota, self.database
        )
        self.stats = ServerStats()
        self._stats_lock = threading.Lock()

    # ----------------------------------------------------------- user ids
    def issue_user_token(self) -> str:
        """Hand out a fresh encrypted user ID.

        The paper deliberately leaves the Sybil-resistant issuing *service*
        out of scope (§III-C2) and so do we: this method is the trusted
        stand-in used by examples, tests, and benchmarks.
        """
        return self.authority.issue(issued_at=int(self.clock.now()))

    # ------------------------------------------------------------ requests
    def process_add(self, blob: bytes, token: str) -> AddOutcome:
        """Handle ``ADD(sig)``: validate and store one signature blob."""
        if len(blob) > self.config.max_signature_bytes:
            return self._rejected("oversized")
        try:
            signature = DeadlockSignature.from_bytes(blob, origin=ORIGIN_REMOTE)
        except ValidationError:
            return self._rejected("malformed")
        if self.config.require_token:
            verdict, uid = self.validator.check_add(signature, token)
            if not self.config.adjacency_check and verdict is ServerVerdict.ADJACENT:
                verdict, uid = ServerVerdict.OK, uid
            if verdict is not ServerVerdict.OK:
                return self._rejected(verdict.value)
        else:
            uid = 0
        index = self.database.append(signature, blob, uid)
        with self._stats_lock:
            self.stats.adds_accepted += 1
        return AddOutcome(accepted=True, verdict="ok", index=index)

    def process_get(self, from_index: int) -> tuple[int, list[bytes]]:
        """Handle ``GET(k)``: all blobs from database index ``k`` on.

        Returns ``(next_index, blobs)`` so the client can resume
        incrementally with ``GET(next_index)`` tomorrow.
        """
        next_index, blobs = self.database.blobs_from(from_index)
        with self._stats_lock:
            self.stats.gets_served += 1
            self.stats.signatures_served += len(blobs)
        return next_index, blobs

    def _rejected(self, verdict: str) -> AddOutcome:
        with self._stats_lock:
            self.stats.note_rejection(verdict)
        return AddOutcome(accepted=False, verdict=verdict)
