"""Single-writer log-owner protocol for the federated server tier.

Federation (see :mod:`repro.server.federation`) runs N worker processes
behind one listen endpoint, but exactly **one** process — the *log owner*,
worker 0 — may touch the write-ahead log: multi-process appends to a
shared segmented log would interleave records and tear the single-writer
invariants the store is built on.  The other workers (*replicas*) keep a
full in-memory copy of the database for GETs and forward every state
mutation to the owner over an internal ``unix://`` endpoint:

* **ADD** — the replica does the per-request work that needs no global
  state (size/parse checks, AES token decode) and forwards ``(uid, blob)``.
  The owner re-validates against global state (per-user quota, adjacency,
  dedup), appends to WAL + database, and replies with the verdict.  The
  replica acks its client **only after** the owner's durability reply —
  an acked ADD is on disk (under ``--fsync always``) no matter which
  worker accepted the connection.
* **ISSUE_ID** — forwarded whole; uid allocation and the persisted uid
  watermark are global.
* **apply-stream** — each replica holds a subscription the owner feeds
  with every database entry in log order (backfill from the replica's
  current length, then live tail).  Replicas install entries via
  :meth:`~repro.server.database.SignatureDatabase.apply_replicated`, so a
  GET served by any worker converges on the owner's history.

Wire format: the transport's length-prefixed frames
(:func:`~repro.server.protocol.write_frame` /
:func:`~repro.server.protocol.read_frame`) over blocking sockets, one
octet of opcode first.  The channel is process-local (coordinator-spawned
workers on one machine), so there is no auth inside it — the external
trust boundary stays the public transport.
"""

from __future__ import annotations

import select
import socket
import struct
import threading
import time
from time import perf_counter

from repro.net import dial, listen as net_listen, parse_endpoint
from repro.obs import (
    STAGE_APPLY_LAG,
    STAGE_GUARD_CHECK,
    STAGE_OWNER_QUEUE,
    STAGE_REPL_FORWARD,
    STAGE_DB_APPEND,
    STAGE_VALIDATE,
    RequestTrace,
    decode_trace_stages,
    encode_trace_stages,
)
from repro.server.protocol import read_frame, write_frame
from repro.server.server import AddOutcome, CommunixServer, ServerConfig
from repro.util.errors import ProtocolError
from repro.util.logging import get_logger

log = get_logger("server.replication")

#: Replica -> owner requests.
OP_FORWARD_ADD = b"A"
OP_FORWARD_ISSUE = b"I"
OP_SUBSCRIBE = b"S"
#: Owner -> replica replies / stream records.
REPLY_ADD = b"a"
REPLY_TOKEN = b"t"
REPLY_ERROR = b"x"
STREAM_ENTRY = b"e"

#: Safety-net wait for the apply-stream publisher.  The owner *pushes* a
#: wakeup to every subscriber the instant the database publishes an entry
#: (see :meth:`SignatureDatabase.add_publish_listener`), so the stream
#: normally never sleeps this long — the timeout only bounds staleness if
#: a wakeup were ever lost, and keeps idle streams cheap (20 wakeups/s
#: instead of the 500/s the old 2 ms poll-walk burned).
PUBLISH_FALLBACK_S = 0.05

_U64 = struct.Struct(">Q")
_U16 = struct.Struct(">H")
_F64 = struct.Struct(">d")

#: Forward-ADD request: opcode, uid, the replica's trace id (0 =
#: untraced), then the signature blob to the end of the frame.
_ADD_HDR = 1 + 2 * _U64.size
#: Stream entry: opcode, entry index, sender uid, the owner's published
#: count and CLOCK_MONOTONIC timestamp at send time (system-wide on
#: Linux, so the replica can subtract it — the apply-lag instrument),
#: then the blob.
_STREAM_HDR = 1 + 3 * _U64.size + _F64.size


def _add_request(uid: int, blob: bytes, trace_id: int = 0) -> bytes:
    return OP_FORWARD_ADD + _U64.pack(uid) + _U64.pack(trace_id) + blob


def _stream_entry(index: int, uid: int, blob: bytes,
                  published: int, publish_ts: float) -> bytes:
    return (STREAM_ENTRY + _U64.pack(index) + _U64.pack(uid)
            + _U64.pack(published) + _F64.pack(publish_ts) + blob)


class ForwardError(Exception):
    """The internal endpoint failed (owner crashed / channel severed);
    the replica must fail the client request rather than guess."""


class ReplicationHub:
    """Owner-side: accept replica connections, serve forwards, publish
    the apply-stream.  Plain blocking threads — at most a handful of
    replica workers ever connect, so a thread per connection is simpler
    and no less scalable than folding this into the event loop."""

    def __init__(self, server: CommunixServer, endpoint,
                 fallback_wait: float = PUBLISH_FALLBACK_S):
        self._server = server
        self._endpoint = parse_endpoint(endpoint)
        self._fallback_wait = fallback_wait
        self._listener: socket.socket | None = None
        self.bound_endpoint = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._conns_lock = threading.Lock()
        #: Per-subscriber wakeup events, set by the database's publish
        #: listener so streams tail new entries push-style.
        self._wakeups: list[threading.Event] = []
        self.forwarded_adds = 0  # owner-side visibility (not client stats)
        self.forwarded_issues = 0
        server.database.add_publish_listener(self._on_publish)
        # Owner-side replication telemetry, derived so the attributes
        # above stay the single source of truth.
        metrics = server.metrics
        metrics.register_counter("replication.forwarded_adds",
                                 lambda: self.forwarded_adds)
        metrics.register_counter("replication.forwarded_issues",
                                 lambda: self.forwarded_issues)
        metrics.register_gauge("replication.subscribers",
                               lambda: len(self._wakeups))

    def _on_publish(self) -> None:
        """Database publish hook: runs on the appender's thread, outside
        the append lock.  Event.set() is cheap and never blocks, so the
        owner's write path pays nanoseconds, not a poll interval."""
        with self._conns_lock:
            wakeups = list(self._wakeups)
        for event in wakeups:
            event.set()

    def start(self) -> None:
        sock, bound = net_listen(self._endpoint, backlog=64)
        sock.setblocking(True)
        self._listener = sock
        self.bound_endpoint = bound
        accept = threading.Thread(target=self._accept_loop,
                                  name="communix-repl-accept", daemon=True)
        accept.start()
        self._threads.append(accept)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            conn.setblocking(True)
            with self._conns_lock:
                self._conns.append(conn)
            worker = threading.Thread(target=self._serve, args=(conn,),
                                      name="communix-repl-conn", daemon=True)
            worker.start()
            self._threads.append(worker)

    def _serve(self, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                try:
                    frame = read_frame(conn)
                except (ProtocolError, OSError):
                    return
                if frame is None:
                    return
                op = frame[:1]
                if op == OP_FORWARD_ADD:
                    uid = _U64.unpack_from(frame, 1)[0]
                    trace_id = _U64.unpack_from(frame, 1 + _U64.size)[0]
                    # The owner stamps its stages onto the *replica's*
                    # trace id — one trace across the process boundary;
                    # the stamps ride back in the durability reply.
                    trace = (RequestTrace(op="fwd_add", trace_id=trace_id)
                             if trace_id else None)
                    outcome = self._server.process_forwarded_add(
                        frame[_ADD_HDR:], uid, trace
                    )
                    self.forwarded_adds += 1
                    if trace is not None:
                        # Owner-side /traces can resolve the id too.
                        self._server.traces.note(trace)
                    stages = (encode_trace_stages(trace.stages)
                              if trace is not None else b"\x00")
                    verdict_raw = outcome.verdict.encode("utf-8")
                    reply = (REPLY_ADD
                             + (b"\x01" if outcome.accepted else b"\x00")
                             + _U64.pack(outcome.index if outcome.index
                                         is not None else 2**64 - 1)
                             + _U16.pack(len(verdict_raw)) + verdict_raw
                             + stages)
                    write_frame(conn, reply)
                elif op == OP_FORWARD_ISSUE:
                    try:
                        token = self._server.issue_user_token()
                    except Exception:  # noqa: BLE001 - must answer the peer
                        log.exception("forwarded ISSUE_ID failed")
                        write_frame(conn, REPLY_ERROR)
                        continue
                    self.forwarded_issues += 1
                    write_frame(conn, REPLY_TOKEN + token.encode("utf-8"))
                elif op == OP_SUBSCRIBE:
                    from_index = _U64.unpack_from(frame, 1)[0]
                    self._stream(conn, from_index)
                    return  # _stream owns the connection until EOF
                else:
                    write_frame(conn, REPLY_ERROR)
        finally:
            self._drop_conn(conn)

    def _stream(self, conn: socket.socket, from_index: int) -> None:
        """Feed one replica the apply-stream from ``from_index`` on:
        everything the database already holds, then the live tail as the
        owner pushes publish wakeups.  The database is append-only and
        ``entry(i)`` is stable once published, so a plain index walk — no
        queue between appender and publisher — is race-free.  Clearing
        the wakeup *before* sampling ``len(database)`` makes the handoff
        lose-proof: a publish after the clear re-sets the event, a
        publish before it is already visible in the length."""
        database = self._server.database
        next_index = from_index
        wakeup = threading.Event()
        with self._conns_lock:
            self._wakeups.append(wakeup)
        try:
            while not self._stop.is_set():
                wakeup.clear()
                published = len(database)
                while next_index < published:
                    entry = database.entry(next_index)
                    write_frame(conn, _stream_entry(
                        entry.index, entry.sender_uid, entry.blob,
                        published, time.monotonic()
                    ))
                    next_index += 1
                if next_index >= len(database):
                    if not wakeup.wait(self._fallback_wait):
                        # Idle past the fallback: probe for peer EOF so a
                        # dead replica's stream thread (and its wakeup
                        # registration) doesn't linger until the next
                        # publish tries to write.  Subscribers never send
                        # after SUBSCRIBE, so readable means closed.
                        ready, _, _ = select.select([conn], [], [], 0)
                        if ready and not conn.recv(1, socket.MSG_PEEK):
                            return
        except OSError:
            return  # replica went away; its crash is the coordinator's job
        finally:
            with self._conns_lock:
                if wakeup in self._wakeups:
                    self._wakeups.remove(wakeup)

    def _drop_conn(self, conn: socket.socket) -> None:
        with self._conns_lock:
            if conn in self._conns:
                self._conns.remove(conn)
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

    def stop(self) -> None:
        self._stop.set()
        with self._conns_lock:
            wakeups = list(self._wakeups)
        for event in wakeups:
            event.set()  # streams re-check _stop instead of sleeping it off
        if self._listener is not None:
            # shutdown() before close(): a close alone does not wake a
            # thread blocked inside accept() — the in-kernel syscall keeps
            # the file description (and a unix address binding) alive
            # until it returns, which would leak the accept thread and
            # hold the internal endpoint hostage for a restarted hub.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)


class LogForwardClient:
    """Replica-side: forward ADD/ISSUE_ID to the owner.

    One connection **per calling thread** (the transport's worker pool
    calls this concurrently and frames must not interleave); connections
    are dialed lazily and redialed once per call after an error, so a
    briefly-unavailable owner costs one failed request, not a poisoned
    socket forever."""

    def __init__(self, endpoint, timeout: float = 30.0):
        self._endpoint = parse_endpoint(endpoint)
        self._timeout = timeout
        self._local = threading.local()
        self._all: list[socket.socket] = []
        self._all_lock = threading.Lock()
        self._closed = False

    def _conn(self) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if sock is None:
            if self._closed:
                raise ForwardError("forward client is closed")
            sock = dial(self._endpoint, timeout=self._timeout)
            self._local.sock = sock
            with self._all_lock:
                self._all.append(sock)
        return sock

    def _drop(self) -> None:
        sock = getattr(self._local, "sock", None)
        self._local.sock = None
        if sock is not None:
            with self._all_lock:
                if sock in self._all:
                    self._all.remove(sock)
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _roundtrip(self, request: bytes) -> bytes:
        try:
            sock = self._conn()
            write_frame(sock, request)
            reply = read_frame(sock)
        except (OSError, ProtocolError) as exc:
            self._drop()
            raise ForwardError(f"log owner unreachable: {exc}") from exc
        if reply is None:
            self._drop()
            raise ForwardError("log owner closed the internal connection")
        return reply

    def forward_add(self, uid: int, blob: bytes, trace_id: int = 0
                    ) -> tuple[AddOutcome, dict[str, float]]:
        """Forward one ADD; returns the owner's outcome plus the stage
        stamps the owner recorded on ``trace_id`` (empty when untraced
        or when the reply's stage section is malformed)."""
        reply = self._roundtrip(_add_request(uid, blob, trace_id))
        if reply[:1] != REPLY_ADD or len(reply) < 2 + _U64.size + _U16.size:
            self._drop()
            raise ForwardError("malformed ADD reply from log owner")
        accepted = reply[1:2] == b"\x01"
        index = _U64.unpack_from(reply, 2)[0]
        offset = 2 + _U64.size
        (verdict_len,) = _U16.unpack_from(reply, offset)
        offset += _U16.size
        verdict = reply[offset:offset + verdict_len].decode("utf-8", "replace")
        offset += verdict_len
        try:
            stages = decode_trace_stages(reply[offset:])
        except (IndexError, struct.error):
            # Telemetry must never fail the request it describes.
            stages = {}
        outcome = AddOutcome(accepted=accepted, verdict=verdict,
                             index=index if index != 2**64 - 1 else None)
        return outcome, stages

    def forward_issue(self) -> str:
        reply = self._roundtrip(OP_FORWARD_ISSUE)
        if reply[:1] != REPLY_TOKEN:
            raise ForwardError("log owner could not issue a user id")
        return reply[1:].decode("utf-8")

    def close(self) -> None:
        self._closed = True
        with self._all_lock:
            socks, self._all = list(self._all), []
        for sock in socks:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass


class ReplicaFeed(threading.Thread):
    """Replica-side apply-stream consumer: one long-lived subscription
    installing owner-published entries into the local database."""

    def __init__(self, database, endpoint, metrics=None):
        super().__init__(name="communix-replica-feed", daemon=True)
        self._database = database
        self._endpoint = parse_endpoint(endpoint)
        self._stop_event = threading.Event()
        self._sock: socket.socket | None = None
        self.applied = 0
        # Replication health: per-entry owner-publish -> local-apply
        # latency (CLOCK_MONOTONIC is system-wide, so the cross-process
        # subtraction is sound on Linux) and the entry-count lag gauge.
        if metrics is not None and metrics.enabled:
            self._h_apply_lag = metrics.histogram(f"stage.{STAGE_APPLY_LAG}")
            self._g_lag = metrics.gauge("replication.lag")
        else:
            self._h_apply_lag = None
            self._g_lag = None

    def run(self) -> None:
        try:
            sock = dial(self._endpoint, timeout=10.0)
        except OSError:
            log.exception("replica feed could not reach the log owner")
            return
        sock.settimeout(None)  # the stream blocks between entries
        self._sock = sock
        try:
            write_frame(sock, OP_SUBSCRIBE + _U64.pack(len(self._database)))
            while not self._stop_event.is_set():
                frame = read_frame(sock)
                if frame is None:
                    return  # owner shut down (or crashed: coordinator's job)
                if frame[:1] != STREAM_ENTRY:
                    raise ProtocolError("unexpected apply-stream frame")
                index = _U64.unpack_from(frame, 1)[0]
                uid = _U64.unpack_from(frame, 1 + _U64.size)[0]
                published = _U64.unpack_from(frame, 1 + 2 * _U64.size)[0]
                (publish_ts,) = _F64.unpack_from(frame, 1 + 3 * _U64.size)
                blob = frame[_STREAM_HDR:]
                if self._database.apply_replicated(index, blob, uid):
                    self.applied += 1
                if self._h_apply_lag is not None:
                    self._h_apply_lag.record(
                        max(0.0, time.monotonic() - publish_ts)
                    )
                    self._g_lag.set(
                        max(0, published - len(self._database))
                    )
        except (ProtocolError, OSError, ValueError):
            if not self._stop_event.is_set():
                log.exception("replica apply-stream failed; local GETs "
                              "will serve a frozen snapshot")
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def stop(self) -> None:
        self._stop_event.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        if self.is_alive():
            self.join(timeout=5.0)


class FederatedWorkerServer(CommunixServer):
    """The request core run by replica workers: local validation, owner
    forwarding for mutations, replica-fed database for reads.

    No store is opened here (``data_dir`` is the owner's alone), so the
    in-memory database starts empty and fills from the apply-stream's
    backfill.  GETs during that window serve a shorter prefix — clients
    paginate until ``more`` clears, so they simply fetch the rest on the
    next page."""

    def __init__(self, config: ServerConfig, internal_endpoint,
                 authority=None, clock=None, metrics=None):
        replica_config = ServerConfig(**{**config.__dict__, "data_dir": None})
        super().__init__(config=replica_config, authority=authority,
                         clock=clock, metrics=metrics)
        self._forward = LogForwardClient(internal_endpoint)
        self._feed = ReplicaFeed(self.database, internal_endpoint,
                                 metrics=self.metrics)
        # Cross-process stage histograms (pre-resolved; see CommunixServer
        # on why): the whole forward hop, and the hop minus the owner's
        # own stamped stages — wire transit plus owner-side queueing.
        self._h_forward = self.metrics.histogram(
            f"stage.{STAGE_REPL_FORWARD}"
        )
        self._h_owner_queue = self.metrics.histogram(
            f"stage.{STAGE_OWNER_QUEUE}"
        )
        self._h_guard_uid = (
            self.metrics.histogram(f"stage.{STAGE_GUARD_CHECK}")
            if self.guard is not None else None
        )

    def start_replication(self) -> None:
        self._feed.start()

    @property
    def replica_feed(self) -> ReplicaFeed:
        return self._feed

    def process_add(self, blob: bytes, token: str, trace=None) -> AddOutcome:
        """Local cheap checks + AES decode, then forward; the ack waits
        for the owner's durability reply, never this process's state.

        The request's trace id rides the forward hop, the owner stamps
        its stages on it, and the durability reply's stamps are folded
        back into ``trace`` — one end-to-end trace for a two-process ADD.
        """
        timed = self._obs_on or trace is not None
        exemplar = trace.hex_id() if trace is not None else None
        if len(blob) > self.config.max_signature_bytes:
            return self._rejected("oversized")
        if self.config.require_token:
            uid = self.validator.resolve_uid(token, trace)
            if uid is None:
                return self._rejected("bad_token")
        else:
            uid = 0
        if self.guard is not None:
            started = perf_counter() if timed else 0.0
            admitted = self.guard.admit_uid(uid)
            if timed:
                elapsed = perf_counter() - started
                if self._h_guard_uid is not None:
                    self._h_guard_uid.record(elapsed, exemplar)
                if trace is not None:
                    trace.stamp(STAGE_GUARD_CHECK, elapsed)
            if not admitted:
                # Replica-local shed on the sender dimension: a flooding
                # uid never costs the owner a forward round-trip.  The
                # signature dimension (which needs the parsed sig_id)
                # still runs on the owner, whose own guard re-checks the
                # forwarded ADD.
                return self._rejected("shed")
        started = perf_counter() if timed else 0.0
        try:
            outcome, owner_stages = self._forward.forward_add(
                uid, blob, trace.trace_id if trace is not None else 0
            )
        except ForwardError:
            log.exception("ADD forward failed; not acknowledged")
            return self._rejected("store_error")
        if timed:
            hop = perf_counter() - started
            self._h_forward.record(hop, exemplar)
            # Clocks across processes can't subtract per-stage, but both
            # ends of the hop are this thread's clock: hop minus the
            # owner's top-level stamps = wire transit + owner queueing.
            owner_time = (owner_stages.get(STAGE_VALIDATE, 0.0)
                          + owner_stages.get(STAGE_DB_APPEND, 0.0))
            owner_queue = max(0.0, hop - owner_time)
            self._h_owner_queue.record(owner_queue, exemplar)
            if trace is not None:
                trace.stamp(STAGE_REPL_FORWARD, hop)
                trace.stamp(STAGE_OWNER_QUEUE, owner_queue)
                trace.merge_stages(owner_stages)
        if outcome.accepted:
            self._counters.adds_accepted.add()
            return outcome
        return self._rejected(outcome.verdict)

    def issue_user_token(self) -> str:
        try:
            return self._forward.forward_issue()
        except ForwardError as exc:
            raise ProtocolError("user-id service unavailable") from exc

    def close(self) -> None:
        self._feed.stop()
        self._forward.close()
        super().close()
