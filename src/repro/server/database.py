"""The server's signature database — sharded, append-only, index-addressed.

``GET(k)`` returns signatures from database index ``k`` on, which is what
makes client downloads incremental (§III-B).  Entries are kept as
*serialized blobs*: an append-only store never re-serializes.

The store is split into fixed-size **segments** (lock striping).  Each
segment caches two immutable views of its contents:

* a *snapshot* tuple of blobs, for in-process readers;
* a *wire cache* — the segment's blobs already composed into the GET
  response record layout (``len:u32 | blob`` per signature) — so a hot
  ``GET`` over a warm database is O(segments) cache lookups and one join,
  not an O(n) list copy plus per-blob packing.

Appends touch only the tail segment (invalidating only its caches); sealed
segments are effectively frozen, so their caches live forever.  A global
monotonic count is published *after* the blob is in place, so readers that
snapshot the count never observe a missing entry.

On top of the segment caches sits a **response-level page cache**
(:class:`_PageCache`): the complete answer to a paginated
``GET(from_index, max_count)`` keyed by the request arguments.  Cold-sync
clients all walk the same segment-aligned page sequence, so a hot page is
a single dict lookup; every append invalidates the whole page cache (the
tail page and ``more`` flags may have changed) and pages rebuild lazily.

A per-user side index of top-frame sets supports the adjacency check
(§III-C2) without deserializing history.

The database is memory-first but optionally **durable**: give it a
:class:`~repro.store.SignatureStore` and every accepted append is also
written to the store's segmented write-ahead log *before* the in-memory
state publishes it (under the ``always`` fsync policy an acked ADD
therefore survives ``kill -9``), and construction replays the store —
rebuilding the sharded segments, the dedup map, and the per-user adjacency
index from the log + checkpoint manifest.  The disk write happens on
whatever thread calls :meth:`append` (the server's worker pool), never on
the transport's event loop.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.server.protocol import pack_signature_record
from repro.util.logging import get_logger

log = get_logger("server.database")

#: Signatures per segment.  A 2-thread signature is ~1.7 KB (paper §IV-A),
#: so a sealed segment's wire cache is ~1.7 MB — large enough that a full
#: GET is a handful of chunks, small enough that tail invalidation is cheap.
DEFAULT_SEGMENT_SIZE = 1024


@dataclass(frozen=True)
class StoredSignature:
    index: int
    blob: bytes
    sig_id: str
    sender_uid: int
    top_frames: frozenset


class _Segment:
    """One stripe of the database: its own lock and cached read views."""

    __slots__ = ("base", "lock", "blobs", "_snapshot", "_wire")

    def __init__(self, base: int):
        self.base = base
        self.lock = threading.Lock()
        self.blobs: list[bytes] = []
        self._snapshot: tuple[bytes, ...] | None = None
        self._wire: bytes | None = None  # records for the snapshot's blobs

    def append(self, blob: bytes) -> None:
        with self.lock:
            self.blobs.append(blob)
            self._snapshot = None
            self._wire = None

    def pop(self) -> None:
        with self.lock:
            self.blobs.pop()
            self._snapshot = None
            self._wire = None

    def snapshot(self, upto: int) -> tuple[bytes, ...]:
        """An immutable view of this segment's first ``upto`` blobs."""
        snap = self._snapshot
        if snap is None or len(snap) < upto:
            with self.lock:
                snap = self._snapshot
                if snap is None or len(snap) < upto:
                    snap = tuple(self.blobs)
                    self._snapshot = snap
        return snap if len(snap) == upto else snap[:upto]

    def wire(self, upto: int) -> bytes:
        """The first ``upto`` blobs in GET record layout; cached when
        ``upto`` covers the whole cached snapshot (always true for sealed
        segments, and for the tail between appends)."""
        snap = self.snapshot(upto)
        wire = self._wire
        if wire is not None and self._snapshot is snap and len(snap) == upto:
            return wire
        data = b"".join(pack_signature_record(blob) for blob in snap)
        with self.lock:
            if self._snapshot is snap:
                self._wire = data
        return data

    def wire_slice(self, lo: int, hi: int) -> bytes:
        """Records for blobs[lo:hi] — the uncached partial-segment path,
        used only at the boundaries of a range."""
        if lo == 0:
            return self.wire(hi)
        snap = self.snapshot(hi)
        return b"".join(pack_signature_record(blob) for blob in snap[lo:hi])


class _PageCache:
    """Response-level cache for hot paginated GET pages.

    Keyed by the request's ``(from_index, max_count)``; the value is the
    complete precomputed answer ``(next_index, count, chunks, more)``, so a
    hot page — every cold-syncing client walks the same segment-aligned
    page sequence — costs one dict lookup instead of a segment walk plus
    boundary packing.  An append can change any page's answer (the tail
    gains records, ``more`` can flip), so appends invalidate the whole
    cache; entries are rebuilt lazily on the next request.  A version
    stamp taken *before* a page is computed keeps a concurrent append from
    letting a stale page be inserted after the invalidation.
    """

    __slots__ = ("_lock", "_entries", "_capacity", "_version",
                 "hits", "misses")

    def __init__(self, capacity: int = 128):
        self._lock = threading.Lock()
        self._entries: dict[tuple[int, int], tuple] = {}
        self._capacity = capacity
        self._version = 0
        self.hits = 0
        self.misses = 0

    @property
    def version(self) -> int:
        return self._version

    def get(self, key: tuple[int, int]):
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, key: tuple[int, int], value: tuple, version: int) -> None:
        with self._lock:
            if version != self._version:
                return  # an append landed while this page was computed
            entries = self._entries
            if key not in entries and len(entries) >= self._capacity:
                entries.pop(next(iter(entries)))  # FIFO eviction
            entries[key] = value

    def invalidate(self) -> None:
        with self._lock:
            self._version += 1
            self._entries.clear()


class SignatureDatabase:
    def __init__(self, segment_size: int = DEFAULT_SEGMENT_SIZE,
                 page_cache_capacity: int = 128, store=None):
        """``store`` is an optional :class:`~repro.store.SignatureStore`:
        its recovered entries are replayed into memory here, and every
        subsequent accepted append is written through to it."""
        if segment_size < 1:
            raise ValueError("segment_size must be positive")
        self._segment_size = segment_size
        self._append_lock = threading.Lock()
        self._segments: list[_Segment] = [_Segment(0)]
        self._count = 0  # published last; readers snapshot it lock-free
        self._entries: list[StoredSignature] = []
        self._by_sig_id: dict[str, int] = {}
        self._by_user: dict[int, list[int]] = {}  # uid -> entry indices
        self._page_cache = _PageCache(page_cache_capacity)
        self._publish_listeners: list = []
        self._store = store
        self.replayed_count = 0
        if store is not None:
            self._replay_store(store)
            if hasattr(store, "set_metadata_provider"):
                # From here on the store pulls (sig_id, top_frames, uid)
                # from this database at checkpoint time instead of keeping
                # its own per-record mirrors — one copy of the metadata,
                # not two, at million-signature scale.
                store.set_metadata_provider(self)

    def _replay_store(self, store) -> None:
        """Rebuild in-memory state from the store's recovered entries
        (no re-logging: these records are already on disk)."""
        with self._append_lock:
            for entry in store.recovered_entries():
                if entry.sig_id in self._by_sig_id:
                    # A healthy log never holds duplicates; if one appears
                    # anyway, inserting it keeps database indices aligned
                    # with log indices (skipping would desync them and
                    # poison every later append).
                    log.warning("duplicate sig_id %s at log record %d; "
                                "keeping both", entry.sig_id, entry.index)
                self._insert_locked(entry.blob, entry.sig_id,
                                    entry.sender_uid, entry.top_frames)
                self.replayed_count += 1
            self._page_cache.invalidate()

    @property
    def store(self):
        return self._store

    # -------------------------------------------------------- publish hooks
    def add_publish_listener(self, fn) -> None:
        """Register ``fn()`` to run after new entries become visible.

        Listeners fire *outside* the append lock, after ``_count`` has
        advanced — the replication hub uses this to wake its apply-stream
        subscribers the instant an entry publishes instead of polling.
        Listeners must be cheap and must not raise (failures are swallowed
        so one bad subscriber can't poison the write path)."""
        self._publish_listeners.append(fn)

    def _notify_publish(self) -> None:
        for fn in self._publish_listeners:
            try:
                fn()
            except Exception:  # pragma: no cover - defensive
                log.exception("publish listener failed")

    def __len__(self) -> int:
        return self._count

    @property
    def next_index(self) -> int:
        return self._count

    @property
    def segment_size(self) -> int:
        return self._segment_size

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------- writing
    def append(self, signature: DeadlockSignature, blob: bytes,
               sender_uid: int, trace=None) -> int:
        """Store a validated signature; returns its database index.

        Duplicate signatures (same content hash) are not stored twice; the
        existing index is returned — many users reporting the same deadlock
        is the expected steady state.  ``trace`` rides down to the store
        so the WAL can stamp its fsync wait.
        """
        store = self._store
        if store is None or not getattr(store, "group_commit", False):
            with self._append_lock:
                existing = self._by_sig_id.get(signature.sig_id)
                if existing is not None:
                    return existing
                if store is not None:
                    # Durability before visibility: the record hits the
                    # log before the count publishes it.  A failed write
                    # surfaces here with the in-memory state untouched.
                    logged = store.append(
                        blob, signature.sig_id, sender_uid,
                        signature.top_frames, trace=trace,
                    )
                    if logged != self._count:  # pragma: no cover - guard
                        raise RuntimeError(
                            f"store index {logged} diverged from database "
                            f"index {self._count}"
                        )
                index = self._insert_locked(blob, signature.sig_id,
                                            sender_uid,
                                            signature.top_frames)
                self._page_cache.invalidate()
            self._notify_publish()
            return index
        # Write-through path, in three phases so concurrent ADDs share
        # one group-committed fsync instead of serializing behind this
        # lock: (1) stage — log write phase plus the in-memory entry,
        # invisible to readers until _count publishes it; (2) commit —
        # the fsync, *outside* the append lock; (3) publish.  Durability
        # before visibility still holds: _count only ever advances over
        # fsync-covered records (the log's durable prefix is monotone, so
        # a later committer publishing past an earlier stager's record is
        # sound).
        with self._append_lock:
            existing = self._by_sig_id.get(signature.sig_id)
            if existing is not None and existing < self._count:
                return existing
            if existing is not None:
                # A concurrent append staged this signature and its fsync
                # is in flight; wait for the same group commit below —
                # acking a duplicate must not outrun its durability.
                index = existing
            else:
                index = len(self._entries)
                logged = store.stage_append(blob, signature.sig_id,
                                            sender_uid,
                                            signature.top_frames)
                if logged != index:  # pragma: no cover - logic guard
                    raise RuntimeError(
                        f"store index {logged} diverged from database "
                        f"index {index}"
                    )
                self._stage_locked(blob, signature.sig_id, sender_uid,
                                   signature.top_frames)
        try:
            store.commit_staged(index + 1, trace=trace)
        except OSError:
            with self._append_lock:
                # Undo the stage when the log could (newest record, no
                # covering fsync — then stage order makes ours newest
                # here too).  Otherwise the record stays in the log
                # unacked; a later publish or a restart replay surfaces
                # it, which is indistinguishable from a client retry.
                if (store.rollback_staged(index)
                        and len(self._entries) == index + 1):
                    self._unstage_locked(index)
            raise
        with self._append_lock:
            if index >= len(self._entries) or (
                    self._entries[index].sig_id != signature.sig_id):
                # The stager this duplicate piggybacked on rolled its
                # record back after the group fsync failed.
                raise OSError("append was rolled back by a failed "
                              "group commit")
            published = index >= self._count
            if published:
                self._count = index + 1
                self._page_cache.invalidate()
        if published:
            self._notify_publish()
        # As the store's metadata provider, this database must drive the
        # checkpoint cadence: only now — entry published — do both
        # layers agree on the full count.
        if hasattr(store, "maybe_checkpoint"):
            store.maybe_checkpoint()
        return index

    def apply_replicated(self, index: int, blob: bytes,
                         sender_uid: int) -> bool:
        """Install one entry from the log owner's apply-stream (federated
        replica workers only — never mixed with local :meth:`append`).

        Entries must arrive in log order; an ``index`` already present is
        skipped idempotently (the subscription handshake can overlap the
        backfill by a record or two), a gap is a protocol bug and raises.
        The blob is parsed here to recover the dedup hash and top-frame
        metadata the owner validated — same trust model as replaying the
        WAL at startup."""
        signature = DeadlockSignature.from_bytes(blob, origin=ORIGIN_REMOTE)
        with self._append_lock:
            if index < self._count:
                return False
            if index != self._count:
                raise ValueError(
                    f"apply-stream gap: expected entry {self._count}, "
                    f"got {index}"
                )
            self._insert_locked(blob, signature.sig_id, sender_uid,
                                signature.top_frames)
            self._page_cache.invalidate()
        self._notify_publish()
        return True

    def checkpoint_metadata(self, lo: int, hi: int) -> list[tuple]:
        """``(sig_id, top_frames, sender_uid)`` for entries ``[lo, hi)``
        — the store's checkpoint metadata source once it attaches this
        database as its provider.  ``_entries`` is append-only and ``hi``
        never exceeds the published count, so the slice needs no lock."""
        return [(e.sig_id, tuple(sorted(e.top_frames)), e.sender_uid)
                for e in self._entries[lo:hi]]

    def _insert_locked(self, blob: bytes, sig_id: str, sender_uid: int,
                       top_frames: frozenset) -> int:
        """In-memory append, published immediately (caller holds
        ``_append_lock`` and guarantees durability already — or doesn't
        need it: replay, replicas, the storeless path)."""
        index = self._stage_locked(blob, sig_id, sender_uid, top_frames)
        self._count = index + 1  # publish: readers may now see it
        return index

    def _stage_locked(self, blob: bytes, sig_id: str, sender_uid: int,
                      top_frames: frozenset) -> int:
        """In-memory append *without* publication: the entry exists (so
        log order and database order stay in lockstep, and a concurrent
        duplicate finds it) but every reader is gated on ``_count``, which
        the caller advances only once the record is durable."""
        index = len(self._entries)
        tail = self._segments[-1]
        if len(tail.blobs) >= self._segment_size:
            tail = _Segment(index)
            self._segments.append(tail)
        entry = StoredSignature(
            index=index,
            blob=blob,
            sig_id=sig_id,
            sender_uid=sender_uid,
            top_frames=top_frames,
        )
        tail.append(blob)
        self._entries.append(entry)
        self._by_sig_id[sig_id] = index
        self._by_user.setdefault(sender_uid, []).append(index)
        return index

    def _unstage_locked(self, index: int) -> None:
        """Undo the newest :meth:`_stage_locked` after its group commit
        failed and the log rolled the record back (caller holds
        ``_append_lock`` and has checked the entry is still the newest
        and unpublished)."""
        entry = self._entries.pop()
        if self._by_sig_id.get(entry.sig_id) == index:
            del self._by_sig_id[entry.sig_id]
        indices = self._by_user.get(entry.sender_uid)
        if indices and indices[-1] == index:
            indices.pop()
            if not indices:
                del self._by_user[entry.sender_uid]
        tail = self._segments[-1]
        tail.pop()
        if not tail.blobs and len(self._segments) > 1:
            self._segments.pop()

    # ------------------------------------------------------------- reading
    def _range(self, start: int, max_count: int | None) -> tuple[int, int, int]:
        """(start, end, next_index) for a read of ``max_count`` from
        ``start`` against the current published count."""
        n = self._count
        start = min(max(0, start), n)
        if max_count is None:
            end = n
        else:
            end = min(n, start + max(0, max_count))
        return start, end, n

    def _segments_for(self, start: int, end: int):
        """Yield (segment, lo, hi) triples covering [start, end)."""
        size = self._segment_size
        for seg_index in range(start // size, (end - 1) // size + 1):
            seg = self._segments[seg_index]
            lo = max(0, start - seg.base)
            hi = min(size, end - seg.base)
            yield seg, lo, hi

    def blobs_from(self, start: int) -> tuple[int, list[bytes]]:
        """(next_index, blobs) for an unpaginated ``GET(start)``."""
        next_index, blobs, _ = self.blobs_page(start, None)
        return next_index, blobs

    def blobs_page(self, start: int, max_count: int | None
                   ) -> tuple[int, list[bytes], bool]:
        """(next_index, blobs, more) for ``GET(start, max_count)``.

        ``next_index`` is the resume point (index just past the last blob
        returned); ``more`` says whether the database held further entries
        at read time.
        """
        start, end, n = self._range(start, max_count)
        if start >= end:
            return end, [], end < n
        blobs: list[bytes] = []
        for seg, lo, hi in self._segments_for(start, end):
            blobs.extend(seg.snapshot(hi)[lo:hi])
        return end, blobs, end < n

    def wire_from(self, start: int, max_count: int | None = None
                  ) -> tuple[int, int, tuple[bytes, ...], bool]:
        """(next_index, count, chunks, more): the GET response body as
        precomposed record chunks — one cached chunk per fully-covered
        segment, so a warm full-database read costs O(segments).

        Paginated reads (``max_count`` given) additionally go through the
        response-level page cache: a hot page is one dict lookup."""
        if max_count is None:
            return self._wire_range(start, None)
        key = (start, max_count)
        cached = self._page_cache.get(key)
        if cached is not None:
            return cached
        version = self._page_cache.version
        result = self._wire_range(start, max_count)
        self._page_cache.put(key, result, version)
        return result

    def _wire_range(self, start: int, max_count: int | None
                    ) -> tuple[int, int, tuple[bytes, ...], bool]:
        start, end, n = self._range(start, max_count)
        if start >= end:
            return end, 0, (), end < n
        chunks: list[bytes] = []
        for seg, lo, hi in self._segments_for(start, end):
            chunks.append(seg.wire(hi) if lo == 0 else seg.wire_slice(lo, hi))
        return end, end - start, tuple(chunks), end < n

    @property
    def page_cache_hits(self) -> int:
        return self._page_cache.hits

    @property
    def page_cache_misses(self) -> int:
        return self._page_cache.misses

    def user_top_frames(self, uid: int) -> list[frozenset]:
        """Top-frame sets of every signature this user previously sent."""
        entries = self._entries
        return [entries[i].top_frames for i in self._by_user.get(uid, [])]

    def entry(self, index: int) -> StoredSignature:
        return self._entries[index]

    def contains(self, sig_id: str) -> bool:
        return sig_id in self._by_sig_id
