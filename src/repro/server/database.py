"""The server's signature database.

Append-only and index-addressed: ``GET(k)`` returns every signature from
database index ``k`` on, which is what makes client downloads incremental
(§III-B).  Entries are kept as *serialized blobs*: an append-only store never
re-serializes, so a ``GET`` is a list slice of references — the cheap
iteration the paper's Fig. 2 numbers rely on — and the transport can splice
blobs straight onto the wire.

A per-user side index of top-frame sets supports the adjacency check
(§III-C2) without deserializing history.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.signature import DeadlockSignature


@dataclass(frozen=True)
class StoredSignature:
    index: int
    blob: bytes
    sig_id: str
    sender_uid: int
    top_frames: frozenset


class SignatureDatabase:
    def __init__(self):
        self._lock = threading.RLock()
        self._entries: list[StoredSignature] = []
        self._blobs: list[bytes] = []  # parallel list for cheap GET slices
        self._by_sig_id: dict[str, int] = {}
        self._by_user: dict[int, list[int]] = {}  # uid -> entry indices

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def next_index(self) -> int:
        return len(self)

    # ------------------------------------------------------------- writing
    def append(self, signature: DeadlockSignature, blob: bytes,
               sender_uid: int) -> int:
        """Store a validated signature; returns its database index.

        Duplicate signatures (same content hash) are not stored twice; the
        existing index is returned — many users reporting the same deadlock
        is the expected steady state.
        """
        with self._lock:
            existing = self._by_sig_id.get(signature.sig_id)
            if existing is not None:
                return self._entries[existing].index
            index = len(self._entries)
            entry = StoredSignature(
                index=index,
                blob=blob,
                sig_id=signature.sig_id,
                sender_uid=sender_uid,
                top_frames=signature.top_frames,
            )
            self._entries.append(entry)
            self._blobs.append(blob)
            self._by_sig_id[signature.sig_id] = index
            self._by_user.setdefault(sender_uid, []).append(index)
            return index

    # ------------------------------------------------------------- reading
    def blobs_from(self, start: int) -> tuple[int, list[bytes]]:
        """(next_index, blobs) for ``GET(start)``."""
        with self._lock:
            start = max(0, start)
            return len(self._blobs), self._blobs[start:]

    def user_top_frames(self, uid: int) -> list[frozenset]:
        """Top-frame sets of every signature this user previously sent."""
        with self._lock:
            return [self._entries[i].top_frames for i in self._by_user.get(uid, [])]

    def entry(self, index: int) -> StoredSignature:
        with self._lock:
            return self._entries[index]

    def contains(self, sig_id: str) -> bool:
        with self._lock:
            return sig_id in self._by_sig_id
