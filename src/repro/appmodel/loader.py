"""The application abstraction: a set of loaded classes plus the caches the
Communix agent keeps around them.

An :class:`Application` stands for one running Java program.  It provides:

* **bytecode hashes** per class, computed lazily on first access and cached
  ("for efficiency, the Communix agent computes the hash of a class first
  time the class is loaded, then it reuses the computed hash value",
  §III-C3);
* **startup/shutdown simulation** (:meth:`start`, :meth:`shutdown`), which
  touches every class the way class loading does — this is the baseline cost
  in the Fig. 4 experiment;
* **incremental class loading** (:meth:`load_class`), which bumps a
  generation counter so the agent knows to re-run the nesting check for
  signatures that previously failed it (§III-C3 last paragraph);
* the **nesting analysis** entry point with a persisted-site-set cache
  ("the agent precomputes the locations of all the nested synchronized
  blocks/methods when the application runs for the first time").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.appmodel.classfile import ClassFile, Method, MethodRef
from repro.appmodel.nesting import NestingAnalysis, NestingReport, SyncSite


@dataclass
class AppStatistics:
    """The Table I columns for one application."""

    name: str
    loc: int
    sync_sites: int
    explicit_sync_ops: int
    analyzed_sites: int
    nested_sites: int
    nesting_seconds: float


class Application:
    """A running application instance as seen by Dimmunix + the agent."""

    def __init__(self, name: str, classes: dict[str, ClassFile] | None = None,
                 loc: int = 0):
        self.name = name
        self._classes: dict[str, ClassFile] = {}
        self._hash_cache: dict[str, str] = {}
        self._nested_sites: set[SyncSite] | None = None
        self._last_report: NestingReport | None = None
        self.generation = 0  # bumped on every class load after the first run
        self.declared_loc = loc
        self._lock = threading.Lock()
        self.started = False
        for cls in (classes or {}).values():
            self.load_class(cls)

    # ------------------------------------------------------------- classes
    def load_class(self, classfile: ClassFile) -> None:
        with self._lock:
            self._classes[classfile.name] = classfile
            self._hash_cache.pop(classfile.name, None)
            self.generation += 1
            # New classes can only uncover new nested blocks; invalidate the
            # cached site set so the next analysis sees them.
            self._nested_sites = None

    def class_names(self) -> list[str]:
        return sorted(self._classes)

    def get_class(self, name: str) -> ClassFile | None:
        return self._classes.get(name)

    def methods(self) -> dict[MethodRef, Method]:
        out: dict[MethodRef, Method] = {}
        for cls in self._classes.values():
            for method in cls.methods.values():
                out[method.ref] = method
        return out

    @property
    def loc(self) -> int:
        if self.declared_loc:
            return self.declared_loc
        return sum(c.source_loc for c in self._classes.values())

    # -------------------------------------------------------------- hashes
    def bytecode_hash(self, class_name: str) -> str | None:
        """Hash of a class's bytecode; ``None`` for unknown classes."""
        cached = self._hash_cache.get(class_name)
        if cached is not None:
            return cached
        with self._lock:
            cached = self._hash_cache.get(class_name)
            if cached is not None:
                return cached
            cls = self._classes.get(class_name)
            if cls is None:
                return None
            digest = cls.bytecode_hash()
            self._hash_cache[class_name] = digest
            return digest

    def hash_index(self) -> dict[str, str]:
        """class name -> bytecode hash for every loaded class."""
        return {name: self.bytecode_hash(name) for name in self._classes}

    def frame_hash(self, frame) -> str | None:
        """The hash this application has for the code containing ``frame``
        (the :class:`repro.core.validation.AppView` protocol)."""
        return self.bytecode_hash(frame.class_name)

    # ------------------------------------------------------------- startup
    def start(self) -> None:
        """Simulate application startup: load (hash) every class.

        Hashing every class on startup is the honest stand-in for the JVM
        verifying/loading class files; it is the work against which the
        agent's added startup cost is measured in Fig. 4.
        """
        for name in self._classes:
            self.bytecode_hash(name)
        self.started = True

    def shutdown(self) -> None:
        self.started = False

    # ------------------------------------------------------------- nesting
    def nested_sync_sites(self, force: bool = False) -> set[SyncSite]:
        """The precomputed nested-site set, running the analysis if needed."""
        if self._nested_sites is None or force:
            report = NestingAnalysis(self.methods()).analyze_all()
            self._nested_sites = set(report.nested_sites)
            self._last_report = report
        return self._nested_sites

    def preload_nested_sites(self, sites: set[SyncSite]) -> None:
        """Install a previously computed nested-site set.

        The paper's agent "precomputes the locations of all the nested
        synchronized blocks/methods when the application runs for the first
        time" and reuses them on later runs; this is that persisted cache.
        """
        self._nested_sites = set(sites)

    @property
    def last_nesting_report(self) -> NestingReport | None:
        return self._last_report

    # ---------------------------------------------------------- statistics
    def count_sync_sites(self) -> int:
        total = 0
        for method in self.methods().values():
            desugared = method.desugared()
            total += len(desugared.monitor_enter_indices())
        return total

    def count_explicit_sync_ops(self) -> int:
        return sum(
            1
            for method in self.methods().values()
            for ins in method.instructions
            if ins.is_explicit_lock_op
        )

    def statistics(self) -> AppStatistics:
        """Compute the Table I row for this application."""
        self.nested_sync_sites(force=True)
        report = self._last_report
        assert report is not None
        return AppStatistics(
            name=self.name,
            loc=self.loc,
            sync_sites=report.total_sites,
            explicit_sync_ops=self.count_explicit_sync_ops(),
            analyzed_sites=report.analyzed_sites,
            nested_sites=report.nested_count,
            nesting_seconds=report.elapsed_seconds,
        )
