"""Synthetic application generator with Table I presets.

The paper evaluates client-side machinery on JBoss, Limewire and Vuze —
proprietary-scale Java applications we cannot run.  Per the substitution
rule, this generator builds application models with the *same statistics*
Table I reports: lines of code, number of synchronized blocks/methods,
number of explicit ``ReentrantLock`` operations, and the analyzable/nested
split (modelling Soot's partial CFG coverage).  The nesting analysis then
*measures* those statistics rather than being told them, so Table I can be
regenerated end-to-end.

Construction accounting
-----------------------
* a **block-nested** construct emits an outer ``MONITORENTER`` whose first
  reachable monitor op is an inner ``MONITORENTER`` -> 2 analyzed sites,
  1 of them nested;
* an **invoke-nested** construct emits an outer block that ``INVOKE``\\ s a
  synchronized helper method -> 2 analyzed sites (the outer block, nested,
  plus the helper's desugared block, non-nested);
* a **standalone** construct emits a single non-nested block (optionally with
  a conditional branch so CFGs are not all straight-line);
* an **opaque** construct emits a block inside a method with ``has_cfg=False``
  -> 1 unanalyzed site.

Therefore a preset with ``nested`` nested sites and ``analyzed`` analyzed
sites uses ``nested`` nested constructs plus ``analyzed - 2*nested``
standalone ones (all presets satisfy ``analyzed >= 2*nested``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.appmodel.classfile import ClassFile, MethodBuilder, make_ref
from repro.appmodel.bytecode import Opcode
from repro.appmodel.loader import Application

#: Average compiled bytes per source line, used to size class padding so
#: that hashing cost scales with application size like real class files.
BYTES_PER_LOC = 24


@dataclass(frozen=True)
class AppSpec:
    """Target statistics for one generated application (one Table I row)."""

    name: str
    loc: int
    sync_sites: int
    explicit_ops: int
    analyzed_sites: int
    nested_sites: int
    classes: int
    seed: int = 0
    #: Fraction of nested constructs realized through the call graph rather
    #: than syntactic block nesting.
    invoke_nested_fraction: float = 0.3

    def scaled(self, scale: float) -> "AppSpec":
        """Scale the app down (for tests) while keeping ratios intact."""
        if scale == 1.0:
            return self
        nested = max(1, round(self.nested_sites * scale))
        analyzed = max(2 * nested, round(self.analyzed_sites * scale))
        sync = max(analyzed, round(self.sync_sites * scale))
        return replace(
            self,
            loc=max(200, round(self.loc * scale)),
            sync_sites=sync,
            explicit_ops=max(1, round(self.explicit_ops * scale)),
            analyzed_sites=analyzed,
            nested_sites=nested,
            classes=max(4, round(self.classes * scale)),
        )


#: Table I rows.  Class counts approximate one class per ~320 LOC, which is
#: in the ballpark of the real applications' published class counts.
PRESETS: dict[str, AppSpec] = {
    "jboss": AppSpec(
        name="jboss", loc=636_895, sync_sites=1_898, explicit_ops=104,
        analyzed_sites=844, nested_sites=249, classes=1_990, seed=11,
    ),
    "limewire": AppSpec(
        name="limewire", loc=595_623, sync_sites=1_435, explicit_ops=189,
        analyzed_sites=781, nested_sites=277, classes=1_860, seed=13,
    ),
    "vuze": AppSpec(
        name="vuze", loc=476_702, sync_sites=3_653, explicit_ops=14,
        analyzed_sites=432, nested_sites=120, classes=1_490, seed=17,
    ),
}


class _AppBuilder:
    def __init__(self, spec: AppSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.classes: list[ClassFile] = [
            ClassFile(name=f"{spec.name}.C{i:04d}") for i in range(spec.classes)
        ]
        self._counter = 0

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter:05d}"

    def _pick_class(self) -> ClassFile:
        return self.rng.choice(self.classes)

    # ------------------------------------------------------------ constructs
    def add_block_nested(self) -> None:
        cls = self._pick_class()
        mb = MethodBuilder(cls.name, self._fresh_name("nestedBlk"),
                           first_line=self.rng.randrange(1, 4000))
        mb.nop()
        mb.monitor_enter()  # outer (nested) site
        mb.monitor_enter()  # inner (non-nested) site
        mb.nop()
        mb.monitor_exit()
        mb.monitor_exit()
        cls.add_method(mb.build())

    def add_invoke_nested(self) -> None:
        helper_cls = self._pick_class()
        helper = MethodBuilder(
            helper_cls.name, self._fresh_name("syncHelper"),
            first_line=self.rng.randrange(1, 4000), synchronized_method=True,
        )
        helper.nop()
        helper_method = helper.build()
        helper_cls.add_method(helper_method)

        cls = self._pick_class()
        mb = MethodBuilder(cls.name, self._fresh_name("nestedInv"),
                           first_line=self.rng.randrange(1, 4000))
        mb.monitor_enter()  # outer (nested via call graph) site
        mb.invoke(helper_method.ref)
        mb.monitor_exit()
        cls.add_method(mb.build())

    def add_standalone(self, branchy: bool) -> None:
        cls = self._pick_class()
        mb = MethodBuilder(cls.name, self._fresh_name("plainSync"),
                           first_line=self.rng.randrange(1, 4000))
        mb.monitor_enter()
        if branchy:
            # enter; IF -> (taken: NOP, exit) / (fall: NOP, NOP, goto exit)
            branch_index = mb.next_index
            mb.emit(Opcode.IF, 0)  # patched below
            mb.nop()
            mb.nop()
            goto_index = mb.next_index
            mb.emit(Opcode.GOTO, 0)  # patched below
            taken = mb.next_index
            mb.nop()
            exit_index = mb.monitor_exit()
            mb.patch_target(branch_index, taken)
            mb.patch_target(goto_index, exit_index)
            cls.add_method(mb.build())
        else:
            mb.nop()
            mb.monitor_exit()
            cls.add_method(mb.build())

    def add_opaque(self) -> None:
        cls = self._pick_class()
        mb = MethodBuilder(cls.name, self._fresh_name("opaqueSync"),
                           first_line=self.rng.randrange(1, 4000), has_cfg=False)
        mb.monitor_enter()
        mb.nop()
        mb.monitor_exit()
        cls.add_method(mb.build())

    def add_explicit_ops(self, count: int) -> None:
        per_method = 4
        while count > 0:
            cls = self._pick_class()
            mb = MethodBuilder(cls.name, self._fresh_name("explicit"),
                               first_line=self.rng.randrange(1, 4000))
            for i in range(min(per_method, count)):
                target = (
                    "java.util.concurrent.locks.ReentrantLock.lock"
                    if i % 2 == 0
                    else "java.util.concurrent.locks.ReentrantLock.unlock"
                )
                mb.invoke(target)
            cls.add_method(mb.build())
            count -= per_method

    def add_filler_methods(self) -> None:
        """Plain methods with calls between them: call-graph realism plus
        material for signature call-stack construction."""
        n_filler = max(8, self.spec.classes // 2)
        refs = []
        for _ in range(n_filler):
            cls = self._pick_class()
            mb = MethodBuilder(cls.name, self._fresh_name("work"),
                               first_line=self.rng.randrange(1, 4000))
            mb.nop()
            if refs and self.rng.random() < 0.6:
                mb.invoke(self.rng.choice(refs))
            method = mb.build()
            cls.add_method(method)
            refs.append(method.ref)

    def finalize(self) -> Application:
        # Distribute LOC over classes and size padding accordingly.
        remaining = self.spec.loc
        per_class = max(1, self.spec.loc // max(1, len(self.classes)))
        for cls in self.classes:
            share = min(per_class, remaining)
            remaining -= share
            cls.source_loc = share
            encoded = len(cls.bytecode())
            target = share * BYTES_PER_LOC
            if target > encoded:
                cls.padding = self.rng.randbytes(min(target - encoded, 1 << 16))
        if remaining > 0 and self.classes:
            self.classes[-1].source_loc += remaining
        app = Application(self.spec.name, loc=self.spec.loc)
        for cls in self.classes:
            app.load_class(cls)
        app.generation = 0  # generation counts post-startup loads
        return app


def generate_application(spec: AppSpec, scale: float = 1.0) -> Application:
    """Generate an application model matching ``spec`` (optionally scaled).

    The generated app satisfies, exactly:

    * ``analyzed_sites`` synchronized blocks in CFG-available methods, of
      which ``nested_sites`` are nested;
    * ``sync_sites - analyzed_sites`` blocks in CFG-less methods;
    * ``explicit_ops`` explicit lock/unlock invocations (rounded up to the
      generator's per-method packing).
    """
    spec = spec.scaled(scale)
    if spec.analyzed_sites < 2 * spec.nested_sites:
        raise ValueError(
            f"{spec.name}: analyzed_sites ({spec.analyzed_sites}) must be >= "
            f"2 * nested_sites ({spec.nested_sites}) under this generator"
        )
    builder = _AppBuilder(spec)
    n_invoke_nested = round(spec.nested_sites * spec.invoke_nested_fraction)
    n_block_nested = spec.nested_sites - n_invoke_nested
    for _ in range(n_block_nested):
        builder.add_block_nested()
    for _ in range(n_invoke_nested):
        builder.add_invoke_nested()
    n_standalone = spec.analyzed_sites - 2 * spec.nested_sites
    for i in range(n_standalone):
        builder.add_standalone(branchy=(i % 5 == 0))
    for _ in range(spec.sync_sites - spec.analyzed_sites):
        builder.add_opaque()
    builder.add_explicit_ops(spec.explicit_ops)
    builder.add_filler_methods()
    return builder.finalize()
