"""The instruction set of the synthetic application model.

A deliberately small subset of JVM bytecode — just the opcodes the nesting
analysis of §III-C3 cares about (monitor operations, calls, returns) plus
enough control flow (``GOTO``, ``IF``) to make CFG construction non-trivial.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    NOP = "nop"
    MONITORENTER = "monitorenter"
    MONITOREXIT = "monitorexit"
    INVOKE = "invoke"  # operand: MethodRef string "Class.method"
    RETURN = "return"
    GOTO = "goto"  # operand: target instruction index
    IF = "if"  # operand: branch-taken target index; fall-through otherwise
    THROW = "throw"


#: Invoke targets treated as explicit lock/unlock operations (Table I's
#: "Explicit sync ops" column).  Communix does not handle these (§III-C1).
EXPLICIT_LOCK_TARGETS = frozenset(
    {
        "java.util.concurrent.locks.ReentrantLock.lock",
        "java.util.concurrent.locks.ReentrantLock.unlock",
    }
)


@dataclass(frozen=True)
class Instruction:
    """One bytecode instruction.

    ``line`` is the source line the instruction was compiled from; signature
    frames reference (class, method, line) locations, so the MONITORENTER
    lines are what outer-top frames point at.
    """

    opcode: Opcode
    operand: object = None
    line: int = 0

    def encode(self) -> str:
        if self.operand is None:
            return f"{self.opcode.value}@{self.line}"
        return f"{self.opcode.value}({self.operand})@{self.line}"

    @property
    def is_explicit_lock_op(self) -> bool:
        return self.opcode is Opcode.INVOKE and self.operand in EXPLICIT_LOCK_TARGETS

    def successors(self, index: int, count: int) -> tuple[int, ...]:
        """Indices of the instructions control may flow to next."""
        if self.opcode in (Opcode.RETURN, Opcode.THROW):
            return ()
        if self.opcode is Opcode.GOTO:
            return (int(self.operand),)
        if self.opcode is Opcode.IF:
            fallthrough = index + 1
            targets = [int(self.operand)]
            if fallthrough < count:
                targets.append(fallthrough)
            return tuple(targets)
        nxt = index + 1
        return (nxt,) if nxt < count else ()
