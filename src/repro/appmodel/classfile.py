"""Methods and class files of the synthetic application model.

A :class:`ClassFile` owns a set of :class:`Method` objects and produces a
deterministic *bytecode encoding* whose hash plays the role of the JVM class
bytecode hash that the Communix plugin attaches to signature frames
(§III-B/III-C).  Changing any instruction, line number, or the padding blob
(which stands in for the rest of a real class's compiled size) changes the
hash — exactly the versioning behaviour client-side validation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.appmodel.bytecode import Instruction, Opcode
from repro.util.encoding import stable_hash

#: A method reference is the string "ClassName.methodName".
MethodRef = str


def make_ref(class_name: str, method_name: str) -> MethodRef:
    return f"{class_name}.{method_name}"


def split_ref(ref: MethodRef) -> tuple[str, str]:
    class_name, _, method_name = ref.rpartition(".")
    return class_name, method_name


@dataclass
class Method:
    """One method body.

    ``synchronized_method`` marks a Java ``synchronized`` method; call
    :meth:`desugared` to obtain the equivalent monitor-block form (the paper
    notes AspectJ performs exactly this transformation, §III-C3).

    ``has_cfg`` models Soot's partial coverage: when ``False`` the analysis
    framework "could not retrieve the CFG of the method" (Table I) and every
    synchronized block inside it goes unanalyzed.
    """

    class_name: str
    name: str
    instructions: list[Instruction] = field(default_factory=list)
    synchronized_method: bool = False
    has_cfg: bool = True
    first_line: int = 1

    @property
    def ref(self) -> MethodRef:
        return make_ref(self.class_name, self.name)

    def encode(self) -> str:
        flags = "S" if self.synchronized_method else "-"
        body = ";".join(i.encode() for i in self.instructions)
        return f"{self.name}[{flags}]{{{body}}}"

    def monitor_enter_indices(self) -> list[int]:
        return [
            i
            for i, ins in enumerate(self.instructions)
            if ins.opcode is Opcode.MONITORENTER
        ]

    def contains_monitor_enter(self) -> bool:
        return any(ins.opcode is Opcode.MONITORENTER for ins in self.instructions)

    def invoked_refs(self) -> list[MethodRef]:
        return [
            str(ins.operand)
            for ins in self.instructions
            if ins.opcode is Opcode.INVOKE and ins.operand is not None
        ]

    def desugared(self) -> "Method":
        """Return the monitor-block form of a synchronized method.

        ``synchronized void m() { body }`` becomes::

            MONITORENTER; body'; MONITOREXIT; RETURN

        with every ``RETURN`` in the body replaced by a jump to the shared
        exit sequence, mirroring javac's structured output.
        """
        if not self.synchronized_method:
            return self
        body: list[Instruction] = [
            Instruction(Opcode.MONITORENTER, line=self.first_line)
        ]
        offset = 1
        exit_index = None
        # First pass: copy instructions, remembering where RETURNs are.
        returns: list[int] = []
        for ins in self.instructions:
            if ins.opcode is Opcode.RETURN:
                returns.append(len(body))
                body.append(ins)  # patched below
            elif ins.opcode in (Opcode.GOTO, Opcode.IF):
                body.append(
                    Instruction(ins.opcode, int(ins.operand) + offset, ins.line)
                )
            else:
                body.append(ins)
        exit_index = len(body)
        last_line = self.instructions[-1].line if self.instructions else self.first_line
        body.append(Instruction(Opcode.MONITOREXIT, line=last_line))
        body.append(Instruction(Opcode.RETURN, line=last_line))
        for r in returns:
            body[r] = Instruction(Opcode.GOTO, exit_index, body[r].line)
        if not returns:
            # Body fell through; it already flows into the exit sequence.
            pass
        return Method(
            class_name=self.class_name,
            name=self.name,
            instructions=body,
            synchronized_method=False,
            has_cfg=self.has_cfg,
            first_line=self.first_line,
        )


@dataclass
class ClassFile:
    """A class: named methods plus a padding blob standing in for the rest
    of the compiled class (constant pool, fields, ...).

    ``source_loc`` is the class's share of the application's lines of code;
    the padding scales with it so that hashing cost tracks application size
    the way hashing real class files would.
    """

    name: str
    methods: dict[str, Method] = field(default_factory=dict)
    source_loc: int = 0
    padding: bytes = b""

    def add_method(self, method: Method) -> None:
        if method.class_name != self.name:
            raise ValueError(
                f"method {method.ref} does not belong to class {self.name}"
            )
        self.methods[method.name] = method

    def bytecode(self) -> bytes:
        encoded = "|".join(
            self.methods[name].encode() for name in sorted(self.methods)
        )
        return f"class {self.name}:{encoded}".encode("utf-8") + self.padding

    def bytecode_hash(self) -> str:
        return stable_hash(self.bytecode())


class MethodBuilder:
    """Small fluent helper for constructing method bodies in tests and the
    generator without hand-numbering instruction indices."""

    def __init__(self, class_name: str, name: str, first_line: int = 1,
                 synchronized_method: bool = False, has_cfg: bool = True):
        self._method = Method(
            class_name=class_name,
            name=name,
            synchronized_method=synchronized_method,
            has_cfg=has_cfg,
            first_line=first_line,
        )
        self._line = first_line

    @property
    def next_index(self) -> int:
        return len(self._method.instructions)

    def emit(self, opcode: Opcode, operand: object = None, line: int | None = None) -> int:
        index = len(self._method.instructions)
        if line is None:
            line = self._line
            self._line += 1
        self._method.instructions.append(Instruction(opcode, operand, line))
        return index

    def nop(self) -> int:
        return self.emit(Opcode.NOP)

    def monitor_enter(self) -> int:
        return self.emit(Opcode.MONITORENTER)

    def monitor_exit(self) -> int:
        return self.emit(Opcode.MONITOREXIT)

    def invoke(self, ref: MethodRef) -> int:
        return self.emit(Opcode.INVOKE, ref)

    def ret(self) -> int:
        return self.emit(Opcode.RETURN)

    def goto(self, target: int) -> int:
        return self.emit(Opcode.GOTO, target)

    def branch(self, target: int) -> int:
        return self.emit(Opcode.IF, target)

    def patch_target(self, index: int, target: int) -> None:
        """Retarget a previously emitted GOTO/IF (forward-branch fixup)."""
        old = self._method.instructions[index]
        if old.opcode not in (Opcode.GOTO, Opcode.IF):
            raise ValueError(f"instruction {index} is not a branch")
        self._method.instructions[index] = Instruction(old.opcode, target, old.line)

    def build(self) -> Method:
        if not self._method.instructions or self._method.instructions[-1].opcode not in (
            Opcode.RETURN,
            Opcode.THROW,
            Opcode.GOTO,
        ):
            self.ret()
        return self._method
