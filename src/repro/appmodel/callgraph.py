"""Call graph over the application model.

Used by the nesting analysis: an ``INVOKE`` makes a synchronized block nested
iff any method that may be called, directly or indirectly, "is either
synchronized or contains a synchronized block" (§III-C3).
"""

from __future__ import annotations

from repro.appmodel.classfile import Method, MethodRef


class CallGraph:
    """Static call graph with memoized may-reach-synchronization queries.

    ``methods`` maps refs to :class:`Method` objects.  Unknown refs (calls
    into code outside the model, e.g. the JDK) are conservatively treated as
    *not* reaching synchronization but are reported via
    :attr:`unresolved_refs` so that callers can account for them.
    """

    def __init__(self, methods: dict[MethodRef, Method]):
        self._methods = methods
        self._edges: dict[MethodRef, tuple[MethodRef, ...]] = {}
        self._sync_reach: dict[MethodRef, bool] = {}
        self.unresolved_refs: set[MethodRef] = set()
        for ref, method in methods.items():
            targets = []
            for target in method.invoked_refs():
                if target in methods:
                    targets.append(target)
                else:
                    self.unresolved_refs.add(target)
            self._edges[ref] = tuple(targets)

    def callees(self, ref: MethodRef) -> tuple[MethodRef, ...]:
        return self._edges.get(ref, ())

    def is_directly_synchronized(self, ref: MethodRef) -> bool:
        method = self._methods.get(ref)
        if method is None:
            return False
        return method.synchronized_method or method.contains_monitor_enter()

    def may_reach_sync(self, ref: MethodRef) -> bool:
        """True iff ``ref`` or anything transitively callable from it is
        synchronized or contains a synchronized block.

        Iterative DFS with an explicit stack; cycles in the call graph (e.g.
        mutual recursion) are handled by marking in-progress nodes false
        first and fixing up via the memo only when fully resolved.
        """
        memo = self._sync_reach
        if ref in memo:
            return memo[ref]
        visited: set[MethodRef] = set()
        stack = [ref]
        found = False
        while stack:
            cur = stack.pop()
            if cur in visited:
                continue
            visited.add(cur)
            if cur in memo:
                if memo[cur]:
                    found = True
                    break
                continue
            if self.is_directly_synchronized(cur):
                found = True
                break
            stack.extend(self._edges.get(cur, ()))
        # Memoize: on success only the root is safely known; on failure the
        # entire visited set is known to not reach synchronization.
        if found:
            memo[ref] = True
        else:
            for node in visited:
                memo[node] = False
        return found
