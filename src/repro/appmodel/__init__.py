"""Java-like application model: bytecode, CFGs, and the nesting analysis.

The paper's client-side validation needs two things from the JVM ecosystem
that Python does not provide: per-class *bytecode hashes* (to match incoming
signatures against the running application, §III-C3) and a Soot-based static
analysis that decides whether a ``synchronized`` block is *nested*
(§III-C1/C3).  This subpackage is the substitute substrate: a compact
Java-like instruction set (``MONITORENTER``/``MONITOREXIT``/``INVOKE``/
branches), class files with deterministic, hashable bytecode encodings, an
instruction-level CFG, a call graph, the nesting analysis exactly as the
paper describes it, and a synthetic application generator whose presets match
the statistics of the paper's Table I (JBoss, Limewire, Vuze).
"""

from repro.appmodel.bytecode import Instruction, Opcode
from repro.appmodel.classfile import ClassFile, Method, MethodBuilder, MethodRef
from repro.appmodel.cfg import ControlFlowGraph
from repro.appmodel.callgraph import CallGraph
from repro.appmodel.loader import Application
from repro.appmodel.nesting import NestingAnalysis, NestingReport, SyncSite
from repro.appmodel.generator import AppSpec, PRESETS, generate_application
from repro.appmodel.sigfactory import SignatureFactory

__all__ = [
    "Instruction",
    "Opcode",
    "ClassFile",
    "Method",
    "MethodBuilder",
    "MethodRef",
    "ControlFlowGraph",
    "CallGraph",
    "Application",
    "NestingAnalysis",
    "NestingReport",
    "SyncSite",
    "AppSpec",
    "PRESETS",
    "generate_application",
    "SignatureFactory",
]
