"""Instruction-level control-flow graphs.

The nesting analysis only needs successor edges between instructions, so the
CFG is represented at instruction granularity (a basic-block view is exposed
for tests and tooling, built on top of the same edges).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.bytecode import Opcode
from repro.appmodel.classfile import Method


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    start: int
    end: int  # inclusive index of the last instruction

    def __len__(self) -> int:
        return self.end - self.start + 1


class ControlFlowGraph:
    """CFG of one method.

    ``successors(i)`` yields the instruction indices control can reach
    directly from instruction ``i``.  Constructing the CFG of a method whose
    ``has_cfg`` flag is false raises ``ValueError`` — callers are expected to
    check first, which is how the analysis models Soot's coverage gaps.
    """

    def __init__(self, method: Method):
        if not method.has_cfg:
            raise ValueError(f"no CFG available for {method.ref}")
        self.method = method
        count = len(method.instructions)
        self._succ: list[tuple[int, ...]] = [
            ins.successors(i, count) for i, ins in enumerate(method.instructions)
        ]

    def successors(self, index: int) -> tuple[int, ...]:
        return self._succ[index]

    def instruction(self, index: int):
        return self.method.instructions[index]

    def __len__(self) -> int:
        return len(self.method.instructions)

    # ---------------------------------------------------------------- blocks
    def basic_blocks(self) -> list[BasicBlock]:
        """Partition the instructions into basic blocks."""
        count = len(self.method.instructions)
        if count == 0:
            return []
        leaders = {0}
        for i, ins in enumerate(self.method.instructions):
            if ins.opcode in (Opcode.GOTO, Opcode.IF):
                leaders.add(int(ins.operand))
                if i + 1 < count:
                    leaders.add(i + 1)
            elif ins.opcode in (Opcode.RETURN, Opcode.THROW):
                if i + 1 < count:
                    leaders.add(i + 1)
        ordered = sorted(leaders)
        blocks = []
        for idx, start in enumerate(ordered):
            end = (ordered[idx + 1] - 1) if idx + 1 < len(ordered) else count - 1
            blocks.append(BasicBlock(start, end))
        return blocks

    def reachable_from(self, index: int) -> set[int]:
        """All instruction indices reachable from ``index`` (exclusive of
        unreached code); used by tests and the generator's self-checks."""
        seen: set[int] = set()
        stack = [index]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._succ[cur])
        return seen
