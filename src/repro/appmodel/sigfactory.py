"""Generate deadlock signatures against an application model.

Used by the Fig. 4 benchmark ("analyze 1,000 new deadlock signatures"), the
server benchmarks (random signatures), and the attack scenarios (§IV-B).
Each factory method controls exactly which validation stage the produced
signature passes or fails:

* :meth:`make_valid` — correct hashes, nested outer tops, depth >= 5: passes
  everything;
* :meth:`make_bad_hash` — top-frame hash mismatch: fails the hash check;
* :meth:`make_trimmable` — correct top hashes but a corrupt frame lower in
  the stack: passes with the stack *trimmed* to the matching suffix;
* :meth:`make_non_nested` — outer top at a non-nested synchronized block:
  fails the nesting check;
* :meth:`make_shallow` — outer depth < 5: fails the depth check;
* :meth:`make_foreign` — references classes of some other application
  entirely: fails the hash check at the top frame.
"""

from __future__ import annotations

import random

from repro.appmodel.loader import Application
from repro.appmodel.nesting import SyncSite
from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_REMOTE,
    ThreadSignature,
)


class SignatureFactory:
    def __init__(self, app: Application, seed: int = 0):
        self.app = app
        self.rng = random.Random(seed)
        self._hashes = app.hash_index()
        self._nested = sorted(app.nested_sync_sites())
        report = app.last_nesting_report
        self._non_nested = sorted(report.non_nested_sites) if report else []
        self._methods = sorted(app.methods())
        if not self._nested:
            raise ValueError(f"application {app.name} has no nested sync sites")

    # ------------------------------------------------------------- helpers
    def _frame_at(self, site: SyncSite) -> Frame:
        class_name, method, line = site
        return Frame(class_name, method, line, self._hashes[class_name])

    def _filler_frame(self) -> Frame:
        ref = self.rng.choice(self._methods)
        class_name, _, method = ref.rpartition(".")
        line = self.rng.randrange(1, 5000)
        return Frame(class_name, method, line, self._hashes.get(class_name, ""))

    def _stack_to(self, top: Frame, depth: int) -> CallStack:
        frames = [self._filler_frame() for _ in range(max(0, depth - 1))]
        frames.append(top)
        return CallStack(frames)

    def _pick_sites(self, count: int, pool: list[SyncSite]) -> list[SyncSite]:
        if len(pool) >= count:
            return self.rng.sample(pool, count)
        return [self.rng.choice(pool) for _ in range(count)]

    # ------------------------------------------------------------ factories
    def make_valid(self, depth: int = 8, n_threads: int = 2) -> DeadlockSignature:
        outer_sites = self._pick_sites(n_threads, self._nested)
        inner_pool = self._non_nested or self._nested
        inner_sites = self._pick_sites(n_threads, inner_pool)
        threads = tuple(
            ThreadSignature(
                outer=self._stack_to(self._frame_at(o), depth),
                inner=self._stack_to(self._frame_at(i), depth),
            )
            for o, i in zip(outer_sites, inner_sites)
        )
        return DeadlockSignature(threads=threads, origin=ORIGIN_REMOTE)

    def make_bad_hash(self, depth: int = 8) -> DeadlockSignature:
        sig = self.make_valid(depth=depth)
        threads = []
        for t in sig.threads:
            top = t.outer.top.with_hash("deadbeef00000000")
            outer = CallStack(tuple(t.outer[:-1]) + (top,))
            threads.append(ThreadSignature(outer=outer, inner=t.inner))
        return DeadlockSignature(threads=tuple(threads), origin=ORIGIN_REMOTE)

    def make_trimmable(self, depth: int = 10, corrupt_below: int = 3) -> DeadlockSignature:
        """Correct suffix of length ``corrupt_below`` on each outer stack;
        the frame below that suffix carries a stale hash (old app version)."""
        sig = self.make_valid(depth=depth)
        threads = []
        for t in sig.threads:
            frames = list(t.outer)
            idx = len(frames) - 1 - corrupt_below
            if idx >= 0:
                frames[idx] = frames[idx].with_hash("0badc0de00000000")
            threads.append(ThreadSignature(outer=CallStack(frames), inner=t.inner))
        return DeadlockSignature(threads=tuple(threads), origin=ORIGIN_REMOTE)

    def make_non_nested(self, depth: int = 8) -> DeadlockSignature:
        if not self._non_nested:
            raise ValueError("application has no non-nested sites")
        outer_sites = self._pick_sites(2, self._non_nested)
        threads = tuple(
            ThreadSignature(
                outer=self._stack_to(self._frame_at(site), depth),
                inner=self._stack_to(self._filler_frame(), depth),
            )
            for site in outer_sites
        )
        return DeadlockSignature(threads=threads, origin=ORIGIN_REMOTE)

    def make_shallow(self, depth: int = 1) -> DeadlockSignature:
        if depth >= 5:
            raise ValueError("shallow signatures must have outer depth < 5")
        return self.make_valid(depth=depth)

    def make_foreign(self, depth: int = 8) -> DeadlockSignature:
        threads = []
        for i in range(2):
            frames = [
                Frame("foreign.app.Klass", f"m{j}", 10 + j, f"{i:02x}{j:02x}" + "ab" * 6)
                for j in range(depth)
            ]
            threads.append(
                ThreadSignature(outer=CallStack(frames), inner=CallStack(frames[-3:]))
            )
        return DeadlockSignature(threads=tuple(threads), origin=ORIGIN_REMOTE)

    def make_batch(self, count: int, valid_fraction: float = 0.6) -> list[DeadlockSignature]:
        """A mixed pool, like a local repository full of new signatures."""
        batch: list[DeadlockSignature] = []
        for _ in range(count):
            roll = self.rng.random()
            if roll < valid_fraction:
                batch.append(self.make_valid(depth=self.rng.randrange(5, 14)))
            elif roll < valid_fraction + 0.15:
                batch.append(self.make_bad_hash())
            elif roll < valid_fraction + 0.25 and self._non_nested:
                batch.append(self.make_non_nested())
            elif roll < valid_fraction + 0.35:
                batch.append(self.make_shallow(depth=self.rng.randrange(1, 5)))
            else:
                batch.append(self.make_foreign())
        return batch

    def make_adjacent_pair(self, depth: int = 8) -> tuple[DeadlockSignature, DeadlockSignature]:
        """Two signatures sharing some but not all top frames (§III-C2)."""
        shared, extra_a, extra_b, inner_a, inner_b = self._pick_sites(5, self._nested)
        inner_pool = self._non_nested or self._nested
        inner_shared = self._pick_sites(1, inner_pool)[0]

        def build(extra: SyncSite, inner: SyncSite) -> DeadlockSignature:
            threads = (
                ThreadSignature(
                    outer=self._stack_to(self._frame_at(shared), depth),
                    inner=self._stack_to(self._frame_at(inner_shared), depth),
                ),
                ThreadSignature(
                    outer=self._stack_to(self._frame_at(extra), depth),
                    inner=self._stack_to(self._frame_at(inner), depth),
                ),
            )
            return DeadlockSignature(threads=threads, origin=ORIGIN_REMOTE)

        return build(extra_a, inner_a), build(extra_b, inner_b)

    def make_mergeable_pair(self, depth_a: int = 10, depth_b: int = 8,
                            common: int = 6) -> tuple[DeadlockSignature, DeadlockSignature]:
        """Two manifestations of the *same* bug: identical top frames, stacks
        agreeing on the top ``common`` frames and diverging below."""
        outer_sites = self._pick_sites(2, self._nested)
        inner_pool = self._non_nested or self._nested
        inner_sites = self._pick_sites(2, inner_pool)
        shared_suffixes = [
            [self._filler_frame() for _ in range(common - 1)] + [self._frame_at(site)]
            for site in outer_sites
        ]
        shared_inners = [
            self._stack_to(self._frame_at(site), depth_b) for site in inner_sites
        ]

        def build(depth: int) -> DeadlockSignature:
            threads = []
            for suffix, inner in zip(shared_suffixes, shared_inners):
                prefix = [self._filler_frame() for _ in range(max(0, depth - common))]
                threads.append(
                    ThreadSignature(outer=CallStack(prefix + suffix), inner=inner)
                )
            return DeadlockSignature(threads=tuple(threads), origin=ORIGIN_REMOTE)

        return build(depth_a), build(depth_b)
