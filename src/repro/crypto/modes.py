"""Block cipher modes of operation (ECB, CBC) with PKCS#7 padding.

The user-ID tokens use CBC with a per-token random IV; ECB is provided for
completeness and for the NIST SP 800-38A test vectors.

Two API layers live here:

* the historical *cipher-object* functions (``cbc_encrypt(cipher, ...)``)
  that drive a :class:`~repro.crypto.aes.AES128` block at a time — the
  pure-Python reference path, used directly by the NIST vector tests;
* *keyed* convenience wrappers (``cbc_encrypt_keyed(key, ...)``) that
  route through the pluggable backend registry
  (:mod:`repro.crypto.backend`), so callers get the fast OpenSSL path
  automatically when ``cryptography`` is importable.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.util.errors import CryptoError


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding; always adds at least one byte."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len] * pad_len)


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip PKCS#7 padding, raising :class:`CryptoError` if malformed."""
    if not data or len(data) % block_size != 0:
        raise CryptoError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise CryptoError("invalid PKCS#7 padding length")
    if data[-pad_len:] != bytes([pad_len] * pad_len):
        raise CryptoError("corrupt PKCS#7 padding")
    return data[:-pad_len]


def _blocks(data: bytes):
    for i in range(0, len(data), BLOCK_SIZE):
        yield data[i : i + BLOCK_SIZE]


def ecb_encrypt(cipher: AES128, plaintext: bytes, pad: bool = True) -> bytes:
    if pad:
        plaintext = pkcs7_pad(plaintext)
    if len(plaintext) % BLOCK_SIZE != 0:
        raise CryptoError("ECB input must be block-aligned when pad=False")
    return b"".join(cipher.encrypt_block(b) for b in _blocks(plaintext))


def ecb_decrypt(cipher: AES128, ciphertext: bytes, pad: bool = True) -> bytes:
    if len(ciphertext) % BLOCK_SIZE != 0:
        raise CryptoError("ECB ciphertext must be block-aligned")
    plaintext = b"".join(cipher.decrypt_block(b) for b in _blocks(ciphertext))
    return pkcs7_unpad(plaintext) if pad else plaintext


def cbc_encrypt(cipher: AES128, plaintext: bytes, iv: bytes, pad: bool = True) -> bytes:
    if len(iv) != BLOCK_SIZE:
        raise CryptoError("IV must be one block")
    if pad:
        plaintext = pkcs7_pad(plaintext)
    if len(plaintext) % BLOCK_SIZE != 0:
        raise CryptoError("CBC input must be block-aligned when pad=False")
    out = []
    prev = iv
    for block in _blocks(plaintext):
        mixed = bytes(a ^ b for a, b in zip(block, prev))
        prev = cipher.encrypt_block(mixed)
        out.append(prev)
    return b"".join(out)


def cbc_decrypt(cipher: AES128, ciphertext: bytes, iv: bytes, pad: bool = True) -> bytes:
    if len(iv) != BLOCK_SIZE:
        raise CryptoError("IV must be one block")
    if len(ciphertext) % BLOCK_SIZE != 0:
        raise CryptoError("CBC ciphertext must be block-aligned")
    out = []
    prev = iv
    for block in _blocks(ciphertext):
        plain = cipher.decrypt_block(block)
        out.append(bytes(a ^ b for a, b in zip(plain, prev)))
        prev = block
    plaintext = b"".join(out)
    return pkcs7_unpad(plaintext) if pad else plaintext


# -------------------------------------------------------- keyed (registry)
def ecb_encrypt_keyed(key: bytes, plaintext: bytes, *, pad: bool = True,
                      backend=None) -> bytes:
    from repro.crypto.backend import get_backend

    return get_backend(backend).ecb_encrypt(key, plaintext, pad=pad)


def ecb_decrypt_keyed(key: bytes, ciphertext: bytes, *, pad: bool = True,
                      backend=None) -> bytes:
    from repro.crypto.backend import get_backend

    return get_backend(backend).ecb_decrypt(key, ciphertext, pad=pad)


def cbc_encrypt_keyed(key: bytes, plaintext: bytes, iv: bytes, *,
                      pad: bool = True, backend=None) -> bytes:
    from repro.crypto.backend import get_backend

    return get_backend(backend).cbc_encrypt(key, iv, plaintext, pad=pad)


def cbc_decrypt_keyed(key: bytes, ciphertext: bytes, iv: bytes, *,
                      pad: bool = True, backend=None) -> bytes:
    from repro.crypto.backend import get_backend

    return get_backend(backend).cbc_decrypt(key, iv, ciphertext, pad=pad)
