"""Cryptographic substrate for Communix.

The Communix server binds every incoming signature to the user who sent it
via an *encrypted user ID* produced with "AES encryption, with a predefined
128-bit key" (paper §III-C2).  No crypto library is available in this offline
environment, so :mod:`repro.crypto.aes` implements AES-128 from the FIPS-197
specification, :mod:`repro.crypto.modes` adds ECB/CBC with PKCS#7 padding,
and :mod:`repro.crypto.userid` implements the token format the server issues
and verifies.
"""

from repro.crypto.aes import AES128
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.userid import DEFAULT_SERVER_KEY, UserIdAuthority, UserIdToken

__all__ = [
    "AES128",
    "cbc_decrypt",
    "cbc_encrypt",
    "ecb_decrypt",
    "ecb_encrypt",
    "pkcs7_pad",
    "pkcs7_unpad",
    "DEFAULT_SERVER_KEY",
    "UserIdAuthority",
    "UserIdToken",
]
