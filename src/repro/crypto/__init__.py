"""Cryptographic substrate for Communix.

The Communix server binds every incoming signature to the user who sent it
via an *encrypted user ID* produced with "AES encryption, with a predefined
128-bit key" (paper §III-C2).  :mod:`repro.crypto.aes` implements AES-128
from the FIPS-197 specification — the always-available pure-Python
*reference* — :mod:`repro.crypto.modes` adds ECB/CBC with PKCS#7 padding,
:mod:`repro.crypto.backend` makes the AES implementation pluggable (an
OpenSSL-backed ``fast`` path is auto-selected when the ``cryptography``
package is importable; see ``REPRO_CRYPTO_BACKEND``), and
:mod:`repro.crypto.userid` implements the token format the server issues
and verifies.
"""

from repro.crypto.aes import AES128
from repro.crypto.backend import (
    BACKEND_ENV,
    CryptoBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
)
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_decrypt_keyed,
    cbc_encrypt,
    cbc_encrypt_keyed,
    ecb_decrypt,
    ecb_decrypt_keyed,
    ecb_encrypt,
    ecb_encrypt_keyed,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.userid import DEFAULT_SERVER_KEY, UserIdAuthority, UserIdToken

__all__ = [
    "AES128",
    "BACKEND_ENV",
    "CryptoBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "cbc_decrypt",
    "cbc_decrypt_keyed",
    "cbc_encrypt",
    "cbc_encrypt_keyed",
    "ecb_decrypt",
    "ecb_decrypt_keyed",
    "ecb_encrypt",
    "ecb_encrypt_keyed",
    "pkcs7_pad",
    "pkcs7_unpad",
    "DEFAULT_SERVER_KEY",
    "UserIdAuthority",
    "UserIdToken",
]
