"""AES-128 block cipher, implemented from FIPS-197.

This is a straightforward, readable implementation (table-based S-box,
byte-oriented state).  It is used only to encrypt/decrypt the short user-ID
tokens of the Communix server, so clarity is preferred over raw speed; the
server caches decrypted tokens (see :mod:`repro.server.validation`), which
keeps AES off the hot path exactly as a production server would.

The state is kept as a flat 16-byte array in FIPS input order: byte ``i``
holds state element ``s[i % 4][i // 4]`` (row ``i % 4``, column ``i // 4``).

Correctness is pinned by the FIPS-197 Appendix C and NIST SP 800-38A test
vectors in ``tests/crypto/test_aes.py``.
"""

from __future__ import annotations

from repro.util.errors import CryptoError

# FIPS-197 Figure 7: the AES S-box.
SBOX = bytes(
    [
        0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
        0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
        0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
        0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
        0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
        0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
        0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
        0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
        0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
        0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
        0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
        0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
        0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
        0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
        0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
        0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
    ]
)

# The inverse S-box is derived rather than transcribed, which removes a whole
# class of copy errors.
INV_SBOX = bytes(256)
_inv = bytearray(256)
for _i, _v in enumerate(SBOX):
    _inv[_v] = _i
INV_SBOX = bytes(_inv)
del _inv, _i, _v

# Round constants for key expansion (AES-128 needs 10).
RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

BLOCK_SIZE = 16


def _xtime(a: int) -> int:
    """Multiply by x (i.e. {02}) in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication (FIPS-197 §4.2)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_mul_table(coefficient: int) -> bytes:
    return bytes(_gmul(x, coefficient) for x in range(256))


# Precomputed GF(2^8) multiplication tables for the (Inv)MixColumns
# coefficients; they turn the per-byte multiplication loops into lookups,
# which matters because the server decrypts a user-ID token per ADD request.
_MUL2 = _build_mul_table(0x02)
_MUL3 = _build_mul_table(0x03)
_MUL9 = _build_mul_table(0x09)
_MULB = _build_mul_table(0x0B)
_MULD = _build_mul_table(0x0D)
_MULE = _build_mul_table(0x0E)


def _sub_bytes(state: bytearray, box: bytes) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: bytearray) -> None:
    # Row r rotates left by r; state index is row + 4*column.
    out = bytes(state)
    for c in range(4):
        for r in range(4):
            state[4 * c + r] = out[4 * ((c + r) % 4) + r]


def _inv_shift_rows(state: bytearray) -> None:
    out = bytes(state)
    for c in range(4):
        for r in range(4):
            state[4 * c + r] = out[4 * ((c - r) % 4) + r]


def _mix_columns(state: bytearray) -> None:
    for c in range(4):
        i = 4 * c
        s0, s1, s2, s3 = state[i], state[i + 1], state[i + 2], state[i + 3]
        state[i] = _MUL2[s0] ^ _MUL3[s1] ^ s2 ^ s3
        state[i + 1] = s0 ^ _MUL2[s1] ^ _MUL3[s2] ^ s3
        state[i + 2] = s0 ^ s1 ^ _MUL2[s2] ^ _MUL3[s3]
        state[i + 3] = _MUL3[s0] ^ s1 ^ s2 ^ _MUL2[s3]


def _inv_mix_columns(state: bytearray) -> None:
    for c in range(4):
        i = 4 * c
        s0, s1, s2, s3 = state[i], state[i + 1], state[i + 2], state[i + 3]
        state[i] = _MULE[s0] ^ _MULB[s1] ^ _MULD[s2] ^ _MUL9[s3]
        state[i + 1] = _MUL9[s0] ^ _MULE[s1] ^ _MULB[s2] ^ _MULD[s3]
        state[i + 2] = _MULD[s0] ^ _MUL9[s1] ^ _MULE[s2] ^ _MULB[s3]
        state[i + 3] = _MULB[s0] ^ _MULD[s1] ^ _MUL9[s2] ^ _MULE[s3]


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


class AES128:
    """AES with a 128-bit key: 10 rounds over a 16-byte block."""

    ROUNDS = 10

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise CryptoError(f"AES-128 requires a 16-byte key, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[bytes]:
        """FIPS-197 §5.2 key expansion: 44 words -> 11 round keys."""
        words = [key[4 * i : 4 * i + 4] for i in range(4)]
        for i in range(4, 4 * (AES128.ROUNDS + 1)):
            temp = words[i - 1]
            if i % 4 == 0:
                rotated = temp[1:] + temp[:1]
                temp = bytes(SBOX[b] for b in rotated)
                temp = bytes((temp[0] ^ RCON[i // 4 - 1],)) + temp[1:]
            words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
        return [b"".join(words[4 * r : 4 * r + 4]) for r in range(AES128.ROUNDS + 1)]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[0])
        for rnd in range(1, self.ROUNDS):
            _sub_bytes(state, SBOX)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[rnd])
        _sub_bytes(state, SBOX)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[self.ROUNDS])
        for rnd in range(self.ROUNDS - 1, 0, -1):
            _inv_shift_rows(state)
            _sub_bytes(state, INV_SBOX)
            _add_round_key(state, self._round_keys[rnd])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _sub_bytes(state, INV_SBOX)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
