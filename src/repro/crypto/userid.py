"""Encrypted user-ID tokens (paper §III-C2).

The Communix server "requires each user to accompany the signatures he/she
sends with an encrypted user id that the server provides. [...] The server
uses AES encryption, with a predefined 128-bit key, to produce the encrypted
user ids."  The point of encryption is that users cannot manufacture their
own IDs; the server decrypts the token to recover the numeric user ID.

Token layout (before encryption)::

    MAGIC (6 bytes) | uid (8 bytes, big-endian) | issued (8 bytes) | mac (8 bytes)

where ``mac`` is a truncated SHA-256 over the preceding bytes keyed with the
server key.  Any bit flip, truncation, or random guess fails the MAC (or the
magic) and is rejected, so forged tokens are detected rather than decrypting
to garbage user IDs.  The encrypted payload is CBC'd under a per-token IV and
rendered as hex: ``iv_hex + ct_hex``.

The paper explicitly leaves the *issuing service* (one ID per person,
Sybil-resistance) out of scope; so do we — :class:`UserIdAuthority.issue`
hands out sequential IDs on request, and the evaluation's attack model
("assume 100 attackers manage to obtain 5 ids each") is expressed by simply
issuing that many tokens to the attacker in the benches.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass

from repro.crypto.aes import BLOCK_SIZE
from repro.crypto.backend import CryptoBackend, get_backend
from repro.util.errors import CryptoError

#: The "predefined 128-bit key" of §III-C2.  Any real deployment would ship
#: its own; tests may supply theirs to :class:`UserIdAuthority`.
DEFAULT_SERVER_KEY = bytes.fromhex("436f6d6d756e697820445352303131ff")

_MAGIC = b"CMXID1"
_MAC_LEN = 8


def _mac(key: bytes, payload: bytes) -> bytes:
    return hashlib.sha256(key + payload + key).digest()[:_MAC_LEN]


@dataclass(frozen=True)
class UserIdToken:
    """A decoded, verified user-ID token."""

    user_id: int
    issued_at: int


class UserIdAuthority:
    """Issues and verifies encrypted user-ID tokens.

    Thread-safe: the Communix server decodes tokens concurrently from many
    request-processing threads.
    """

    def __init__(self, key: bytes = DEFAULT_SERVER_KEY, rng=None,
                 backend: str | CryptoBackend | None = None):
        """``backend`` selects the AES implementation: a registered
        backend name (``pure``/``fast``), a :class:`CryptoBackend`, or
        ``None`` for the default selection order (``REPRO_CRYPTO_BACKEND``
        env var, then fast-when-available)."""
        self._backend = get_backend(backend)
        if len(key) != BLOCK_SIZE:
            raise CryptoError(f"AES-128 requires a 16-byte key, got {len(key)}")
        self._key = key
        self._rng = rng  # optional random.Random for deterministic tests
        self._next_uid = 1
        self._lock = threading.Lock()

    @property
    def backend_name(self) -> str:
        """The AES backend this authority encrypts/decrypts with."""
        return self._backend.name

    def _iv(self) -> bytes:
        if self._rng is not None:
            return bytes(self._rng.getrandbits(8) for _ in range(BLOCK_SIZE))
        return os.urandom(BLOCK_SIZE)

    @property
    def next_uid(self) -> int:
        """The uid the next :meth:`issue` call will hand out."""
        with self._lock:
            return self._next_uid

    def advance(self, next_uid: int) -> None:
        """Raise the sequential-uid watermark (never lowers it).

        A restarted server calls this with the persisted watermark so the
        fresh process does not re-issue uids that pre-crash users already
        hold — their quota and adjacency history must not be inherited by
        strangers.
        """
        with self._lock:
            self._next_uid = max(self._next_uid, next_uid)

    def issue(self, issued_at: int = 0) -> str:
        """Issue a fresh token for the next sequential user ID."""
        with self._lock:
            uid = self._next_uid
            self._next_uid += 1
        return self.issue_for(uid, issued_at)

    def issue_for(self, user_id: int, issued_at: int = 0) -> str:
        """Issue a token for a specific user ID (re-issue, tests)."""
        if user_id < 0 or user_id >= 2**63:
            raise CryptoError("user id out of range")
        body = (
            _MAGIC
            + int(user_id).to_bytes(8, "big")
            + int(issued_at).to_bytes(8, "big")
        )
        payload = body + _mac(self._key, body)
        iv = self._iv()
        ciphertext = self._backend.cbc_encrypt(self._key, iv, payload)
        return (iv + ciphertext).hex()

    def decode(self, token: str) -> UserIdToken:
        """Verify and decode a token, raising :class:`CryptoError` if forged."""
        try:
            raw = bytes.fromhex(token)
        except ValueError as exc:
            raise CryptoError("token is not valid hex") from exc
        if len(raw) < BLOCK_SIZE * 2:
            raise CryptoError("token too short")
        iv, ciphertext = raw[:BLOCK_SIZE], raw[BLOCK_SIZE:]
        payload = self._backend.cbc_decrypt(self._key, iv, ciphertext)
        if len(payload) != len(_MAGIC) + 16 + _MAC_LEN:
            raise CryptoError("token payload has wrong length")
        body, mac = payload[:-_MAC_LEN], payload[-_MAC_LEN:]
        if not body.startswith(_MAGIC):
            raise CryptoError("token magic mismatch")
        if _mac(self._key, body) != mac:
            raise CryptoError("token MAC mismatch")
        uid = int.from_bytes(body[len(_MAGIC) : len(_MAGIC) + 8], "big")
        issued = int.from_bytes(body[len(_MAGIC) + 8 :], "big")
        return UserIdToken(user_id=uid, issued_at=issued)
