"""Pluggable AES backends: pure-Python reference vs. native fast path.

The from-scratch FIPS-197 implementation in :mod:`repro.crypto.aes` is the
*reference*: always importable, pinned by the NIST test vectors, and slow
(~0.2 ms per token decode — milliseconds of interpreter time under a cold
validation burst, which is exactly the Fig. 2 throughput wall).  When the
``cryptography`` package is importable, the ``fast`` backend runs the same
AES-CBC/ECB through OpenSSL instead, at a 100x+ speedup
(``BENCH_hotpath.json`` has the measured ratio); padding, token framing,
and MAC handling stay in shared Python code so both backends are
byte-identical — a property test in ``tests/crypto/test_backends.py``
pins that over random keys and payloads.

Selection order (first match wins):

1. an explicit backend object or name handed to the caller
   (``ServerConfig.crypto_backend`` / ``--crypto-backend``);
2. the ``REPRO_CRYPTO_BACKEND`` environment variable;
3. ``fast`` when ``cryptography`` is importable, else ``pure``.

Asking for a backend that is not available (or not registered) raises
:class:`~repro.util.errors.CryptoError` — an operator who pinned a backend
wants a startup failure, not a silent fallback.  ``auto`` (or an empty
string) is the explicit spelling of the default order.
"""

from __future__ import annotations

import os
import threading

from repro.crypto import aes as _aes
from repro.crypto import modes as _modes
from repro.util.errors import CryptoError

#: Environment override for the default backend selection.
BACKEND_ENV = "REPRO_CRYPTO_BACKEND"

BLOCK_SIZE = _aes.BLOCK_SIZE


class CryptoBackend:
    """One AES implementation.  Subclasses provide raw block-aligned
    ECB/CBC over ``(key, data)``; padding and argument validation live
    here so every backend shares one error surface."""

    #: Registry key (also the ``--crypto-backend`` spelling).
    name: str = "?"

    def __init__(self) -> None:
        # Key schedules are worth caching across calls: the server uses
        # one long-lived key, so the hot path must not re-expand it per
        # token.  Bounded so a key-per-call abuser cannot grow it.
        self._ciphers: dict[bytes, object] = {}
        self._cipher_lock = threading.Lock()

    # ------------------------------------------------------------ interface
    @property
    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def _make_cipher(self, key: bytes):  # pragma: no cover - abstract
        raise NotImplementedError

    def _ecb(self, cipher, data: bytes, encrypt: bool) -> bytes:
        raise NotImplementedError  # pragma: no cover - abstract

    def _cbc(self, cipher, iv: bytes, data: bytes,
             encrypt: bool) -> bytes:
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------- helpers
    def _cipher(self, key: bytes):
        cipher = self._ciphers.get(key)
        if cipher is None:
            cipher = self._make_cipher(key)
            with self._cipher_lock:
                if len(self._ciphers) >= 64:
                    self._ciphers.clear()
                self._ciphers[key] = cipher
        return cipher

    @staticmethod
    def _check_iv(iv: bytes) -> None:
        if len(iv) != BLOCK_SIZE:
            raise CryptoError("IV must be one block")

    # ------------------------------------------------------------- AES-ECB
    def ecb_encrypt(self, key: bytes, plaintext: bytes,
                    pad: bool = True) -> bytes:
        if pad:
            plaintext = _modes.pkcs7_pad(plaintext)
        if len(plaintext) % BLOCK_SIZE != 0:
            raise CryptoError("ECB input must be block-aligned when pad=False")
        return self._ecb(self._cipher(key), plaintext, encrypt=True)

    def ecb_decrypt(self, key: bytes, ciphertext: bytes,
                    pad: bool = True) -> bytes:
        if len(ciphertext) % BLOCK_SIZE != 0:
            raise CryptoError("ECB ciphertext must be block-aligned")
        plaintext = self._ecb(self._cipher(key), ciphertext, encrypt=False)
        return _modes.pkcs7_unpad(plaintext) if pad else plaintext

    # ------------------------------------------------------------- AES-CBC
    def cbc_encrypt(self, key: bytes, iv: bytes, plaintext: bytes,
                    pad: bool = True) -> bytes:
        self._check_iv(iv)
        if pad:
            plaintext = _modes.pkcs7_pad(plaintext)
        if len(plaintext) % BLOCK_SIZE != 0:
            raise CryptoError("CBC input must be block-aligned when pad=False")
        return self._cbc(self._cipher(key), iv, plaintext, encrypt=True)

    def cbc_decrypt(self, key: bytes, iv: bytes, ciphertext: bytes,
                    pad: bool = True) -> bytes:
        self._check_iv(iv)
        if len(ciphertext) % BLOCK_SIZE != 0:
            raise CryptoError("CBC ciphertext must be block-aligned")
        plaintext = self._cbc(self._cipher(key), iv, ciphertext,
                              encrypt=False)
        return _modes.pkcs7_unpad(plaintext) if pad else plaintext


class PurePythonBackend(CryptoBackend):
    """The FIPS-197 reference implementation — always available."""

    name = "pure"

    def _make_cipher(self, key: bytes):
        return _aes.AES128(key)

    def _ecb(self, cipher, data: bytes, encrypt: bool) -> bytes:
        if encrypt:
            return _modes.ecb_encrypt(cipher, data, pad=False)
        return _modes.ecb_decrypt(cipher, data, pad=False)

    def _cbc(self, cipher, iv: bytes, data: bytes, encrypt: bool) -> bytes:
        if encrypt:
            return _modes.cbc_encrypt(cipher, data, iv, pad=False)
        return _modes.cbc_decrypt(cipher, data, iv, pad=False)


class FastBackend(CryptoBackend):
    """OpenSSL AES via the ``cryptography`` package, when importable.

    Constructing a fresh ``Cipher`` + context per call costs ~12 us of
    Python/FFI overhead — more than the AES itself for a 32-byte token.
    ECB has no chaining state, so this backend keeps one *streaming* ECB
    context per ``(thread, key, direction)`` alive forever (``update()``
    on block-aligned input returns immediately and is ~0.4 us) and builds
    CBC from it in Python: ``P_i = D(C_i) xor C_{i-1}`` needs only a
    single batched ECB decrypt plus one XOR over the whole message, and
    encryption chains block-per-block through the same persistent
    context.  Contexts are thread-local because OpenSSL ``update`` is not
    safe under concurrent calls (the server decodes tokens from several
    worker threads at once).
    """

    name = "fast"

    def __init__(self) -> None:
        super().__init__()
        try:
            from cryptography.hazmat.primitives.ciphers import (
                Cipher, algorithms, modes as cr_modes,
            )
        except ImportError:  # pragma: no cover - environment-dependent
            self._cipher_cls = None
        else:
            self._cipher_cls = Cipher
            self._algorithms = algorithms
            self._modes = cr_modes
        self._local = threading.local()

    @property
    def available(self) -> bool:
        return self._cipher_cls is not None

    def _make_cipher(self, key: bytes):
        if len(key) != BLOCK_SIZE:
            raise CryptoError(f"AES-128 requires a 16-byte key, got {len(key)}")
        if not self.available:  # pragma: no cover - guarded by get_backend
            raise CryptoError("fast crypto backend is not available "
                              "(cryptography not importable)")
        return self._algorithms.AES(key)

    def _ecb_ctx(self, algorithm, encrypt: bool):
        """This thread's persistent streaming ECB context for ``key``."""
        ctxs = getattr(self._local, "ctxs", None)
        if ctxs is None:
            ctxs = self._local.ctxs = {}
        # Keyed by the key bytes, not the algorithm object: an evicted
        # algorithm's id() could be reused by a different key's object.
        slot = (algorithm.key, encrypt)
        ctx = ctxs.get(slot)
        if ctx is None:
            cipher = self._cipher_cls(algorithm, self._modes.ECB())
            ctx = cipher.encryptor() if encrypt else cipher.decryptor()
            if len(ctxs) >= 128:  # key-per-call abuse must not pin contexts
                ctxs.clear()
            ctxs[slot] = ctx
        return ctx

    def _ecb(self, algorithm, data: bytes, encrypt: bool) -> bytes:
        # Block-aligned input (validated by the base class) passes through
        # a streaming context in one update; nothing is ever buffered, so
        # the context stays clean for the next call.
        return self._ecb_ctx(algorithm, encrypt).update(data)

    def _cbc(self, algorithm, iv: bytes, data: bytes, encrypt: bool) -> bytes:
        if not encrypt:
            # One batched ECB decrypt, then un-chain with a single XOR:
            # each plaintext block is D(C_i) xor C_{i-1} (C_0 = IV).
            raw = self._ecb_ctx(algorithm, False).update(data)
            prior = iv + data[:-BLOCK_SIZE]
            n = len(raw)
            return (
                int.from_bytes(raw, "big") ^ int.from_bytes(prior, "big")
            ).to_bytes(n, "big")
        ctx = self._ecb_ctx(algorithm, True)
        out = bytearray()
        prev = int.from_bytes(iv, "big")
        for i in range(0, len(data), BLOCK_SIZE):
            block = int.from_bytes(data[i:i + BLOCK_SIZE], "big") ^ prev
            cipherblock = ctx.update(block.to_bytes(BLOCK_SIZE, "big"))
            out += cipherblock
            prev = int.from_bytes(cipherblock, "big")
        return bytes(out)


# ---------------------------------------------------------------- registry
_REGISTRY: dict[str, CryptoBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: CryptoBackend) -> CryptoBackend:
    """Add (or replace) a backend under its ``name``; returns it."""
    with _REGISTRY_LOCK:
        _REGISTRY[backend.name] = backend
    return backend


register_backend(PurePythonBackend())
register_backend(FastBackend())


def available_backends() -> list[str]:
    """Names of the registered backends usable right now (``pure`` always;
    ``fast`` only when ``cryptography`` imports)."""
    return [name for name, backend in sorted(_REGISTRY.items())
            if backend.available]


def default_backend_name() -> str:
    """What ``auto`` resolves to in this environment."""
    fast = _REGISTRY.get("fast")
    return "fast" if fast is not None and fast.available else "pure"


def get_backend(selector: str | CryptoBackend | None = None) -> CryptoBackend:
    """Resolve a backend: explicit selector > ``REPRO_CRYPTO_BACKEND`` >
    fast-when-available > pure.  Raises :class:`CryptoError` for an
    unknown or unavailable explicit choice."""
    if isinstance(selector, CryptoBackend):
        return selector
    name = selector or os.environ.get(BACKEND_ENV) or "auto"
    name = name.strip().lower()
    if name in ("", "auto"):
        name = default_backend_name()
    backend = _REGISTRY.get(name)
    if backend is None:
        raise CryptoError(
            f"unknown crypto backend {name!r} "
            f"(registered: {', '.join(sorted(_REGISTRY))})"
        )
    if not backend.available:
        raise CryptoError(
            f"crypto backend {name!r} is not available in this environment"
        )
    return backend
