"""The admission controller: sketches + detectors wired to the server spine.

One :class:`AdmissionGuard` guards one server process.  It watches three
key dimensions, each with its own sliding sketch and detector:

* **uid** (relative volume) — every offered ADD updates the sender's
  count *whether or not it is admitted*, so detection persists while a
  flooder is being shed and decay alone relaxes the classification.
  Suspect uids get a tightened effective quota (``budget`` admitted ADDs
  per window instead of unlimited offers racing the daily quota);
  flooding uids are shed outright.
* **sig** (relative volume) — per-signature-id counts catch a fleet
  hammering one blob through many identities (the dedup path is cheap
  but not free, and the pattern is diagnostic).
* **endpoint** (absolute abuse) — keyed by the remote socket endpoint,
  fed by *validation feedback* (rejected verdicts: bad tokens, quota
  misses, adjacency spam, sheds), not raw volume — a closed-loop benign
  client and a closed-loop attacker offer similar request *rates*, but
  only the attacker accumulates rejections.  A flooding endpoint is shed
  on the event loop before the frame is even parsed, with an optional
  tarpit delay so a closed-loop flooder's round-trip rate collapses.

Where the checks sit (cheapest first):

1. transport loop: :meth:`AdmissionGuard.endpoint_action` — one dict
   lookup per frame; flooding endpoints never reach the worker pool, the
   JSON parser, or AES;
2. validator (``check_add_uid``): :meth:`admit_add` after the token
   resolves (a cache hit for established senders) and *before* the
   quota/adjacency locks;
3. federated replicas: :meth:`admit_uid` before the forward round-trip
   to the log owner, so a flood is absorbed at the edge worker.

Scoring is lazy — any observe/action call past the round deadline runs
one round under the guard lock (no timer thread; deterministic with a
manual ``clock``).  Sketch cell updates themselves are GIL-atomic and
deliberately unlocked: a lost increment under contention only loosens an
estimate that is approximate by design.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.guard.detector import FloodDetector, FlowClass
from repro.guard.sketch import DEFAULT_SEED, SlidingSketch
from repro.obs import ShardedCounter

__all__ = ["AdmissionGuard", "GuardConfig", "ABUSE_VERDICTS"]

#: Rejection verdicts that count as endpoint abuse.  ``store_error`` is
#: the server's own failure and must never mark the client.
ABUSE_VERDICTS = frozenset(
    ("bad_token", "quota_exceeded", "adjacent", "malformed", "oversized",
     "shed")
)


@dataclass
class GuardConfig:
    """Tuning for one :class:`AdmissionGuard` (CLI: ``--guard``,
    ``--guard-budget``, ``--guard-window``)."""

    #: Decay-window length in seconds; a rate estimate covers one to two
    #: windows, detection latency is one scoring round (= one window),
    #: and a retired key is forgotten after two.
    window_s: float = 5.0
    #: Master budget knob, in operations per window-pair.  Dimension
    #: budgets derive from it: uid ``budget//4``, sig ``budget//2``,
    #: endpoint abuse ``budget//4`` (floors keep tiny budgets sane).
    budget: int = 64
    #: Seconds a shed response to a flooding endpoint is delayed on the
    #: event loop — a closed-loop flooder is throttled to ~1/tarpit_s
    #: requests/s per connection.  0 answers sheds immediately.
    tarpit_s: float = 0.025
    #: Sketch geometry: overestimate ≤ ε·N with probability ≥ 1-δ.
    epsilon: float = 0.01
    delta: float = 0.02
    #: Cap on distinct keys remembered per dimension per window for the
    #: scoring round (the sketch itself keeps counting past it; the cap
    #: bounds only the detector's candidate enumeration).
    max_keys: int = 8192
    seed: int = DEFAULT_SEED

    @property
    def uid_budget(self) -> int:
        return max(8, self.budget // 4)

    @property
    def sig_budget(self) -> int:
        return max(8, self.budget // 2)

    @property
    def endpoint_budget(self) -> int:
        return max(4, self.budget // 4)


class GuardDimension:
    """One keyed dimension: sliding sketch + per-window candidate set +
    detector + published classification map."""

    def __init__(self, name: str, budget: int, config: GuardConfig,
                 mode: str):
        self.name = name
        self.budget = budget
        self.sketch = SlidingSketch.from_error(
            config.window_s, epsilon=config.epsilon, delta=config.delta,
            seed=config.seed,
        )
        self.detector = FloodDetector(budget, mode=mode)
        self._max_keys = config.max_keys
        self._window_s = config.window_s
        #: First-N distinct keys seen this round (unlocked set.add; the
        #: sketch keeps exact-enough counts for keys past the cap, they
        #: just wait a round to become candidates).
        self._window_keys: set = set()
        #: Published by score(); replaced wholesale so readers never see
        #: a half-updated map.
        self.classes: dict = {}
        #: Suspect allowance: key -> [window epoch, ops admitted in it].
        self._allow: dict = {}

    def observe(self, key, now: float) -> None:
        self.sketch.update(key, 1, now=now)
        if len(self._window_keys) < self._max_keys:
            self._window_keys.add(key)

    def flow_class(self, key) -> FlowClass:
        return self.classes.get(key, FlowClass.BENIGN)

    def admit(self, key, now: float) -> str:
        """'admit' | 'throttle' | 'shed' for one offered operation."""
        cls = self.classes.get(key)
        if cls is None:
            return "admit"
        if cls is FlowClass.FLOODING:
            return "shed"
        # Suspect: a tightened effective quota of `budget` admitted ops
        # per window, enforced exactly (the map only ever holds keys the
        # detector currently classifies, so it stays small).
        epoch = int(now // self._window_s)
        entry = self._allow.get(key)
        if entry is None or entry[0] != epoch:
            self._allow[key] = [epoch, 1]
            return "admit"
        if entry[1] < self.budget:
            entry[1] += 1
            return "admit"
        return "throttle"

    def score(self, now: float) -> None:
        """One detector round over this round's candidates plus every
        currently-classified key (so calm rounds are observed and the
        classification can relax)."""
        candidates = self._window_keys
        self._window_keys = set()
        candidates |= set(self.classes)
        rates = {key: self.sketch.estimate(key, now=now)
                 for key in candidates}
        self.classes = dict(self.detector.observe_round(rates))
        for key in list(self._allow):
            if key not in self.classes:
                del self._allow[key]

    def stats(self) -> dict:
        counts = self.detector.class_counts()
        return {
            "budget": self.budget,
            "mode": self.detector.mode,
            "baseline": round(self.detector.baseline, 3),
            "suspect": counts["suspect"],
            "flooding": counts["flooding"],
            "sketch_total": self.sketch.total,
        }


class AdmissionGuard:
    """Process-wide admission control (see module docstring)."""

    def __init__(self, config: GuardConfig | None = None, *,
                 clock=time.monotonic, metrics=None):
        self.config = config or GuardConfig()
        self._clock = clock
        self.uid_dim = GuardDimension(
            "uid", self.config.uid_budget, self.config, "relative")
        self.sig_dim = GuardDimension(
            "sig", self.config.sig_budget, self.config, "relative")
        self.endpoint_dim = GuardDimension(
            "endpoint", self.config.endpoint_budget, self.config, "absolute")
        self._dims = (self.uid_dim, self.sig_dim, self.endpoint_dim)
        self._lock = threading.Lock()
        # First round only after one *full* window: scoring a partial
        # opening window would seed the relative baselines with tiny
        # rates and make the first real round look like a global surge.
        self._next_score = self._clock() + self.config.window_s
        self.admitted = ShardedCounter()
        self.throttled = ShardedCounter()
        self.shed_uid = ShardedCounter()
        self.shed_sig = ShardedCounter()
        self.shed_endpoint = ShardedCounter()
        if metrics is not None:
            self.register_metrics(metrics)

    # -------------------------------------------------------------- scoring
    def _maybe_score(self, now: float) -> None:
        if now < self._next_score:
            return
        with self._lock:
            if now < self._next_score:
                return
            self._next_score = now + self.config.window_s
            for dim in self._dims:
                dim.score(now)

    def force_score(self, now: float | None = None) -> None:
        """Run a scoring round immediately (tests, stats endpoints)."""
        if now is None:
            now = self._clock()
        with self._lock:
            self._next_score = now + self.config.window_s
            for dim in self._dims:
                dim.score(now)

    # ------------------------------------------------------------ the spine
    def admit_add(self, uid, sig_id, now: float | None = None) -> bool:
        """Validator entry: one offered ADD whose token resolved to
        ``uid`` carrying signature ``sig_id``.  Observes both volume
        dimensions (offered, not admitted — see module docstring), then
        decides."""
        if now is None:
            now = self._clock()
        self.uid_dim.observe(uid, now)
        self.sig_dim.observe(sig_id, now)
        self._maybe_score(now)
        uid_action = self.uid_dim.admit(uid, now)
        if uid_action == "shed":
            self.shed_uid.add()
            return False
        if uid_action == "throttle":
            self.throttled.add()
            return False
        sig_action = self.sig_dim.admit(sig_id, now)
        if sig_action != "admit":
            self.shed_sig.add()
            return False
        self.admitted.add()
        return True

    def admit_uid(self, uid, now: float | None = None) -> bool:
        """Replica fast path: uid dimension only (the blob is not parsed
        on replicas; the owner's guard screens the sig dimension)."""
        if now is None:
            now = self._clock()
        self.uid_dim.observe(uid, now)
        self._maybe_score(now)
        action = self.uid_dim.admit(uid, now)
        if action == "admit":
            self.admitted.add()
            return True
        (self.shed_uid if action == "shed" else self.throttled).add()
        return False

    def endpoint_action(self, endpoint_key, now: float | None = None) -> str:
        """Event-loop precheck: 'admit' or 'shed'.  One dict lookup on
        the hot path; no sketch update (the endpoint dimension counts
        abuse feedback, not raw frames)."""
        if now is None:
            now = self._clock()
        self._maybe_score(now)
        if self.endpoint_dim.flow_class(endpoint_key) is FlowClass.FLOODING:
            self.shed_endpoint.add()
            return "shed"
        return "admit"

    def note_rejection(self, endpoint_key, verdict: str,
                       now: float | None = None) -> None:
        """Validation feedback: a request from ``endpoint_key`` was
        rejected with ``verdict``.  Abusive verdicts feed the endpoint
        sketch; sheds feed it too, which is what keeps a flooding
        endpoint classified while it is being shed."""
        if endpoint_key is None or verdict not in ABUSE_VERDICTS:
            return
        if now is None:
            now = self._clock()
        self.endpoint_dim.observe(endpoint_key, now)

    # ---------------------------------------------------------------- stats
    def shed_total(self) -> int:
        return (self.shed_uid.value() + self.shed_sig.value()
                + self.shed_endpoint.value())

    def stats_payload(self) -> dict:
        return {
            "window_s": self.config.window_s,
            "budget": self.config.budget,
            "admitted": self.admitted.value(),
            "throttled": self.throttled.value(),
            "shed": {
                "uid": self.shed_uid.value(),
                "sig": self.shed_sig.value(),
                "endpoint": self.shed_endpoint.value(),
            },
            "detector_rounds": self.uid_dim.detector.rounds,
            "dimensions": {dim.name: dim.stats() for dim in self._dims},
        }

    def register_metrics(self, metrics) -> None:
        """Derived guard instruments + the mergeable sketch exports."""
        metrics.register_counter("guard.admitted", self.admitted.value)
        metrics.register_counter("guard.throttled", self.throttled.value)
        metrics.register_counter("guard.shed", self.shed_total)
        metrics.register_counter("guard.shed_uid", self.shed_uid.value)
        metrics.register_counter("guard.shed_sig", self.shed_sig.value)
        metrics.register_counter("guard.shed_endpoint",
                                 self.shed_endpoint.value)
        register_sketch = getattr(metrics, "register_sketch", None)
        for dim in self._dims:
            metrics.register_gauge(
                f"guard.{dim.name}.suspect_keys",
                lambda d=dim: d.detector.class_counts()["suspect"])
            metrics.register_gauge(
                f"guard.{dim.name}.flooding_keys",
                lambda d=dim: d.detector.class_counts()["flooding"])
            if register_sketch is not None:
                register_sketch(f"guard.{dim.name}", dim.sketch.to_wire)
