"""Per-key flow classification against a robust baseline, with hysteresis.

The detector is deliberately dumb about *where* rates come from — the
admission layer feeds it ``{key: windowed_count}`` maps once per scoring
round and it answers ``{key: FlowClass}``.  Two scoring modes cover the
guard's two kinds of signal:

* ``relative`` — for *volume* dimensions (offered ADDs per uid, per
  signature id) where a "normal" rate exists and the flood is whoever
  towers over it.  The baseline is an EWMA over the median of the last
  few rounds' per-key medians: the inner median is robust against the
  attackers themselves (a flood can dominate traffic *volume*, but the
  keys sampled each round are distinct senders, so the median key stays
  benign until attackers outnumber benign *identities*), the
  median-of-rounds absorbs one weird round, and the EWMA smooths the
  rest.  Classification needs both a ratio over baseline AND an absolute
  budget floor — a lone key in a quiet system scores high on ratio
  alone, and a fleet-wide lull must not turn ordinary senders suspect.
* ``absolute`` — for *abuse* dimensions (rejected requests per source
  endpoint) where any sustained signal is bad and a population median
  would self-normalize (only abusers have abuse, so the "typical abuser"
  is no baseline at all).  The budget itself is the threshold.

Hysteresis: upgrades (benign → suspect → flooding) take effect on the
round that observes them; downgrades require ``calm_rounds`` consecutive
calm rounds and step down one level at a time, so a sender oscillating
around a threshold cannot flap the admission decision.
"""

from __future__ import annotations

import enum
import statistics

__all__ = ["FlowClass", "FloodDetector"]


class FlowClass(enum.IntEnum):
    """Ordered so max()/comparisons express severity."""

    BENIGN = 0
    SUSPECT = 1
    FLOODING = 2


class FloodDetector:
    """Periodic scorer; not thread-safe (callers serialize rounds)."""

    def __init__(self, budget: float, *, mode: str = "relative",
                 suspect_ratio: float = 4.0, flood_ratio: float = 8.0,
                 calm_rounds: int = 3, ewma_alpha: float = 0.3,
                 median_windows: int = 5, baseline_floor: float = 1.0):
        if mode not in ("relative", "absolute"):
            raise ValueError(f"unknown detector mode {mode!r}")
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.budget = float(budget)
        self.mode = mode
        self.suspect_ratio = float(suspect_ratio)
        self.flood_ratio = float(flood_ratio)
        self.calm_rounds = max(1, int(calm_rounds))
        self.ewma_alpha = float(ewma_alpha)
        self.baseline_floor = float(baseline_floor)
        self._round_medians: list[float] = []
        self._median_windows = max(1, int(median_windows))
        self._ewma: float | None = None
        #: key -> [FlowClass, consecutive calm rounds]
        self._state: dict = {}
        self.rounds = 0
        self.upgrades = 0
        self.downgrades = 0

    # ------------------------------------------------------------ baseline
    def _update_baseline(self, rates) -> float:
        if self.mode == "absolute":
            return self.budget
        # Classified keys are excluded from their own baseline: a flood
        # left to run would otherwise drag the median up round by round
        # until it self-normalized and the class relaxed mid-attack.
        # (``_state`` still holds last round's classes here — baseline
        # updates before classification.)
        state = self._state
        positive = [r for k, r in rates.items() if r > 0 and k not in state]
        if positive:
            round_median = float(statistics.median(positive))
            self._round_medians.append(round_median)
            if len(self._round_medians) > self._median_windows:
                del self._round_medians[0]
        if self._round_medians:
            base = float(statistics.median(self._round_medians))
            if self._ewma is None:
                self._ewma = base
            else:
                alpha = self.ewma_alpha
                self._ewma = alpha * base + (1.0 - alpha) * self._ewma
        return max(self._ewma or 0.0, self.baseline_floor)

    @property
    def baseline(self) -> float:
        if self.mode == "absolute":
            return self.budget
        return max(self._ewma or 0.0, self.baseline_floor)

    # ---------------------------------------------------------------- raw
    def _raw_class(self, rate: float, baseline: float) -> FlowClass:
        if self.mode == "absolute":
            if rate >= self.budget:
                return FlowClass.FLOODING
            if rate >= self.budget / 2.0:
                return FlowClass.SUSPECT
            return FlowClass.BENIGN
        score = rate / baseline
        if rate >= self.budget and score >= self.flood_ratio:
            return FlowClass.FLOODING
        if rate >= self.budget / 2.0 and score >= self.suspect_ratio:
            return FlowClass.SUSPECT
        return FlowClass.BENIGN

    def score(self, key, rate: float) -> float:
        """The key's anomaly score under the current baseline (for
        stats/debugging; classification goes through rounds)."""
        return float(rate) / max(self.baseline, 1e-9)

    # -------------------------------------------------------------- rounds
    def observe_round(self, rates: dict) -> dict:
        """Fold one scoring round in; returns ``{key: FlowClass}`` for
        every currently *non-benign* key (after hysteresis).

        ``rates`` should cover every key worth classifying this round —
        the caller includes all currently-classified keys (their rate may
        be 0 now: that is how a retired flooder serves its calm rounds
        and relaxes back).
        """
        baseline = self._update_baseline(rates)
        state = self._state
        for key in set(rates) | set(state):
            raw = self._raw_class(float(rates.get(key, 0.0)), baseline)
            entry = state.get(key)
            current = entry[0] if entry else FlowClass.BENIGN
            if raw > current:
                state[key] = [raw, 0]
                self.upgrades += 1
            elif raw == current:
                if entry is not None:
                    entry[1] = 0
            else:
                # Calmer than the held class: serve out the hysteresis.
                entry[1] += 1
                if entry[1] >= self.calm_rounds:
                    self.downgrades += 1
                    stepped = FlowClass(current - 1)
                    if stepped is FlowClass.BENIGN:
                        del state[key]
                    else:
                        state[key] = [stepped, 0]
        self.rounds += 1
        return {key: entry[0] for key, entry in state.items()}

    @property
    def classes(self) -> dict:
        """Current non-benign keys and their class."""
        return {key: entry[0] for key, entry in self._state.items()}

    def class_counts(self) -> dict[str, int]:
        counts = {"suspect": 0, "flooding": 0}
        for entry in self._state.values():
            if entry[0] is FlowClass.FLOODING:
                counts["flooding"] += 1
            elif entry[0] is FlowClass.SUSPECT:
                counts["suspect"] += 1
        return counts
