"""Count-min sketches with conservative update and sliding decay windows.

A count-min sketch answers "how many times has key *k* been seen?" in
O(1) time and O(width × depth) memory regardless of how many distinct
keys flow past — exactly what a flood detector needs when the keys are
attacker-chosen (sender uids, source endpoints, signature ids) and an
exact table would itself be a memory-exhaustion target.

Guarantees (for ``width = ⌈e/ε⌉``, ``depth = ⌈ln(1/δ)⌉``):

* estimates never *under*-count: ``estimate(k) >= true_count(k)``;
* with probability at least ``1 - δ`` the overestimate is bounded:
  ``estimate(k) <= true_count(k) + ε·N`` where ``N`` is the stream total.

Two implementation choices matter here:

* **Conservative update** bumps only the cells that are at the current
  minimum for the key, which tightens overestimates substantially on
  skewed streams (a flood is maximally skewed) without weakening either
  guarantee.
* **Deterministic hashing.**  Row indexes come from one ``blake2b``
  digest per key via Kirsch-Mitzenmacher double hashing (``h1 + i·h2``
  per row), *not* the builtin ``hash`` — ``PYTHONHASHSEED`` randomizes
  the builtin per process, and sketches from sibling federated workers
  must agree cell-for-cell to merge exactly.

:class:`SlidingSketch` adds time decay with two epoch-aligned sketches
(current + previous window): an estimate sums both, a window boundary
retires previous and rotates current into it, so a key that stops
sending is fully forgotten after two windows.  Merging aligns epochs
first, which keeps the federated pooled view exact for workers whose
clocks agree on the epoch (coordinator-spawned siblings do).
"""

from __future__ import annotations

import math
from hashlib import blake2b

__all__ = [
    "CountMinSketch",
    "SlidingSketch",
    "merge_cms_wire",
    "merge_sketch_wire",
]

#: One shared default so every federated worker builds merge-compatible
#: sketches without coordination.
DEFAULT_SEED = 0x5EED


def _key_bytes(key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        return key.to_bytes(16, "big", signed=True)
    return repr(key).encode("utf-8")


class CountMinSketch:
    """A fixed-geometry count-min sketch (rows of Python ints).

    Cell updates are GIL-atomic list writes, so concurrent ``update``
    calls from the worker pool race only by *losing* an increment now
    and then — a direction the sketch already tolerates (it is an
    estimator, and the no-underestimate guarantee is per observed
    update, not per attempted one).
    """

    __slots__ = ("width", "depth", "seed", "rows", "total", "_salt")

    def __init__(self, width: int, depth: int, seed: int = DEFAULT_SEED):
        if width < 1 or depth < 1:
            raise ValueError("sketch needs width >= 1 and depth >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.rows = [[0] * self.width for _ in range(self.depth)]
        self.total = 0
        self._salt = self.seed.to_bytes(8, "big", signed=False)

    @classmethod
    def from_error(cls, epsilon: float = 0.01, delta: float = 0.02,
                   seed: int = DEFAULT_SEED) -> "CountMinSketch":
        """Geometry for an (ε, δ) guarantee: overestimate ≤ ε·N with
        probability ≥ 1-δ."""
        if not (0.0 < epsilon < 1.0 and 0.0 < delta < 1.0):
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width, depth, seed=seed)

    def _indexes(self, key) -> list[int]:
        digest = blake2b(_key_bytes(key), digest_size=16,
                         salt=self._salt).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        width = self.width
        return [(h1 + i * h2) % width for i in range(self.depth)]

    def update(self, key, count: int = 1) -> int:
        """Conservative update; returns the key's new estimate."""
        if count <= 0:
            return self.estimate(key)
        rows = self.rows
        indexes = self._indexes(key)
        current = min(rows[i][indexes[i]] for i in range(self.depth))
        new = current + count
        for i in range(self.depth):
            row = rows[i]
            j = indexes[i]
            if row[j] < new:
                row[j] = new
        self.total += count
        return new

    def estimate(self, key) -> int:
        rows = self.rows
        return min(rows[i][j] for i, j in enumerate(self._indexes(key)))

    # ------------------------------------------------------------- merging
    def _check_compatible(self, other: "CountMinSketch") -> None:
        if (self.width, self.depth, self.seed) != (
                other.width, other.depth, other.seed):
            raise ValueError(
                "cannot merge sketches with different geometry/seed: "
                f"({self.width}x{self.depth}, seed {self.seed}) vs "
                f"({other.width}x{other.depth}, seed {other.seed})"
            )

    def merge_from(self, other: "CountMinSketch") -> None:
        """Element-wise add (exact: commutative, associative, and the
        no-underestimate guarantee survives — each cell already bounds
        its own stream's counts, so the sum bounds the pooled stream)."""
        self._check_compatible(other)
        for mine, theirs in zip(self.rows, other.rows):
            for j, value in enumerate(theirs):
                if value:
                    mine[j] += value
        self.total += other.total

    # ---------------------------------------------------------------- wire
    def to_wire(self) -> dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "total": self.total,
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "CountMinSketch":
        sketch = cls(int(data["width"]), int(data["depth"]),
                     seed=int(data.get("seed", DEFAULT_SEED)))
        rows = data.get("rows", [])
        for i in range(min(sketch.depth, len(rows))):
            row = rows[i]
            for j in range(min(sketch.width, len(row))):
                sketch.rows[i][j] = int(row[j])
        sketch.total = int(data.get("total", 0))
        return sketch


class SlidingSketch:
    """Two-epoch time-decayed count-min sketch.

    Time is bucketed into windows of ``window_s`` seconds.  Updates land
    in the *current* window's sketch; estimates sum current + previous,
    so a rate estimate covers between one and two windows of history and
    a retired key decays to zero within two window rotations.  Rotation
    happens lazily on the next update/estimate — no timer thread, and a
    :class:`~repro.util.clock.ManualClock`-style ``now`` makes every
    transition deterministic in tests.
    """

    __slots__ = ("width", "depth", "seed", "window_s", "epoch",
                 "current", "previous")

    def __init__(self, width: int, depth: int, window_s: float,
                 seed: int = DEFAULT_SEED):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.window_s = float(window_s)
        self.epoch = 0
        self.current = CountMinSketch(width, depth, seed=seed)
        self.previous = CountMinSketch(width, depth, seed=seed)

    @classmethod
    def from_error(cls, window_s: float, epsilon: float = 0.01,
                   delta: float = 0.02,
                   seed: int = DEFAULT_SEED) -> "SlidingSketch":
        proto = CountMinSketch.from_error(epsilon, delta, seed=seed)
        return cls(proto.width, proto.depth, window_s, seed=seed)

    def _epoch_of(self, now: float) -> int:
        return int(now // self.window_s)

    def advance(self, now: float) -> None:
        """Rotate window state up to ``now`` (lazy, idempotent)."""
        epoch = self._epoch_of(now)
        if epoch <= self.epoch:
            return
        if epoch == self.epoch + 1:
            self.previous = self.current
        else:
            # A gap of 2+ windows: everything decays.
            self.previous = CountMinSketch(self.width, self.depth,
                                           seed=self.seed)
        self.current = CountMinSketch(self.width, self.depth,
                                      seed=self.seed)
        self.epoch = epoch

    def update(self, key, count: int = 1, *, now: float) -> int:
        self.advance(now)
        return self.current.update(key, count)

    def estimate(self, key, *, now: float) -> int:
        """The key's count over the trailing one-to-two windows."""
        self.advance(now)
        return self.current.estimate(key) + self.previous.estimate(key)

    @property
    def total(self) -> int:
        return self.current.total + self.previous.total

    # ---------------------------------------------------------------- wire
    def to_wire(self) -> dict:
        return {
            "window_s": self.window_s,
            "epoch": self.epoch,
            "current": self.current.to_wire(),
            "previous": self.previous.to_wire(),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SlidingSketch":
        current = CountMinSketch.from_wire(data["current"])
        sketch = cls(current.width, current.depth,
                     float(data["window_s"]), seed=current.seed)
        sketch.current = current
        sketch.previous = CountMinSketch.from_wire(data["previous"])
        sketch.epoch = int(data.get("epoch", 0))
        return sketch


# --------------------------------------------------------- wire-form merging
def merge_cms_wire(a: dict, b: dict) -> dict:
    """Merge two :meth:`CountMinSketch.to_wire` dicts (exact sum)."""
    merged = CountMinSketch.from_wire(a)
    merged.merge_from(CountMinSketch.from_wire(b))
    return merged.to_wire()


def _rotated_to(wire: dict, epoch: int) -> tuple[dict, dict]:
    """A sliding wire's (current, previous) layers as seen from a later
    ``epoch``: one window behind shifts current into previous; two or
    more behind has fully decayed."""
    empty = CountMinSketch(int(wire["current"]["width"]),
                           int(wire["current"]["depth"]),
                           seed=int(wire["current"].get(
                               "seed", DEFAULT_SEED))).to_wire()
    behind = epoch - int(wire.get("epoch", 0))
    if behind <= 0:
        return wire["current"], wire["previous"]
    if behind == 1:
        return empty, wire["current"]
    return empty, dict(empty)


def merge_sliding_wire(a: dict, b: dict) -> dict:
    """Merge two :meth:`SlidingSketch.to_wire` dicts.

    Epochs are aligned to the newer of the two first (the older sketch's
    layers decay exactly as its own :meth:`~SlidingSketch.advance` would
    have), then each layer merges element-wise — so the pooled sketch
    equals what one sketch observing both streams would hold, assuming
    the sources agreed on wall-clock epochs (federated siblings on one
    host do).
    """
    if float(a["window_s"]) != float(b["window_s"]):
        raise ValueError("cannot merge sliding sketches with different "
                         "window sizes")
    epoch = max(int(a.get("epoch", 0)), int(b.get("epoch", 0)))
    a_cur, a_prev = _rotated_to(a, epoch)
    b_cur, b_prev = _rotated_to(b, epoch)
    return {
        "window_s": float(a["window_s"]),
        "epoch": epoch,
        "current": merge_cms_wire(a_cur, b_cur),
        "previous": merge_cms_wire(a_prev, b_prev),
    }


def merge_sketch_wire(a: dict, b: dict) -> dict:
    """Merge two sketch wire dicts of either flavour — the entry point
    ``repro.obs.export.merge_registry_snapshots`` dispatches through for
    the ``sketches`` section of a registry snapshot."""
    if "window_s" in a or "window_s" in b:
        return merge_sliding_wire(a, b)
    return merge_cms_wire(a, b)
