"""repro.guard — streaming flood detection and adaptive admission control.

The paper's only flood defense is the fixed per-user daily quota
(§III-C1), and its own §IV-B analysis concedes a Sybil fleet with a
handful of encrypted IDs can still push thousands of signatures/day into
the validation pipeline.  This package is the production-shaped answer
(ROADMAP item 3, modeled on OctoSketch-style line-rate sketching):

* :mod:`repro.guard.sketch` — O(1)-memory count-min sketches with
  conservative update and a sliding two-epoch time-decay window, plus an
  exact element-wise merge so federated workers can pool their sketches
  through ``merge_registry_snapshots``;
* :mod:`repro.guard.detector` — a periodic scorer classifying per-key
  rates against a robust baseline (EWMA over a median-of-windows) as
  benign / suspect / flooding, with hysteresis so flapping senders don't
  oscillate;
* :mod:`repro.guard.admission` — the admission controller the server
  spine consults: per-uid and per-signature checks in front of
  quota/adjacency validation, a per-endpoint check cheap enough for the
  transport's event loop, and relax-back once pressure clears.

See ``docs/architecture.md`` §11 for the full pipeline and its
federation story.
"""

from repro.guard.admission import (
    AdmissionGuard,
    GuardConfig,
)
from repro.guard.detector import FloodDetector, FlowClass
from repro.guard.sketch import (
    CountMinSketch,
    SlidingSketch,
    merge_sketch_wire,
)

__all__ = [
    "AdmissionGuard",
    "GuardConfig",
    "FloodDetector",
    "FlowClass",
    "CountMinSketch",
    "SlidingSketch",
    "merge_sketch_wire",
]
