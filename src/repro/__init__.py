"""Communix: a collaborative deadlock immunity framework.

A from-scratch Python reproduction of *Communix: A Framework for
Collaborative Deadlock Immunity* (Jula, Tozun, Candea - DSN 2011), including
the Dimmunix deadlock-immunity runtime it builds on.

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import DimmunixRuntime, DimmunixLock, DimmunixConfig

    runtime = DimmunixRuntime(config=DimmunixConfig())
    runtime.start()
    a, b = DimmunixLock(runtime, "A"), DimmunixLock(runtime, "B")
    # ... run deadlock-prone code; the first deadlock is detected, its
    # signature saved, and later runs are steered away from it.

Collaborative immunity adds a server and per-machine nodes::

    from repro import CommunixServer, InProcessEndpoint, CommunixNode

    server = CommunixServer()
    node = CommunixNode("alice", app, InProcessEndpoint(server))
    node.start()
    node.sync_now()              # download other users' signatures
    node.start_application()     # agent validates + generalizes them
"""

from repro.client import CommunixClient, InProcessEndpoint, TcpEndpoint
from repro.core import (
    CallStack,
    ClientSideValidator,
    CommunixAgent,
    CommunixPlugin,
    DeadlockHistory,
    DeadlockSignature,
    Frame,
    Generalizer,
    LocalRepository,
    PythonAppAdapter,
    ThreadSignature,
    merge_signatures,
)
from repro.core.node import CommunixNode
from repro.crypto import AES128, UserIdAuthority
from repro.dimmunix import (
    DimmunixConfig,
    DimmunixLock,
    DimmunixRLock,
    DimmunixRuntime,
    get_runtime,
    patch_threading,
    set_runtime,
)
from repro.server import CommunixServer, ServerConfig, ServerTransport
from repro.util.errors import (
    CommunixError,
    CryptoError,
    DeadlockError,
    ProtocolError,
    RateLimitExceeded,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "CommunixClient",
    "InProcessEndpoint",
    "TcpEndpoint",
    "CallStack",
    "ClientSideValidator",
    "CommunixAgent",
    "CommunixPlugin",
    "DeadlockHistory",
    "DeadlockSignature",
    "Frame",
    "Generalizer",
    "LocalRepository",
    "PythonAppAdapter",
    "ThreadSignature",
    "merge_signatures",
    "CommunixNode",
    "AES128",
    "UserIdAuthority",
    "DimmunixConfig",
    "DimmunixLock",
    "DimmunixRLock",
    "DimmunixRuntime",
    "get_runtime",
    "patch_threading",
    "set_runtime",
    "CommunixServer",
    "ServerConfig",
    "ServerTransport",
    "CommunixError",
    "CryptoError",
    "DeadlockError",
    "ProtocolError",
    "RateLimitExceeded",
    "ValidationError",
    "__version__",
]
