"""Exporters: Prometheus text rendering and the periodic JSONL log.

``render_prometheus`` turns a registry snapshot into the Prometheus
text exposition format (version 0.0.4) served by the transport's admin
plane on ``--admin-addr``.  Naming scheme: dotted instrument names become
underscore-joined and ``communix_``-prefixed; counters gain ``_total``,
histograms gain ``_seconds`` and render as summaries with p50/p95/p99
quantiles plus ``_sum``/``_count`` (fixed precomputed quantiles — the
buckets are geometric, so re-exposing all 108 as a Prometheus histogram
would be noise).

``MetricsLogWriter`` appends one JSON object per interval to
``--metrics-log PATH`` — the full ``registry.snapshot()`` plus a
timestamp — and writes a final line on stop, so a bench run's artifact
can attribute server-side time even for runs shorter than one interval.
"""

from __future__ import annotations

import json
import threading
import time

from repro.obs.histogram import HistogramSnapshot, BUCKET_COUNT
from repro.util.logging import get_logger

__all__ = ["render_prometheus", "MetricsLogWriter", "merge_registry_snapshots"]

log = get_logger("obs.export")

_QUANTILES = ((50.0, "0.5"), (95.0, "0.95"), (99.0, "0.99"))


def metric_name(name: str, namespace: str = "communix") -> str:
    """``stage.validate`` -> ``communix_stage_validate``."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{namespace}_{cleaned}"


def _snapshot_from_wire(data: dict) -> HistogramSnapshot:
    counts = [0] * BUCKET_COUNT
    for key, value in data.get("buckets", {}).items():
        index = int(key)
        if 0 <= index < BUCKET_COUNT:
            counts[index] = int(value)
    minimum = data.get("min")
    exemplars: dict[int, str] = {}
    for key, trace_id in data.get("exemplars", {}).items():
        index = int(key)
        if 0 <= index < BUCKET_COUNT:
            exemplars[index] = str(trace_id)
    return HistogramSnapshot(
        counts,
        int(data.get("count", 0)),
        float(data.get("total", 0.0)),
        0.0 if minimum is None else float(minimum),
        float(data.get("max", 0.0)),
        exemplars,
    )


def render_prometheus(snapshot: dict, namespace: str = "communix") -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict as Prometheus text."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, wire in snapshot.get("histograms", {}).items():
        metric = metric_name(name, namespace) + "_seconds"
        hist = _snapshot_from_wire(wire)
        lines.append(f"# TYPE {metric} summary")
        for pct, label in _QUANTILES:
            lines.append(
                f'{metric}{{quantile="{label}"}} '
                f"{_fmt(hist.percentile(pct))}"
            )
        lines.append(f"{metric}_sum {_fmt(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    # Prometheus wants plain decimal; repr keeps full precision while
    # rendering integral floats as "2.0" rather than "2e+00".
    return repr(float(value))


def merge_registry_snapshots(snapshots) -> dict:
    """Fold several ``MetricsRegistry.snapshot()`` dicts into one.

    The federated server tier runs one registry per worker process; the
    coordinator merges them so the combined ``--metrics-log`` line (and
    the final stats print) describes the whole tier.  Counters and gauges
    sum by name — for additive gauges (queue depths, connection counts)
    that is the pooled value; replicated gauges like ``db.size`` read as
    ``procs × size`` and callers that care overwrite them from one
    authoritative worker.  Histograms merge bucket-by-bucket with summed
    ``count``/``total`` and pooled ``min``/``max``, so percentiles of the
    merged histogram equal percentiles of the pooled samples (same
    guarantee as ``loadgen.metrics.merge_snapshots``).
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, HistogramSnapshot] = {}
    sketches: dict[str, dict] = {}
    have_sketches = False
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, wire in snapshot.get("sketches", {}).items():
            have_sketches = True
            held = sketches.get(name)
            if held is None:
                sketches[name] = wire
                continue
            # Lazy import: obs must stay importable without the guard
            # package in degenerate environments, and guard imports obs.
            from repro.guard.sketch import merge_sketch_wire

            try:
                sketches[name] = merge_sketch_wire(held, wire)
            except ValueError:
                # Geometry mismatch (heterogeneous worker configs): keep
                # the first rather than poisoning the whole merge.
                continue
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, wire in snapshot.get("histograms", {}).items():
            part = _snapshot_from_wire(wire)
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = part
                continue
            for i in range(BUCKET_COUNT):
                merged.counts[i] += part.counts[i]
            merged.count += part.count
            merged.total += part.total
            if part.count:
                merged.min = (part.min if merged.count == part.count
                              else min(merged.min, part.min))
                merged.max = max(merged.max, part.max)
            # Exemplars are "most recent trace in bucket"; across workers
            # there is no ordering, so any representative will do — later
            # snapshots win.
            merged.exemplars.update(part.exemplars)
    for hist in histograms.values():
        if hist.count == 0:
            hist.min = 0.0
    merged = {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name].to_wire()
                       for name in sorted(histograms)},
    }
    if have_sketches:
        merged["sketches"] = {name: sketches[name]
                              for name in sorted(sketches)}
    return merged


class MetricsLogWriter:
    """Background thread appending registry snapshots as JSONL."""

    def __init__(self, registry, path: str, interval: float = 5.0) -> None:
        self._registry = registry
        self._path = path
        self._interval = max(0.05, float(interval))
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Failed writes are counted (so a wedged disk shows up in the
        # other exporters) and warned about exactly once — a full disk
        # must not turn the metrics thread into a log flood.
        self._write_errors = registry.counter("obs.log_write_errors")
        self._warned = False

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="metrics-log", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        # Final line so short runs (and clean shutdowns) always leave a
        # complete snapshot behind.
        self._write_line()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._write_line()

    def _write_line(self) -> None:
        record = {"ts": time.time(), **self._registry.snapshot()}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        try:
            with open(self._path, "a", encoding="utf-8") as fh:
                fh.write(line)
        except OSError as exc:
            self._write_errors.add()
            if not self._warned:
                self._warned = True
                log.warning(
                    "metrics log write to %s failed (%s); counting "
                    "further failures on obs.log_write_errors",
                    self._path, exc,
                )


def last_snapshot_line(path: str) -> dict | None:
    """Parse the last JSONL line of a ``--metrics-log`` file, if any.

    Shared by the benchmarks that attach a server-metrics section to
    their artifacts.
    """
    last = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    last = line
    except OSError:
        return None
    if last is None:
        return None
    try:
        return json.loads(last)
    except ValueError:
        return None
