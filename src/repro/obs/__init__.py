"""Server-side observability: metrics registry, request tracing, exporters.

``repro.obs`` is the instrumentation layer the server threads through
every stage of its request pipeline (see ``docs/architecture.md`` §9):

* :mod:`repro.obs.histogram` — the geometric latency-bucket math (shared
  with the client swarm's :mod:`repro.loadgen.metrics`, so server-side and
  client-side histograms are directly comparable) and
  :class:`StageHistogram`, a thread-sharded recorder safe to hammer from
  the worker pool and the event loop at once;
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, the process-wide
  home of named counters, gauges, and stage histograms, plus
  :data:`NULL_REGISTRY`, the compiled-out no-op twin the overhead
  benchmarks compare against;
* :mod:`repro.obs.trace` — :class:`RequestTrace`, the per-request stage
  stamp card behind the slow-request log;
* :mod:`repro.obs.export` — the Prometheus text renderer behind the
  admin plane and the periodic JSONL :class:`MetricsLogWriter` benches
  consume.

Recording a sample is allocation-free and lock-free (the
:class:`~repro.obs.registry.ShardedCounter` idiom), so instrumentation is
safe on the event-loop thread; ``bench_hotpath.py`` gates its overhead.
"""

from repro.obs.histogram import (
    BUCKET_COUNT,
    StageHistogram,
    bucket_index,
    bucket_upper_bound,
    summary_from_wire,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    ShardedCounter,
)
from repro.obs.trace import (
    ALL_STAGES,
    STAGE_APPLY_LAG,
    STAGE_CRYPTO,
    STAGE_DB_APPEND,
    STAGE_DB_READ,
    STAGE_FLUSH,
    STAGE_GROUP_COMMIT,
    STAGE_GUARD_CHECK,
    STAGE_HANDLER,
    STAGE_OWNER_QUEUE,
    STAGE_QUEUE_WAIT,
    STAGE_REPL_FORWARD,
    STAGE_VALIDATE,
    STAGE_WAL_FSYNC,
    RequestTrace,
    TraceBuffer,
    decode_trace_stages,
    encode_trace_stages,
    format_trace_id,
    mint_trace_id,
)
from repro.obs.export import (
    MetricsLogWriter,
    last_snapshot_line,
    merge_registry_snapshots,
    metric_name,
    render_prometheus,
)

__all__ = [
    "ALL_STAGES",
    "BUCKET_COUNT",
    "Gauge",
    "MetricsLogWriter",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "RequestTrace",
    "STAGE_APPLY_LAG",
    "STAGE_CRYPTO",
    "STAGE_DB_APPEND",
    "STAGE_DB_READ",
    "STAGE_FLUSH",
    "STAGE_GROUP_COMMIT",
    "STAGE_GUARD_CHECK",
    "STAGE_HANDLER",
    "STAGE_OWNER_QUEUE",
    "STAGE_QUEUE_WAIT",
    "STAGE_REPL_FORWARD",
    "STAGE_VALIDATE",
    "STAGE_WAL_FSYNC",
    "ShardedCounter",
    "StageHistogram",
    "TraceBuffer",
    "bucket_index",
    "bucket_upper_bound",
    "decode_trace_stages",
    "encode_trace_stages",
    "format_trace_id",
    "last_snapshot_line",
    "merge_registry_snapshots",
    "metric_name",
    "mint_trace_id",
    "render_prometheus",
    "summary_from_wire",
]
