"""Per-request stage tracing for the slow-request log and ``/traces``.

A :class:`RequestTrace` is a cheap stamp card handed down the pipeline
(transport → server → validator → database → store → WAL) that each
stage stamps with its elapsed seconds.  Traces are allocated when the
slow-request log is armed (``--slow-request-ms``) or metrics are on;
the always-on per-stage *histograms* live in the registry and don't
need one, but they borrow the trace's id as a per-bucket exemplar.

Since the federated tier (PR 8) a single ADD can cross a process
boundary: the replica mints a trace id, carries it on the forward hop,
and the owner stamps its stages on *the same* id; the durability reply
ships the owner-side stamps back (:func:`encode_trace_stages` /
:func:`decode_trace_stages`) so the replica folds them into one trace.

Stage names are shared constants so histogram names, trace keys, and the
docs' stage diagram can never drift apart:

    queue_wait -> guard_check -> validate (crypto on cache miss)
    -> repl_forward (replica->owner hop; owner_queue inside)
    -> db_append (wal_fsync inside; group_commit is the leader wait)
    -> handler (end-to-end dispatch) -> flush
    apply_lag rides the apply stream, not the request path.
"""

from __future__ import annotations

import heapq
import itertools
import random
import struct
import threading

__all__ = [
    "STAGE_QUEUE_WAIT",
    "STAGE_GUARD_CHECK",
    "STAGE_VALIDATE",
    "STAGE_CRYPTO",
    "STAGE_REPL_FORWARD",
    "STAGE_OWNER_QUEUE",
    "STAGE_DB_APPEND",
    "STAGE_DB_READ",
    "STAGE_WAL_FSYNC",
    "STAGE_GROUP_COMMIT",
    "STAGE_HANDLER",
    "STAGE_FLUSH",
    "STAGE_APPLY_LAG",
    "ALL_STAGES",
    "RequestTrace",
    "TraceBuffer",
    "mint_trace_id",
    "format_trace_id",
    "encode_trace_stages",
    "decode_trace_stages",
]

STAGE_QUEUE_WAIT = "queue_wait"      # frame parsed -> worker dequeues it
STAGE_GUARD_CHECK = "guard_check"    # admission-guard verdict (uid/sig)
STAGE_VALIDATE = "validate"          # token decode + quota + adjacency
STAGE_CRYPTO = "crypto"              # authority.decode on token-cache miss
STAGE_REPL_FORWARD = "repl_forward"  # replica->owner round-trip, whole hop
STAGE_OWNER_QUEUE = "owner_queue"    # forward hop minus owner's own stages
STAGE_DB_APPEND = "db_append"        # database append incl. durable store
STAGE_DB_READ = "db_read"            # wire-page composition for GET
STAGE_WAL_FSYNC = "wal_fsync"        # flush + fsync wait inside the WAL
STAGE_GROUP_COMMIT = "group_commit"  # commit-leader wait inside wal_fsync
STAGE_HANDLER = "handler"            # whole dispatch on the worker
STAGE_FLUSH = "flush"                # response queued -> last byte written
STAGE_APPLY_LAG = "apply_lag"        # owner publish -> replica apply

ALL_STAGES = (
    STAGE_QUEUE_WAIT,
    STAGE_GUARD_CHECK,
    STAGE_VALIDATE,
    STAGE_CRYPTO,
    STAGE_REPL_FORWARD,
    STAGE_OWNER_QUEUE,
    STAGE_DB_APPEND,
    STAGE_DB_READ,
    STAGE_WAL_FSYNC,
    STAGE_GROUP_COMMIT,
    STAGE_HANDLER,
    STAGE_FLUSH,
    STAGE_APPLY_LAG,
)

# Trace ids are u64: a random per-process prefix (so ids minted by
# different federated workers can't collide) over a monotonically
# increasing suffix.  next() on an itertools.count is GIL-atomic, so
# minting needs no lock.
_TRACE_ID_BITS = 64
_SEQ_BITS = 40
_SEQ_MASK = (1 << _SEQ_BITS) - 1
_trace_base = random.getrandbits(_TRACE_ID_BITS - _SEQ_BITS) << _SEQ_BITS
_trace_seq = itertools.count(1)


def mint_trace_id() -> int:
    """A fresh non-zero u64 trace id (0 is reserved for "untraced")."""
    trace_id = _trace_base | (next(_trace_seq) & _SEQ_MASK)
    return trace_id if trace_id else 1


def format_trace_id(trace_id: int) -> str:
    """Canonical 16-hex-digit rendering used in logs and ``/traces``."""
    return f"{trace_id:016x}"


class RequestTrace:
    """Stage -> elapsed-seconds stamps for one request."""

    __slots__ = ("op", "trace_id", "stages")

    def __init__(self, op: str = "?", trace_id: int = 0) -> None:
        self.op = op
        self.trace_id = trace_id if trace_id else mint_trace_id()
        self.stages: dict[str, float] = {}

    def stamp(self, stage: str, seconds: float) -> None:
        # A stage can run more than once per request (e.g. wal_fsync
        # under rotation); accumulate.
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def merge_stages(self, stages: dict[str, float]) -> None:
        """Fold another process's stamps (the owner's) into this trace."""
        for stage, seconds in stages.items():
            self.stamp(stage, seconds)

    def hex_id(self) -> str:
        return format_trace_id(self.trace_id)

    def total(self) -> float:
        return self.stages.get(STAGE_HANDLER, 0.0) + self.stages.get(
            STAGE_QUEUE_WAIT, 0.0
        )

    def breakdown(self) -> str:
        """``stage=1.23ms`` pairs in pipeline order, for the slow log."""
        parts = [
            f"{stage}={self.stages[stage] * 1000.0:.2f}ms"
            for stage in ALL_STAGES
            if stage in self.stages
        ]
        return " ".join(parts) if parts else "no stages stamped"


# ---------------------------------------------------------------------------
# Trace-context wire form
# ---------------------------------------------------------------------------
#
# The replication reply carries the owner-side stamps back to the
# replica as:  u8 entry count, then per entry u8 name length + UTF-8
# stage name + f64 big-endian seconds.  Stage names are short constants,
# so u8 lengths are ample; the codec round-trips losslessly (f64 in,
# f64 out — property-tested in tests/obs).

_F64 = struct.Struct(">d")


def encode_trace_stages(stages: dict[str, float]) -> bytes:
    """Serialise stage stamps for the replication reply (lossless)."""
    if not stages:
        return b"\x00"
    items = list(stages.items())[:255]
    parts = [bytes((len(items),))]
    for name, seconds in items:
        raw = name.encode("utf-8")
        if len(raw) > 255:
            raise ValueError(f"stage name too long: {name!r}")
        parts.append(bytes((len(raw),)))
        parts.append(raw)
        parts.append(_F64.pack(float(seconds)))
    return b"".join(parts)


def decode_trace_stages(data: bytes) -> dict[str, float]:
    """Inverse of :func:`encode_trace_stages`."""
    if not data:
        return {}
    count = data[0]
    offset = 1
    stages: dict[str, float] = {}
    for _ in range(count):
        name_len = data[offset]
        offset += 1
        name = data[offset:offset + name_len].decode("utf-8")
        offset += name_len
        (seconds,) = _F64.unpack_from(data, offset)
        offset += _F64.size
        stages[name] = seconds
    return stages


class TraceBuffer:
    """Bounded ring of the N slowest completed traces.

    Backed by a min-heap keyed on trace total, so a new trace evicts the
    *fastest* retained one; ``snapshot()`` returns slowest-first.  A
    lock-free floor pre-check keeps the steady-state cost of a fast
    request at one comparison once the buffer is full.
    """

    __slots__ = ("_capacity", "_lock", "_heap", "_seq", "_floor")

    def __init__(self, capacity: int = 64) -> None:
        self._capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        # Heap items: (total_seconds, tiebreak_seq, entry_dict).
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()
        self._floor = -1.0  # eviction threshold once full; racy read ok

    def __len__(self) -> int:
        return len(self._heap)

    def note(self, trace: RequestTrace) -> None:
        if trace is None or not trace.stages:
            return
        total = trace.total()
        if total <= 0.0:
            # A partial trace (the owner's side of a forwarded ADD) has
            # no handler/queue_wait stamps; rank it by its stage sum.
            total = sum(trace.stages.values())
        if total <= self._floor:
            return
        entry = {
            "trace_id": trace.hex_id(),
            "op": trace.op,
            "total_ms": total * 1000.0,
            "stages_ms": {
                stage: trace.stages[stage] * 1000.0
                for stage in ALL_STAGES
                if stage in trace.stages
            },
        }
        item = (total, next(self._seq), entry)
        with self._lock:
            if len(self._heap) < self._capacity:
                heapq.heappush(self._heap, item)
            elif total > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)
            else:
                return
            if len(self._heap) >= self._capacity:
                self._floor = self._heap[0][0]

    def snapshot(self) -> list[dict]:
        """Retained traces, slowest first (dicts are JSON-ready copies)."""
        with self._lock:
            items = sorted(self._heap, reverse=True)
        return [dict(entry) for _, _, entry in items]

    def find(self, trace_id: str) -> dict | None:
        """Look up one retained trace by its 16-hex-digit id."""
        with self._lock:
            for _, _, entry in self._heap:
                if entry["trace_id"] == trace_id:
                    return dict(entry)
        return None
