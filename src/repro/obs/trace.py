"""Per-request stage tracing for the slow-request log.

A :class:`RequestTrace` is a cheap stamp card handed down the pipeline
(transport → server → validator → database → store → WAL) that each
stage stamps with its elapsed seconds.  Traces are only allocated when
the slow-request log is armed (``--slow-request-ms``); the always-on
per-stage *histograms* live in the registry and don't need one.

Stage names are shared constants so histogram names, trace keys, and the
docs' stage diagram can never drift apart:

    queue_wait -> validate (crypto on cache miss) -> db_append
    (wal_fsync inside) -> handler (end-to-end dispatch) -> flush
"""

from __future__ import annotations

__all__ = [
    "STAGE_QUEUE_WAIT",
    "STAGE_VALIDATE",
    "STAGE_CRYPTO",
    "STAGE_DB_APPEND",
    "STAGE_DB_READ",
    "STAGE_WAL_FSYNC",
    "STAGE_HANDLER",
    "STAGE_FLUSH",
    "ALL_STAGES",
    "RequestTrace",
]

STAGE_QUEUE_WAIT = "queue_wait"  # frame parsed -> worker dequeues it
STAGE_VALIDATE = "validate"      # token decode + quota + adjacency
STAGE_CRYPTO = "crypto"          # authority.decode on token-cache miss
STAGE_DB_APPEND = "db_append"    # database append incl. durable store
STAGE_DB_READ = "db_read"        # wire-page composition for GET
STAGE_WAL_FSYNC = "wal_fsync"    # flush + fsync wait inside the WAL
STAGE_HANDLER = "handler"        # whole dispatch on the worker
STAGE_FLUSH = "flush"            # response queued -> last byte written

ALL_STAGES = (
    STAGE_QUEUE_WAIT,
    STAGE_VALIDATE,
    STAGE_CRYPTO,
    STAGE_DB_APPEND,
    STAGE_DB_READ,
    STAGE_WAL_FSYNC,
    STAGE_HANDLER,
    STAGE_FLUSH,
)


class RequestTrace:
    """Stage -> elapsed-seconds stamps for one request."""

    __slots__ = ("op", "stages")

    def __init__(self, op: str = "?") -> None:
        self.op = op
        self.stages: dict[str, float] = {}

    def stamp(self, stage: str, seconds: float) -> None:
        # A stage can run more than once per request (e.g. wal_fsync
        # under rotation); accumulate.
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def total(self) -> float:
        return self.stages.get(STAGE_HANDLER, 0.0) + self.stages.get(
            STAGE_QUEUE_WAIT, 0.0
        )

    def breakdown(self) -> str:
        """``stage=1.23ms`` pairs in pipeline order, for the slow log."""
        parts = [
            f"{stage}={self.stages[stage] * 1000.0:.2f}ms"
            for stage in ALL_STAGES
            if stage in self.stages
        ]
        return " ".join(parts) if parts else "no stages stamped"
