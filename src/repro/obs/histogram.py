"""Geometric latency-bucket math and a thread-sharded stage histogram.

The bucket layout is the one ``repro.loadgen.metrics`` has always used
for client-side latencies — ~19% geometric buckets from 1 µs up — hoisted
here so the server records its per-stage timings into *the same* bucket
grid.  A server-side ``stage.validate`` histogram and a client-side
``add`` histogram are directly comparable, and both sides speak the same
wire form (``{"buckets": {...}, "count", "total", "min", "max"}``), so
the STATS v2 payload can be decoded with the client's existing
``LatencyHistogram.from_wire``.

:class:`StageHistogram` is the recording half: each thread owns a private
shard (a flat list of ints/floats), so ``record()`` is a handful of
in-place list writes — no locks, no allocation in steady state — and is
safe to call from the event-loop thread.  ``snapshot()`` merges shards
with the same retry-on-resize discipline as
:class:`repro.obs.registry.ShardedCounter`.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "MIN_LATENCY",
    "GROWTH",
    "BUCKET_COUNT",
    "bucket_index",
    "bucket_upper_bound",
    "StageHistogram",
    "HistogramSnapshot",
    "summary_from_wire",
]

# ~19% geometric buckets: 1us .. ~100s in 108 buckets.  Any change here
# changes the wire form shared with repro.loadgen.metrics — don't.
MIN_LATENCY = 1e-6
GROWTH = 2 ** 0.25
_LOG_GROWTH = math.log(GROWTH)
BUCKET_COUNT = 108


def bucket_index(seconds: float) -> int:
    """Map a latency in seconds to its bucket index."""
    if seconds <= MIN_LATENCY:
        return 0
    index = int(math.log(seconds / MIN_LATENCY) / _LOG_GROWTH) + 1
    return min(index, BUCKET_COUNT - 1)


def bucket_upper_bound(index: int) -> float:
    """Upper latency bound (seconds) covered by bucket ``index``."""
    if index <= 0:
        return MIN_LATENCY
    return MIN_LATENCY * GROWTH ** index


# Shard layout: [count, total, min, max, bucket_0 .. bucket_N-1].  A flat
# list keeps record() to indexed stores with zero per-sample allocation.
_COUNT = 0
_TOTAL = 1
_MIN = 2
_MAX = 3
_HDR = 4


class HistogramSnapshot:
    """Immutable merged view of a :class:`StageHistogram`."""

    __slots__ = ("counts", "count", "total", "min", "max", "exemplars")

    def __init__(self, counts, count, total, minimum, maximum,
                 exemplars=None):
        self.counts = counts
        self.count = count
        self.total = total
        self.min = minimum
        self.max = maximum
        # bucket index -> most recent trace id (hex) seen in that bucket.
        self.exemplars: dict[int, str] = exemplars or {}

    def percentile(self, pct: float) -> float:
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * pct / 100.0))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                return min(bucket_upper_bound(index), self.max)
        return self.max

    def to_wire(self) -> dict:
        """Same wire schema as ``loadgen.metrics.LatencyHistogram.to_wire``.

        The ``exemplars`` key is added only when any were recorded, so
        exemplar-free histograms keep the exact historical wire dict
        (``loadgen``'s ``from_wire`` ignores unknown keys either way).
        """
        wire = {
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }
        if self.exemplars:
            wire["exemplars"] = {
                str(i): trace_id
                for i, trace_id in sorted(self.exemplars.items())
            }
        return wire

    def slowest_exemplar(self) -> str | None:
        """Trace id behind the highest occupied exemplar bucket, if any."""
        if not self.exemplars:
            return None
        return self.exemplars[max(self.exemplars)]

    def summary(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": (self.total / self.count) * 1000.0,
            "min_ms": self.min * 1000.0,
            "max_ms": self.max * 1000.0,
            "p50_ms": self.percentile(50.0) * 1000.0,
            "p95_ms": self.percentile(95.0) * 1000.0,
            "p99_ms": self.percentile(99.0) * 1000.0,
        }


class StageHistogram:
    """Thread-sharded latency histogram with allocation-free recording.

    Each recording thread lazily creates a private shard list on first
    use; after that, ``record()`` touches only that list.  The GIL makes
    individual list-element stores atomic, and no thread ever writes
    another thread's shard, so no lock is needed on the hot path.
    ``snapshot()`` may observe a sample's count before its total (or see
    a brand-new shard appear mid-merge — handled by retrying), which is
    the same mild raciness ``ShardedCounter.value()`` accepts.
    """

    __slots__ = ("_shards", "_local", "_exemplars")

    def __init__(self) -> None:
        self._shards: dict[int, list] = {}
        self._local = threading.local()
        # bucket index -> hex trace id of the most recent traced sample
        # landing there.  A single dict-item store per traced sample is
        # GIL-atomic, so last-write-wins without a lock is fine.
        self._exemplars: dict[int, str] = {}

    def _shard(self) -> list:
        try:
            return self._local.shard
        except AttributeError:
            shard = [0, 0.0, math.inf, 0.0] + [0] * BUCKET_COUNT
            self._shards[threading.get_ident()] = shard
            self._local.shard = shard
            return shard

    def record(self, seconds: float, exemplar: str | None = None) -> None:
        shard = self._shard()
        shard[_COUNT] += 1
        shard[_TOTAL] += seconds
        if seconds < shard[_MIN]:
            shard[_MIN] = seconds
        if seconds > shard[_MAX]:
            shard[_MAX] = seconds
        bucket = bucket_index(seconds)
        shard[bucket + _HDR] += 1
        if exemplar is not None:
            self._exemplars[bucket] = exemplar

    def snapshot(self) -> HistogramSnapshot:
        while True:
            try:
                shards = [list(s) for s in self._shards.values()]
                break
            except RuntimeError:
                # A thread registered a new shard mid-iteration; retry.
                continue
        counts = [0] * BUCKET_COUNT
        count = 0
        total = 0.0
        minimum = math.inf
        maximum = 0.0
        for shard in shards:
            count += shard[_COUNT]
            total += shard[_TOTAL]
            if shard[_MIN] < minimum:
                minimum = shard[_MIN]
            if shard[_MAX] > maximum:
                maximum = shard[_MAX]
            for i in range(BUCKET_COUNT):
                counts[i] += shard[_HDR + i]
        if count == 0:
            minimum = 0.0
        return HistogramSnapshot(
            counts, count, total, minimum, maximum, dict(self._exemplars)
        )

    def to_wire(self) -> dict:
        return self.snapshot().to_wire()

    def summary(self) -> dict:
        return self.snapshot().summary()


def summary_from_wire(data: dict) -> dict:
    """Percentile summary from a wire-form histogram dict.

    Used by the client CLI to pretty-print STATS v2 stage histograms
    without importing the loadgen package.
    """
    counts = [0] * BUCKET_COUNT
    for key, value in dict(data.get("buckets", {})).items():
        index = int(key)
        if 0 <= index < BUCKET_COUNT:
            counts[index] = int(value)
    minimum = data.get("min")
    snap = HistogramSnapshot(
        counts,
        int(data.get("count", 0)),
        float(data.get("total", 0.0)),
        0.0 if minimum is None else float(minimum),
        float(data.get("max", 0.0)),
    )
    return snap.summary()
