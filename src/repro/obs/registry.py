"""Process-wide registry of named counters, gauges, and stage histograms.

The registry is the single rendezvous point between the recording side
(transport loop, worker pool, validator, WAL) and the exporting side
(STATS v2, the Prometheus admin endpoint, the JSONL metrics log).  All
instruments are get-or-create by dotted name — ``stage.validate``,
``loop.select_wait``, ``net.slow_requests`` — and creation is the only
locked operation; recording into an instrument is lock-free.

Two registry flavours share one interface:

* :class:`MetricsRegistry` — the real thing;
* :class:`NullRegistry` / :data:`NULL_REGISTRY` — every instrument is a
  shared no-op, ``enabled`` is ``False`` so call sites can skip even the
  ``perf_counter()`` reads.  ``--no-metrics`` swaps this in, and
  ``bench_hotpath.py`` gates the real registry's overhead against it.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.obs.histogram import StageHistogram

__all__ = [
    "ShardedCounter",
    "Gauge",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]


class ShardedCounter:
    """Lock-free thread-sharded counter (GIL-atomic per-shard adds).

    Each thread bumps a private single-element list; readers sum the
    shards, retrying if a brand-new shard appears mid-iteration.  Moved
    here from ``repro.server.server`` so every layer can share the
    idiom; the server re-exports it unchanged.
    """

    __slots__ = ("_shards", "_local")

    def __init__(self) -> None:
        self._shards: dict[int, list[int]] = {}
        self._local = threading.local()

    def add(self, amount: int = 1) -> None:
        try:
            cell = self._local.cell
        except AttributeError:
            cell = [0]
            self._shards[threading.get_ident()] = cell
            self._local.cell = cell
        cell[0] += amount

    def value(self) -> int:
        while True:
            try:
                return sum(cell[0] for cell in self._shards.values())
            except RuntimeError:
                # A thread registered a new shard mid-sum; retry.
                continue


class Gauge:
    """A last-write-wins point-in-time value (GIL-atomic set/read)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def value(self) -> float:
        return self._value


class _NullCounter:
    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        pass

    def value(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def value(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()

    def record(self, seconds: float, exemplar: str | None = None) -> None:
        pass

    def to_wire(self) -> dict:
        return {"buckets": {}, "count": 0, "total": 0.0, "min": 0.0, "max": 0.0}

    def summary(self) -> dict:
        return {"count": 0}


class MetricsRegistry:
    """Named instruments, get-or-create, with callable derived metrics.

    ``register_counter``/``register_gauge`` attach read-time callables
    for values another subsystem already maintains (the server's v1
    ``ServerStats`` counters, cache hit totals, pool occupancy) so the
    exporters see one coherent namespace without double-counting on the
    hot path.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, ShardedCounter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, StageHistogram] = {}
        self._derived_counters: dict[str, Callable[[], int]] = {}
        self._derived_gauges: dict[str, Callable[[], float]] = {}
        self._sketches: dict[str, Callable[[], dict]] = {}

    def counter(self, name: str) -> ShardedCounter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, ShardedCounter())

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> StageHistogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, StageHistogram())

    def register_counter(self, name: str, fn: Callable[[], int]) -> None:
        with self._lock:
            self._derived_counters[name] = fn

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        with self._lock:
            self._derived_gauges[name] = fn

    def register_sketch(self, name: str, fn: Callable[[], dict]) -> None:
        """Attach a frequency-sketch export (``repro.guard``): ``fn``
        returns the sketch's wire dict.  Sketches ride the snapshot in a
        ``sketches`` section (present only when any are registered, so
        snapshot shapes stay unchanged for sketch-free servers) and
        ``merge_registry_snapshots`` pools them exactly across federated
        workers."""
        with self._lock:
            self._sketches[name] = fn

    def snapshot(self) -> dict:
        """One coherent dict of every instrument, ready for JSON.

        Derived callables that raise (e.g. a component mid-shutdown) are
        skipped rather than poisoning the whole export.
        """
        counters: dict[str, int] = {}
        for name, counter in sorted(self._counters.items()):
            counters[name] = counter.value()
        for name, fn in sorted(self._derived_counters.items()):
            try:
                counters[name] = int(fn())
            except Exception:
                continue
        gauges: dict[str, float] = {}
        for name, gauge in sorted(self._gauges.items()):
            gauges[name] = gauge.value()
        for name, fn in sorted(self._derived_gauges.items()):
            try:
                gauges[name] = float(fn())
            except Exception:
                continue
        histograms = {
            name: hist.to_wire()
            for name, hist in sorted(self._histograms.items())
        }
        result = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        if self._sketches:
            sketches: dict[str, dict] = {}
            for name, fn in sorted(self._sketches.items()):
                try:
                    sketches[name] = fn()
                except Exception:
                    continue
            result["sketches"] = sketches
        return result


class NullRegistry:
    """No-op twin of :class:`MetricsRegistry` (``--no-metrics``)."""

    enabled = False

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str) -> _NullCounter:
        return self._counter

    def gauge(self, name: str) -> _NullGauge:
        return self._gauge

    def histogram(self, name: str) -> _NullHistogram:
        return self._histogram

    def register_counter(self, name: str, fn: Callable[[], int]) -> None:
        pass

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        pass

    def register_sketch(self, name: str, fn: Callable[[], dict]) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()
