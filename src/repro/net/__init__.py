"""``repro.net`` — shared endpoint layer (URL parsing, listen/dial).

The one place address handling lives: server transport, client endpoints,
the swarm engine, and the benchmarks all route through
:func:`parse_endpoint` / :class:`Endpoint` instead of hard-coded
``(host, port)`` tuples, so every layer serves TCP and UNIX-domain
transports interchangeably.
"""

from repro.net.bufpool import BufferPool
from repro.net.endpoints import (
    DEFAULT_TCP_HOST,
    Endpoint,
    EndpointError,
    adopt_listener,
    cleanup_listener,
    create_dial_socket,
    dial,
    format_endpoint,
    listen,
    parse_endpoint,
    recv_listener_fd,
    reserve_tcp_port,
    send_listener_fd,
    tcp_endpoint,
    unix_endpoint,
)

__all__ = [
    "BufferPool",
    "DEFAULT_TCP_HOST",
    "Endpoint",
    "EndpointError",
    "adopt_listener",
    "cleanup_listener",
    "create_dial_socket",
    "dial",
    "format_endpoint",
    "listen",
    "parse_endpoint",
    "recv_listener_fd",
    "reserve_tcp_port",
    "send_listener_fd",
    "tcp_endpoint",
    "unix_endpoint",
]
