"""Endpoint URLs and family-aware socket helpers.

Every component that used to hard-code ``(host, port)`` TCP tuples — the
server transport, the client endpoints, the swarm engine, the benchmarks —
now speaks :class:`Endpoint`, parsed from and formatted to small URLs:

* ``tcp://127.0.0.1:7199`` — a TCP address (port 0 = ephemeral on bind);
* ``unix:///var/run/communix.sock`` — a filesystem UNIX-domain socket;
* ``unix://@communix`` — a Linux abstract-namespace UNIX socket (no
  filesystem entry, auto-cleaned by the kernel);
* ``127.0.0.1:7199`` — legacy bare ``host:port``, kept for back-compat.

UNIX transport matters for the Fig. 2 sweep: loopback TCP pays per-packet
protocol overhead and, more importantly, the 20k-FD container cap is per
*process* — a federated swarm reaches the server over one shared socket
path with no port arithmetic, and the stale-file handling here makes
rebinding after a crash safe (a dead socket file is removed, a live one is
refused).
"""

from __future__ import annotations

import errno
import os
import socket
import stat
from dataclasses import dataclass

from repro.util.errors import CommunixError

#: Platforms without AF_UNIX (non-POSIX) still parse unix:// URLs; binding
#: or dialing one raises EndpointError there.
_AF_UNIX = getattr(socket, "AF_UNIX", None)

DEFAULT_TCP_HOST = "127.0.0.1"


class EndpointError(CommunixError):
    """An endpoint URL could not be parsed, bound, or dialed."""


@dataclass(frozen=True)
class Endpoint:
    """One parsed server address: ``tcp`` (host, port) or ``unix`` (path).

    For UNIX endpoints ``path`` keeps the user-facing spelling: a leading
    ``@`` marks the Linux abstract namespace (translated to the ``\\0``
    prefix at the socket layer by :meth:`sockaddr`).
    """

    scheme: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    # ------------------------------------------------------------- predicates
    @property
    def is_tcp(self) -> bool:
        return self.scheme == "tcp"

    @property
    def is_unix(self) -> bool:
        return self.scheme == "unix"

    @property
    def is_abstract(self) -> bool:
        return self.is_unix and self.path.startswith("@")

    # ------------------------------------------------------------ conversions
    @property
    def family(self) -> int:
        if self.is_tcp:
            return socket.AF_INET
        if _AF_UNIX is None:  # pragma: no cover - non-POSIX
            raise EndpointError("UNIX-domain sockets unsupported on this platform")
        return _AF_UNIX

    def sockaddr(self):
        """What ``bind``/``connect`` want for this endpoint."""
        if self.is_tcp:
            return (self.host, self.port)
        if self.is_abstract:
            return "\0" + self.path[1:]
        return self.path

    def url(self) -> str:
        if self.is_tcp:
            return f"tcp://{self.host}:{self.port}"
        return f"unix://{self.path}"

    def with_port(self, port: int) -> "Endpoint":
        """The same TCP endpoint with the (kernel-chosen) bound port."""
        return Endpoint(scheme="tcp", host=self.host, port=port)

    def __str__(self) -> str:  # log-friendly
        return self.url()


def tcp_endpoint(host: str = DEFAULT_TCP_HOST, port: int = 0) -> Endpoint:
    return Endpoint(scheme="tcp", host=host, port=port)


def unix_endpoint(path: str) -> Endpoint:
    return Endpoint(scheme="unix", path=path)


# ---------------------------------------------------------------- parsing
def _parse_host_port(text: str, context: str) -> Endpoint:
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise EndpointError(
            f"{context}: want HOST:PORT, got {text!r}"
        )
    # int() alone would accept "7_0" and unicode digits; be strict.
    if not (port_text.isascii() and port_text.isdigit()):
        raise EndpointError(
            f"{context}: port must be an integer, got {port_text!r}"
        )
    port = int(port_text, 10)
    if not 0 <= port <= 65535:
        raise EndpointError(f"{context}: port {port} out of range 0..65535")
    return Endpoint(scheme="tcp", host=host, port=port)


def parse_endpoint(spec) -> Endpoint:
    """Parse an endpoint URL (or legacy ``host:port``) into an Endpoint.

    Accepts an :class:`Endpoint` unchanged and a ``(host, port)`` tuple for
    callers migrating from the old signature.
    """
    if isinstance(spec, Endpoint):
        return spec
    if isinstance(spec, tuple) and len(spec) == 2:
        return Endpoint(scheme="tcp", host=str(spec[0]), port=int(spec[1]))
    if not isinstance(spec, str):
        raise EndpointError(f"cannot parse endpoint from {spec!r}")
    text = spec.strip()
    if not text:
        raise EndpointError("empty endpoint")
    if text.startswith("tcp://"):
        return _parse_host_port(text[len("tcp://"):], f"bad endpoint {spec!r}")
    if text.startswith("unix://"):
        path = text[len("unix://"):]
        if not path.startswith(("/", "@")):
            raise EndpointError(
                f"bad endpoint {spec!r}: unix path must be absolute "
                "(unix:///path) or abstract (unix://@name)"
            )
        if path in ("/", "@"):
            raise EndpointError(f"bad endpoint {spec!r}: empty unix path")
        return Endpoint(scheme="unix", path=path)
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise EndpointError(
            f"bad endpoint {spec!r}: unknown scheme {scheme!r} "
            "(want tcp:// or unix://)"
        )
    # Legacy bare HOST:PORT.
    return _parse_host_port(text, f"bad endpoint {spec!r}")


def format_endpoint(endpoint: Endpoint) -> str:
    return endpoint.url()


# ---------------------------------------------------------------- binding
def _remove_stale_socket_file(path: str) -> None:
    """Unlink ``path`` if it is a socket nobody answers on.

    A previous server that died without cleanup leaves its socket file
    behind; binding would fail EADDRINUSE forever.  Probe it: connection
    refused means no listener owns it — safe to remove.  A live listener
    (or a non-socket file) is left alone and the bind fails loudly.
    """
    try:
        mode = os.stat(path).st_mode
    except OSError:
        return  # nothing there (or unreadable: let bind() report it)
    if not stat.S_ISSOCK(mode):
        raise EndpointError(
            f"refusing to bind unix://{path}: existing file is not a socket"
        )
    probe = socket.socket(_AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.25)
        probe.connect(path)
    except OSError as exc:
        if exc.errno in (errno.ECONNREFUSED, errno.ENOENT):
            try:
                os.unlink(path)
            except OSError:
                pass
            return
        # Timeout or other failure: assume live/unknown, let bind decide.
    else:
        raise EndpointError(
            f"refusing to bind unix://{path}: another server is listening"
        )
    finally:
        probe.close()


def listen(endpoint, backlog: int = 512,
           reuse_port: bool = False) -> tuple[socket.socket, Endpoint]:
    """A non-blocking listener on ``endpoint``.

    Returns ``(socket, bound_endpoint)`` where the bound endpoint carries
    the kernel-assigned port for ``tcp://host:0``.  UNIX endpoints get the
    stale-socket-file treatment described above.

    ``reuse_port`` sets ``SO_REUSEPORT`` on TCP listeners so several
    processes can each bind the same address and share the accept load
    (the federated server tier's worker processes); the kernel spreads
    incoming connections across every listening socket in the group.
    """
    endpoint = parse_endpoint(endpoint)
    sock = socket.socket(endpoint.family, socket.SOCK_STREAM)
    try:
        if endpoint.is_tcp:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port:
                if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
                    raise EndpointError(
                        "SO_REUSEPORT unsupported on this platform"
                    )
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        elif not endpoint.is_abstract:
            _remove_stale_socket_file(endpoint.path)
        try:
            sock.bind(endpoint.sockaddr())
        except OSError as exc:
            raise EndpointError(f"cannot bind {endpoint}: {exc}") from exc
        sock.listen(backlog)
        sock.setblocking(False)
    except Exception:
        sock.close()
        raise
    if endpoint.is_tcp:
        endpoint = endpoint.with_port(sock.getsockname()[1])
    return sock, endpoint


def reserve_tcp_port(endpoint: Endpoint) -> tuple[socket.socket, Endpoint]:
    """Resolve and hold a TCP port for an ``SO_REUSEPORT`` listener group
    without receiving any traffic.

    The returned socket is *bound but never listening*: it pins the
    (possibly kernel-assigned) port so every worker process can bind the
    same resolved endpoint with ``reuse_port=True``, while incoming SYNs
    only ever land on sockets that actually listen.  The coordinator keeps
    it open for the group's lifetime, so the port cannot be lost to
    another process while workers restart.
    """
    if not endpoint.is_tcp:
        raise EndpointError(f"cannot reserve a port for {endpoint}")
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - non-Linux
        raise EndpointError("SO_REUSEPORT unsupported on this platform")
    sock = socket.socket(endpoint.family, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            sock.bind(endpoint.sockaddr())
        except OSError as exc:
            raise EndpointError(f"cannot bind {endpoint}: {exc}") from exc
    except Exception:
        sock.close()
        raise
    return sock, endpoint.with_port(sock.getsockname()[1])


def adopt_listener(fd: int, endpoint: Endpoint) -> socket.socket:
    """Wrap a listening descriptor received from another process (the
    coordinator binds ``unix://`` endpoints and hands the FD to each
    worker over ``SCM_RIGHTS``) as a non-blocking socket object."""
    sock = socket.socket(fileno=fd)
    sock.setblocking(False)
    return sock


def send_listener_fd(channel: socket.socket, endpoint: Endpoint,
                     fd: int) -> None:
    """Pass one listening FD over a UNIX socketpair via ``SCM_RIGHTS``.

    The payload names the endpoint the FD serves, so the receiver can
    match FDs to its ``--addr`` list without relying on arrival order
    alone."""
    socket.send_fds(channel, [endpoint.url().encode("utf-8")], [fd])


def recv_listener_fd(channel: socket.socket) -> tuple[str, int]:
    """Receive one ``(endpoint_url, fd)`` pair sent by
    :func:`send_listener_fd`; raises :class:`EndpointError` if the peer
    closed the channel or sent no descriptor."""
    data, fds, _flags, _addr = socket.recv_fds(channel, 1024, 1)
    if not data or not fds:
        for fd in fds:
            os.close(fd)
        raise EndpointError("listener FD channel closed prematurely")
    return data.decode("utf-8"), fds[0]


def cleanup_listener(endpoint: Endpoint) -> None:
    """Remove the filesystem artifact a listener leaves behind (the UNIX
    socket file); TCP and abstract endpoints have none."""
    if endpoint.is_unix and not endpoint.is_abstract:
        try:
            os.unlink(endpoint.path)
        except OSError:
            pass


# ---------------------------------------------------------------- dialing
def create_dial_socket(endpoint: Endpoint) -> socket.socket:
    """A fresh non-blocking socket of the endpoint's family, ready for
    ``connect_ex(endpoint.sockaddr())`` (the swarm engine's dial path)."""
    sock = socket.socket(endpoint.family, socket.SOCK_STREAM)
    sock.setblocking(False)
    return sock


def dial(endpoint, timeout: float | None = 5.0) -> socket.socket:
    """A connected *blocking* socket to ``endpoint`` (client-side helper)."""
    endpoint = parse_endpoint(endpoint)
    if endpoint.is_tcp:
        return socket.create_connection(
            (endpoint.host, endpoint.port), timeout=timeout
        )
    sock = socket.socket(endpoint.family, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        sock.connect(endpoint.sockaddr())
    except Exception:
        sock.close()
        raise
    return sock
