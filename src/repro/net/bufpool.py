"""Reusable receive buffers for ``recv_into`` hot paths.

``sock.recv(n)`` allocates a fresh ``n``-byte ``bytes`` object on *every*
call — at a 256 KiB read chunk and tens of thousands of read events per
second, the allocator churn is a measurable slice of the event loop's CPU
(see ``benchmarks/bench_hotpath.py``).  :class:`BufferPool` removes it:
readers borrow a preallocated ``bytearray`` for the duration of one
``recv_into`` call and return it immediately after copying the received
span out, so the steady state is **zero allocations per read** — the pool
holds one buffer per concurrently-reading thread (the event loop borrows
and returns within a single callback, so a single-threaded loop tops out
at one buffer).

The pool is thread-safe without a lock: ``deque.append``/``pop`` are
atomic under the GIL.  A returned buffer's *contents* are not cleared —
borrowers must treat ``acquire()`` as uninitialized memory and only trust
the ``[:n]`` span their own ``recv_into`` reported.
"""

from __future__ import annotations

import collections


class BufferPool:
    """A free list of equal-sized ``bytearray`` receive buffers."""

    __slots__ = ("buffer_size", "max_free", "allocated", "_free")

    def __init__(self, buffer_size: int, max_free: int = 4):
        if buffer_size < 1:
            raise ValueError("buffer_size must be positive")
        self.buffer_size = buffer_size
        #: Buffers kept for reuse; beyond this, released buffers are simply
        #: dropped (a burst of concurrent readers must not pin its
        #: high-water mark in memory forever).
        self.max_free = max(1, max_free)
        #: Total buffers ever allocated — the regression counter the tests
        #: pin: a steady single-threaded read loop must never grow it past
        #: its first read.
        self.allocated = 0
        self._free: collections.deque[bytearray] = collections.deque()

    def acquire(self) -> bytearray:
        """Borrow a buffer (uninitialized contents)."""
        try:
            return self._free.pop()
        except IndexError:
            self.allocated += 1
            return bytearray(self.buffer_size)

    def release(self, buf: bytearray) -> None:
        """Return a borrowed buffer.  Foreign or resized buffers are
        rejected silently — recycling a wrong-sized buffer would hand a
        short read target to the next ``recv_into``."""
        if len(buf) == self.buffer_size and len(self._free) < self.max_free:
            self._free.append(buf)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def stats(self) -> dict[str, int]:
        """Occupancy counters for the observability layer."""
        return {
            "buffer_size": self.buffer_size,
            "allocated": self.allocated,
            "free": len(self._free),
        }
