"""The Dimmunix runtime: thread states, avoidance gating, deadlock detection.

One :class:`DimmunixRuntime` instance lives per immunized process.  All
instrumented locks funnel their acquire/release protocol through it:

``before_acquire``
    runs the avoidance check; suspends the caller while granting its request
    would complete a signature instantiation; then registers the real wait;
``acquired`` / ``released``
    maintain the resource-allocation state (who holds what, acquired where);
``detect_now``
    builds the wait-for graph (real waits *and* avoidance waits), finds
    cycles, extracts signatures for real deadlocks, resolves
    avoidance-induced cycles by granting a yield permit, and designates a
    victim when the recovery policy asks for one.

A single condition variable (the *monitor*) guards all state; every state
change notifies it, which is what wakes avoidance-suspended threads to
re-check their dangerous pattern.  The paper's Dimmunix uses the same
global-intercept structure; the per-acquisition cost of this monitor is part
of the instrumentation overhead measured in Table II.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.core.history import DeadlockHistory
from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    ORIGIN_LOCAL,
    ThreadSignature,
)
from repro.dimmunix.avoidance import AvoidanceModule, DangerMatch, ThreadView
from repro.dimmunix.config import DimmunixConfig, RECOVERY_RAISE
from repro.dimmunix.events import EventKind, EventLog
from repro.dimmunix.fp import FalsePositiveDetector
from repro.util.clock import Clock, SystemClock
from repro.util.logging import get_logger

log = get_logger("dimmunix.runtime")

# Real primitives captured at import time: the runtime must keep working
# when ``patch_threading`` has swapped the public factories.
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition
_REAL_EVENT = threading.Event


@dataclass
class _HeldLock:
    lock_id: int
    stack: CallStack


#: Thread-state incarnation counter.  OS thread ids are recycled, so deadlock
#: incidents are keyed by (epoch, lock) rather than (tid, lock): a new thread
#: that inherits a dead thread's tid gets a fresh epoch and its deadlocks are
#: never mistaken for already-handled ones.
_EPOCHS = itertools.count(1)


class _ThreadState:
    __slots__ = (
        "tid",
        "name",
        "epoch",
        "held",
        "waiting_lock",
        "waiting_stack",
        "avoidance_match",
        "yield_permit",
        "victim_signature",
    )

    def __init__(self, tid: int, name: str):
        self.tid = tid
        self.name = name
        self.epoch = next(_EPOCHS)
        self.held: dict[int, _HeldLock] = {}
        self.waiting_lock: int | None = None
        self.waiting_stack: CallStack | None = None
        self.avoidance_match: DangerMatch | None = None
        self.yield_permit = False
        self.victim_signature: DeadlockSignature | None | bool = False

    @property
    def idle(self) -> bool:
        return (
            not self.held
            and self.waiting_lock is None
            and self.avoidance_match is None
            and self.victim_signature is False
        )


@dataclass
class RuntimeStats:
    """Counters exposed for benchmarks and tests (all monitor-protected)."""

    acquisitions: int = 0
    releases: int = 0
    avoidance_blocks: int = 0
    avoidance_wait_seconds: float = 0.0
    deadlocks_detected: int = 0
    self_deadlocks: int = 0
    signatures_saved: int = 0
    yields_granted: int = 0
    victims_designated: int = 0

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)


class DimmunixRuntime:
    def __init__(
        self,
        history: DeadlockHistory | None = None,
        config: DimmunixConfig | None = None,
        clock: Clock | None = None,
        events: EventLog | None = None,
    ):
        self.config = config or DimmunixConfig()
        self.history = history if history is not None else DeadlockHistory(
            path=self.config.history_path
        )
        self.clock = clock or SystemClock()
        self.events = events or EventLog()
        self.avoidance = AvoidanceModule(self.history)
        self.fp = FalsePositiveDetector(self.config, self.clock, self.events)
        self.stats = RuntimeStats()
        self._monitor = _REAL_CONDITION(_REAL_RLOCK())
        self._threads: dict[int, _ThreadState] = {}
        self._holders: dict[int, int] = {}  # lock_id -> holder tid
        self._active_incidents: set[frozenset] = set()
        self._detector: threading.Thread | None = None
        self._detector_stop = _REAL_EVENT()
        #: Dynamically discovered nested sites: acquisition sites of locks
        #: that were held while another lock was acquired (outer blocks of a
        #: nested pair).  This is the live-Python substitute for the static
        #: nesting analysis (the agent's nesting check consumes it through
        #: PythonAppAdapter).
        self.nested_sites: set[tuple[str, str, int]] = set()
        #: Sample acquisition stacks keyed by their top-5 frame locations
        #: (so distinct call paths into the same site are all represented),
        #: kept only when ``config.record_acquisition_stacks`` is set.  The
        #: DoS-attack forger (§IV-B) builds critical-path signatures from
        #: these samples.
        self.acquisition_stacks: dict[tuple, CallStack] = {}

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the background deadlock detector (idempotent)."""
        with self._monitor:
            if self._detector is not None and self._detector.is_alive():
                return
            self._detector_stop.clear()
            self._detector = threading.Thread(
                target=self._detector_loop, name="dimmunix-detector", daemon=True
            )
            self._detector.start()

    def stop(self) -> None:
        self._detector_stop.set()
        detector = self._detector
        if detector is not None:
            detector.join(timeout=2.0)
        self._detector = None

    def _detector_loop(self) -> None:
        while not self._detector_stop.wait(self.config.detection_interval):
            try:
                self.detect_now()
            except Exception:  # pragma: no cover - detector must never die
                log.exception("deadlock detector iteration failed")

    # --------------------------------------------------------- thread state
    def _state(self, tid: int) -> _ThreadState:
        state = self._threads.get(tid)
        if state is None:
            state = _ThreadState(tid, threading.current_thread().name)
            self._threads[tid] = state
        return state

    def _gc_thread(self, tid: int) -> None:
        state = self._threads.get(tid)
        if state is not None and state.idle:
            del self._threads[tid]

    def _views_excluding(self, tid: int) -> list[ThreadView]:
        views = []
        for other_tid, state in self._threads.items():
            if other_tid == tid:
                continue
            view = ThreadView(tid=other_tid)
            for held in state.held.values():
                view.held.append((held.lock_id, held.stack))
            if state.waiting_lock is not None and state.waiting_stack is not None:
                view.waiting = (state.waiting_lock, state.waiting_stack)
            if view.held or view.waiting:
                views.append(view)
        return views

    # -------------------------------------------------------- lock protocol
    def before_acquire(self, lock_id: int, stack: CallStack,
                       deadline: float | None = None) -> bool:
        """Avoidance gate + wait registration.  Returns False on timeout."""
        tid = threading.get_ident()
        recheck = self.config.avoidance_recheck_interval
        max_block = self.config.max_avoidance_block
        blocked_since: float | None = None
        with self._monitor:
            state = self._state(tid)
            while True:
                match = self.avoidance.find_danger(
                    tid, lock_id, stack, self._views_excluding(tid)
                )
                if match is None:
                    # A permit granted for a pattern that has since dissolved
                    # must not linger and bypass a future, unrelated block.
                    state.yield_permit = False
                    break
                if state.yield_permit:
                    state.yield_permit = False
                    self.events.emit(
                        EventKind.AVOIDANCE_YIELD_GRANTED,
                        timestamp=self.clock.now(),
                        tid=tid,
                        sig_id=match.signature.sig_id,
                    )
                    break
                if blocked_since is None:
                    blocked_since = time.monotonic()
                    self.stats.avoidance_blocks += 1
                    self.fp.record_instantiation(match.signature.sig_id)
                    self.events.emit(
                        EventKind.AVOIDANCE_BLOCK,
                        timestamp=self.clock.now(),
                        tid=tid,
                        lock_id=lock_id,
                        sig_id=match.signature.sig_id,
                    )
                state.avoidance_match = match
                wait_for = recheck
                if deadline is not None:
                    wait_for = min(wait_for, deadline - time.monotonic())
                    if wait_for <= 0:
                        state.avoidance_match = None
                        self._finish_avoidance(state, tid, blocked_since)
                        self._gc_thread(tid)
                        return False
                if max_block is not None and blocked_since is not None:
                    if time.monotonic() - blocked_since >= max_block:
                        self.stats.yields_granted += 1
                        self.events.emit(
                            EventKind.AVOIDANCE_YIELD_GRANTED,
                            timestamp=self.clock.now(),
                            tid=tid,
                            sig_id=match.signature.sig_id,
                            reason="max_avoidance_block",
                        )
                        break
                self._monitor.wait(wait_for)
            self._finish_avoidance(state, tid, blocked_since)
            state.waiting_lock = lock_id
            state.waiting_stack = stack
            self._monitor.notify_all()
        return True

    def _finish_avoidance(self, state: _ThreadState, tid: int,
                          blocked_since: float | None) -> None:
        state.avoidance_match = None
        if blocked_since is not None:
            waited = time.monotonic() - blocked_since
            self.stats.avoidance_wait_seconds += waited
            self.events.emit(
                EventKind.AVOIDANCE_RESUME,
                timestamp=self.clock.now(),
                tid=tid,
                waited=waited,
            )

    def acquired(self, lock_id: int, stack: CallStack) -> None:
        tid = threading.get_ident()
        with self._monitor:
            state = self._state(tid)
            if state.held and stack:
                # Acquiring while already holding: every held lock's
                # acquisition site is an *outer* (nested) synchronized block
                # in the paper's sense — record those sites.
                for held in state.held.values():
                    if held.stack:
                        self.nested_sites.add(held.stack.top.location)
            if self.config.record_acquisition_stacks and stack:
                if len(self.acquisition_stacks) < 4096:
                    key = tuple(f.location for f in stack.suffix(5))
                    self.acquisition_stacks.setdefault(key, stack)
            state.held[lock_id] = _HeldLock(lock_id, stack)
            state.waiting_lock = None
            state.waiting_stack = None
            # If this thread was designated a victim but escaped (the cycle
            # broke some other way), the stale flag must not poison a later,
            # unrelated acquisition.
            state.victim_signature = False
            state.yield_permit = False
            self._holders[lock_id] = tid
            self.stats.acquisitions += 1
            self._monitor.notify_all()

    def cancel_wait(self) -> None:
        """The instrumented acquire gave up (timeout or victim raise)."""
        tid = threading.get_ident()
        with self._monitor:
            state = self._threads.get(tid)
            if state is None:
                return
            state.waiting_lock = None
            state.waiting_stack = None
            self._gc_thread(tid)
            self._monitor.notify_all()

    def released(self, lock_id: int) -> None:
        tid = threading.get_ident()
        with self._monitor:
            state = self._threads.get(tid)
            if state is None or lock_id not in state.held:
                raise RuntimeError(
                    f"thread {tid} released lock {lock_id} it does not hold"
                )
            del state.held[lock_id]
            if self._holders.get(lock_id) == tid:
                del self._holders[lock_id]
            self.stats.releases += 1
            self._gc_thread(tid)
            self._monitor.notify_all()

    def consume_victim(self) -> DeadlockSignature | None | bool:
        """Poll-and-clear the caller's victim flag.

        Returns False if not designated; otherwise the captured signature
        (or None for a self-deadlock, which has no multi-thread signature).
        """
        tid = threading.get_ident()
        with self._monitor:
            state = self._threads.get(tid)
            if state is None or state.victim_signature is False:
                return False
            signature = state.victim_signature
            state.victim_signature = False
            return signature

    # ------------------------------------------------------------ detection
    def detect_now(self) -> list[DeadlockSignature]:
        """Run one detection pass; returns signatures of new real deadlocks."""
        to_save: list[DeadlockSignature] = []
        emits: list[tuple] = []
        with self._monitor:
            self._prune_incidents()
            edges = self._build_edges()
            cycles = _find_cycles(edges)
            for cycle in cycles:
                if len(cycle) == 1:
                    self._handle_self_deadlock(cycle[0], emits)
                    continue
                avoidance_tids = [
                    tid for tid in cycle
                    if self._threads[tid].avoidance_match is not None
                ]
                if avoidance_tids:
                    self._resolve_avoidance_cycle(avoidance_tids, emits)
                else:
                    signature = self._handle_real_deadlock(cycle, emits)
                    if signature is not None:
                        to_save.append(signature)
        # History writes and event emission happen outside the monitor so
        # that listeners (e.g. the Communix plugin's upload) can do I/O.
        for signature in to_save:
            if self.history.add(signature):
                self.stats.signatures_saved += 1
                self.events.emit(
                    EventKind.SIGNATURE_SAVED,
                    timestamp=self.clock.now(),
                    sig_id=signature.sig_id,
                )
            else:
                # Same manifestation as an existing entry: a true positive
                # for that signature (the bug bit again despite avoidance).
                self.fp.record_true_positive(signature.sig_id)
        for kind, payload in emits:
            self.events.emit(kind, timestamp=self.clock.now(), **payload)
        return to_save

    def _prune_incidents(self) -> None:
        by_epoch = {state.epoch: state for state in self._threads.values()}
        still_active = set()
        for incident in self._active_incidents:
            intact = True
            for epoch, lock_id in incident:
                state = by_epoch.get(epoch)
                if state is None or state.waiting_lock != lock_id:
                    intact = False
                    break
            if intact:
                still_active.add(incident)
        self._active_incidents = still_active

    def _build_edges(self) -> dict[int, list[int]]:
        edges: dict[int, list[int]] = {}
        for tid, state in self._threads.items():
            targets: list[int] = []
            if state.waiting_lock is not None:
                holder = self._holders.get(state.waiting_lock)
                if holder is not None:
                    targets.append(holder)
            if state.avoidance_match is not None:
                targets.extend(state.avoidance_match.matched_tids)
            if targets:
                edges[tid] = targets
        return edges

    def _handle_self_deadlock(self, tid: int, emits: list) -> None:
        state = self._threads[tid]
        incident = frozenset({(state.epoch, state.waiting_lock)})
        if incident in self._active_incidents:
            return
        self._active_incidents.add(incident)
        self.stats.self_deadlocks += 1
        emits.append((EventKind.SELF_DEADLOCK, {"tid": tid}))
        if self.config.recovery_policy == RECOVERY_RAISE:
            state.victim_signature = None
            self.stats.victims_designated += 1
            emits.append((EventKind.VICTIM_RAISED, {"tid": tid}))
            self._monitor.notify_all()

    def _resolve_avoidance_cycle(self, avoidance_tids: list[int], emits: list) -> None:
        """An avoidance suspension participates in a cycle: avoidance itself
        would deadlock the program.  Dimmunix resolves this by letting one
        suspended thread proceed despite the dangerous pattern."""
        chosen = min(avoidance_tids)
        state = self._threads[chosen]
        if state.yield_permit:
            return  # already granted, thread has not woken yet
        state.yield_permit = True
        self.stats.yields_granted += 1
        self._monitor.notify_all()

    def _handle_real_deadlock(self, cycle: list[int], emits: list):
        incident = frozenset(
            (self._threads[tid].epoch, self._threads[tid].waiting_lock)
            for tid in cycle
        )
        if incident in self._active_incidents:
            return None
        self._active_incidents.add(incident)
        self.stats.deadlocks_detected += 1
        signature = self._extract_signature(cycle)
        emits.append(
            (
                EventKind.DEADLOCK_DETECTED,
                {
                    "tids": tuple(cycle),
                    "sig_id": signature.sig_id if signature else None,
                },
            )
        )
        if self.config.recovery_policy == RECOVERY_RAISE:
            victim = max(cycle)
            self._threads[victim].victim_signature = signature
            self.stats.victims_designated += 1
            emits.append((EventKind.VICTIM_RAISED, {"tid": victim}))
            self._monitor.notify_all()
        return signature

    def _extract_signature(self, cycle: list[int]) -> DeadlockSignature | None:
        """Outer stack: where each thread acquired the lock the *previous*
        thread in the cycle is waiting for; inner stack: where it blocks."""
        n = len(cycle)
        thread_sigs = []
        for i, tid in enumerate(cycle):
            state = self._threads[tid]
            prev_state = self._threads[cycle[(i - 1) % n]]
            outer_lock = prev_state.waiting_lock
            held = state.held.get(outer_lock) if outer_lock is not None else None
            if held is None or state.waiting_stack is None:
                return None  # state moved under us; next pass will retry
            if not held.stack or not state.waiting_stack:
                return None
            thread_sigs.append(
                ThreadSignature(outer=held.stack, inner=state.waiting_stack)
            )
        return DeadlockSignature(threads=tuple(thread_sigs), origin=ORIGIN_LOCAL)

    # ------------------------------------------------------- user actions
    def keep_signature(self, sig_id: str) -> None:
        """Respond to a false-positive warning by keeping the signature
        (§III-C1: "the user can decide to keep S, if he/she notices no
        change in the behavior of the application")."""
        self.fp.keep(sig_id)

    def discard_signature(self, sig_id: str) -> bool:
        """Respond to a false-positive warning by dropping the signature
        from the history; avoidance stops matching it immediately."""
        return self.history.remove(sig_id)

    # ---------------------------------------------------------- inspection
    def held_locks(self) -> dict[int, int]:
        with self._monitor:
            return dict(self._holders)

    def thread_count(self) -> int:
        with self._monitor:
            return len(self._threads)


def _find_cycles(edges: dict[int, list[int]]) -> list[list[int]]:
    """Elementary cycles via iterative DFS; one representative per node set.

    The wait-for graphs here are tiny (threads currently interacting with
    locks), so a simple colored DFS that reports each gray-back-edge cycle
    once is both sufficient and fast.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    cycles: list[list[int]] = []
    seen_keys: set[frozenset] = set()

    for root in edges:
        if color.get(root, WHITE) != WHITE:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        path: list[int] = []
        color[root] = GRAY
        path.append(root)
        while stack:
            node, edge_index = stack[-1]
            targets = edges.get(node, [])
            if edge_index < len(targets):
                stack[-1] = (node, edge_index + 1)
                target = targets[edge_index]
                target_color = color.get(target, WHITE)
                if target_color == WHITE:
                    color[target] = GRAY
                    path.append(target)
                    stack.append((target, 0))
                elif target_color == GRAY:
                    cycle = path[path.index(target):]
                    key = frozenset(cycle)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(list(cycle))
            else:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return cycles
