"""The avoidance module (paper §II-A).

Before each lock acquisition, Dimmunix decides whether allowing the running
thread to proceed would lead to the *instantiation* of a signature from the
deadlock history: "for a signature with outer call stacks CS1..CSn to be
instantiated, there must exist threads t1..tn that either hold or are block
waiting for locks l1..ln while having call stacks CS1..CSn".  If granting
the current request would complete such a pattern, the requesting thread is
suspended until the pattern can no longer form.

Matching is made cheap by an index over the history: a runtime stack can
only match a signature stack whose *top frame location* equals the runtime
stack's top (suffix matching implies equal tops), so the only signatures
ever examined at an acquisition site are those whose outer stacks end at
that site.  Acquisitions at sites that appear in no signature — the common
case — cost one dict lookup.

This module is pure logic over immutable snapshots: the runtime calls it
while holding its monitor and passes its thread-state table directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.history import DeadlockHistory
from repro.core.signature import CallStack, DeadlockSignature


@dataclass
class ThreadView:
    """What avoidance may use of another thread's state: the locks it holds
    (with acquisition stacks) and the lock it is blocked waiting for (with
    its current stack)."""

    tid: int
    held: list[tuple[int, CallStack]] = field(default_factory=list)
    waiting: tuple[int, CallStack] | None = None

    def candidates(self):
        yield from self.held
        if self.waiting is not None:
            yield self.waiting


@dataclass
class DangerMatch:
    """A signature instantiation that granting the request would complete."""

    signature: DeadlockSignature
    position: int  # index the requesting thread would fill
    matched: tuple[tuple[int, int], ...]  # (tid, lock_id) per other position

    @property
    def matched_tids(self) -> tuple[int, ...]:
        return tuple(tid for tid, _ in self.matched)


class AvoidanceModule:
    """Signature-instantiation matching against a deadlock history."""

    def __init__(self, history: DeadlockHistory):
        self._history = history
        self._index: dict[tuple[str, str, int], list[tuple[DeadlockSignature, int]]] = {}
        self._indexed_version = -1
        #: Monotonic count of instantiation checks that examined at least
        #: one signature (i.e. went past the index lookup).
        self.deep_checks = 0

    # ---------------------------------------------------------------- index
    def _ensure_index(self) -> None:
        if self._indexed_version == self._history.version:
            return
        index: dict[tuple[str, str, int], list[tuple[DeadlockSignature, int]]] = {}
        for sig in self._history.snapshot():
            for pos, thread_sig in enumerate(sig.threads):
                index.setdefault(thread_sig.outer.top.location, []).append((sig, pos))
        self._index = index
        self._indexed_version = self._history.version

    def signatures_at(self, location) -> list[tuple[DeadlockSignature, int]]:
        self._ensure_index()
        return self._index.get(location, [])

    # ------------------------------------------------------------- matching
    def find_danger(self, tid: int, lock_id: int, stack: CallStack,
                    others: list[ThreadView]) -> DangerMatch | None:
        """Return a :class:`DangerMatch` if granting ``lock_id`` to ``tid``
        at ``stack`` would complete an instantiation, else ``None``."""
        self._ensure_index()
        if not self._index or not stack:
            return None
        entries = self._index.get(stack.top.location)
        if not entries:
            return None
        self.deep_checks += 1
        for sig, pos in entries:
            if not sig.threads[pos].outer.matches(stack):
                continue
            remaining = [i for i in range(len(sig.threads)) if i != pos]
            assignment = self._assign(sig, remaining, others,
                                      used_tids={tid}, used_locks={lock_id})
            if assignment is not None:
                return DangerMatch(signature=sig, position=pos,
                                   matched=tuple(assignment))
        return None

    def _assign(self, sig: DeadlockSignature, positions: list[int],
                others: list[ThreadView], used_tids: set[int],
                used_locks: set[int]) -> list[tuple[int, int]] | None:
        """Backtracking search for an injective (thread, lock) assignment of
        the remaining signature positions.  Deadlock cycles are short (almost
        always 2, rarely 3-4 threads), so exhaustive search is cheap."""
        if not positions:
            return []
        position, rest = positions[0], positions[1:]
        wanted = sig.threads[position].outer
        for view in others:
            if view.tid in used_tids:
                continue
            for cand_lock, cand_stack in view.candidates():
                if cand_lock in used_locks:
                    continue
                if not wanted.matches(cand_stack):
                    continue
                used_tids.add(view.tid)
                used_locks.add(cand_lock)
                tail = self._assign(sig, rest, others, used_tids, used_locks)
                used_tids.discard(view.tid)
                used_locks.discard(cand_lock)
                if tail is not None:
                    return [(view.tid, cand_lock)] + tail
        return None
