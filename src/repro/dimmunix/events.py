"""Structured runtime events.

The runtime emits events rather than calling collaborators directly: the
Communix plugin subscribes to ``SIGNATURE_SAVED`` to upload new signatures,
tests subscribe to assert on avoidance behaviour, and examples subscribe to
narrate what is happening.  A bounded ring buffer keeps the most recent
events available for post-mortem inspection without unbounded growth.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable


class EventKind(enum.Enum):
    DEADLOCK_DETECTED = "deadlock_detected"
    SIGNATURE_SAVED = "signature_saved"
    AVOIDANCE_BLOCK = "avoidance_block"
    AVOIDANCE_RESUME = "avoidance_resume"
    AVOIDANCE_YIELD_GRANTED = "avoidance_yield_granted"
    FALSE_POSITIVE_WARNING = "false_positive_warning"
    VICTIM_RAISED = "victim_raised"
    SELF_DEADLOCK = "self_deadlock"


@dataclass(frozen=True)
class Event:
    kind: EventKind
    payload: dict[str, Any] = field(default_factory=dict)
    timestamp: float = 0.0


class EventLog:
    """Thread-safe pub/sub with a bounded ring buffer of recent events."""

    def __init__(self, capacity: int = 1024):
        self._buffer: deque[Event] = deque(maxlen=capacity)
        self._subscribers: list[Callable[[Event], None]] = []
        self._lock = threading.Lock()
        self._counts: dict[EventKind, int] = {}

    def emit(self, kind: EventKind, timestamp: float = 0.0, **payload: Any) -> Event:
        event = Event(kind=kind, payload=payload, timestamp=timestamp)
        with self._lock:
            self._buffer.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe function."""
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return unsubscribe

    def recent(self, kind: EventKind | None = None) -> list[Event]:
        with self._lock:
            events = list(self._buffer)
        if kind is None:
            return events
        return [e for e in events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        with self._lock:
            return self._counts.get(kind, 0)
