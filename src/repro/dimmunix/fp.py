"""False-positive detection (paper §III-C1).

"If after 100 instantiations of a signature S there was no true positive,
and there was at least one interval of 1 second having more than 10
instantiations of S, Dimmunix decides to warn the user about signature S;
the user can decide to keep S."

An *instantiation* here is an avoidance episode: the dangerous pattern of S
formed and a thread was suspended.  A *true positive* cannot be observed
directly (the deadlock did not happen precisely because it was avoided), so,
like Dimmunix, we expose a hook — :meth:`record_true_positive` — that the
detector calls when a real deadlock matching S's bug is ever captured, and
that users/tests may call when they have outside evidence.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.dimmunix.config import DimmunixConfig
from repro.dimmunix.events import EventKind, EventLog
from repro.util.clock import Clock


@dataclass
class _SignatureFpState:
    instantiations: int = 0
    burst_seen: bool = False
    true_positive: bool = False
    warned: bool = False
    kept_by_user: bool = False
    window: deque = field(default_factory=deque)


class FalsePositiveDetector:
    def __init__(self, config: DimmunixConfig, clock: Clock, events: EventLog):
        self._config = config
        self._clock = clock
        self._events = events
        self._state: dict[str, _SignatureFpState] = {}
        self._lock = threading.Lock()

    def _get(self, sig_id: str) -> _SignatureFpState:
        state = self._state.get(sig_id)
        if state is None:
            state = _SignatureFpState()
            self._state[sig_id] = state
        return state

    def record_instantiation(self, sig_id: str) -> None:
        now = self._clock.now()
        warn = False
        with self._lock:
            state = self._get(sig_id)
            state.instantiations += 1
            window = state.window
            window.append(now)
            horizon = now - self._config.fp_burst_window
            while window and window[0] < horizon:
                window.popleft()
            if len(window) > self._config.fp_burst_count:
                state.burst_seen = True
            if (
                state.instantiations >= self._config.fp_instantiation_threshold
                and state.burst_seen
                and not state.true_positive
                and not state.warned
                and not state.kept_by_user
            ):
                state.warned = True
                warn = True
        if warn:
            self._events.emit(
                EventKind.FALSE_POSITIVE_WARNING,
                timestamp=now,
                sig_id=sig_id,
                instantiations=self._state[sig_id].instantiations,
            )

    def record_true_positive(self, sig_id: str) -> None:
        with self._lock:
            self._get(sig_id).true_positive = True

    def keep(self, sig_id: str) -> None:
        """The user inspected the warning and decided to keep the signature."""
        with self._lock:
            state = self._get(sig_id)
            state.kept_by_user = True

    def instantiations(self, sig_id: str) -> int:
        with self._lock:
            state = self._state.get(sig_id)
            return state.instantiations if state else 0

    def is_warned(self, sig_id: str) -> bool:
        with self._lock:
            state = self._state.get(sig_id)
            return bool(state and state.warned)
