"""Call-stack capture for live Python threads.

Dimmunix signatures are built from the call stacks threads have at lock
acquisitions.  For Python programs the analogue of the paper's
``class.method:line`` frame is ``module.function:line``, and the analogue of
the class-bytecode hash is a hash of the function's compiled code object
(``co_code``), which changes whenever the function's code changes — exactly
the versioning property client-side validation needs (§III-C3).

Capture uses ``sys._getframe`` and walks ``f_back`` links, which is
considerably cheaper than ``traceback.extract_stack`` and — like the paper's
instrumentation — is *the* dominant per-acquisition overhead, so it pays to
keep it lean.  Frames belonging to the instrumentation itself are filtered
out so they never pollute signatures.
"""

from __future__ import annotations

import sys
from types import CodeType

from repro.core.signature import CallStack, Frame
from repro.util.encoding import stable_hash

#: Cache of code-object hashes.  Code objects are immortal for the life of
#: the functions that own them, and hashing co_code is pure, so a plain dict
#: keyed by the code object is safe and fast.
_CODE_HASHES: dict[CodeType, str] = {}


def python_code_hash(code: CodeType) -> str:
    """Stable hash of a code object (the plugin's "class bytecode hash").

    Covers the opcodes *and* the constant pool / name tables: ``return 1``
    vs ``return 2`` share ``co_code`` (the constant lives in ``co_consts``),
    and a JVM class hash would certainly see that change.
    """
    cached = _CODE_HASHES.get(code)
    if cached is None:
        material = b"|".join(
            (
                code.co_code,
                repr(code.co_consts).encode("utf-8", "replace"),
                repr(code.co_names).encode("utf-8", "replace"),
                repr(code.co_varnames).encode("utf-8", "replace"),
            )
        )
        cached = stable_hash(material)
        _CODE_HASHES[code] = cached
    return cached


def capture_stack(skip: int = 1, limit: int = 32,
                  blacklist: tuple[str, ...] = ()) -> CallStack:
    """Capture the calling thread's stack as a :class:`CallStack`.

    ``skip`` discards that many innermost frames (the instrumentation);
    ``blacklist`` additionally drops frames whose module name starts with
    any of the given prefixes.  The result is ordered bottom -> top with the
    acquisition point as the top (last) frame.
    """
    try:
        frame = sys._getframe(skip + 1)
    except ValueError:  # stack shallower than skip
        frame = sys._getframe()
    collected: list[Frame] = []
    while frame is not None and len(collected) < limit:
        module = frame.f_globals.get("__name__", "?")
        if not any(module.startswith(prefix) for prefix in blacklist):
            code = frame.f_code
            collected.append(
                Frame(
                    class_name=module,
                    method=code.co_name,
                    line=frame.f_lineno,
                    code_hash=python_code_hash(code),
                )
            )
        frame = frame.f_back
    collected.reverse()  # walked top -> bottom; stacks store bottom -> top
    return CallStack(collected)
