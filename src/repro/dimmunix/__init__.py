"""Dimmunix: the deadlock-immunity runtime (paper §II-A).

This subpackage is the substrate Communix builds on: it detects deadlocks in
live multi-threaded programs, extracts their signatures (outer + inner call
stacks), persists them in a deadlock history, and *avoids* execution flows
matching stored signatures by suspending threads just before dangerous lock
acquisitions.

The public surface:

* :class:`DimmunixRuntime` — the per-process runtime (thread states,
  resource-allocation graph, avoidance, detection, false-positive tracking);
* :class:`DimmunixLock` / :class:`DimmunixRLock` — drop-in replacements for
  ``threading.Lock`` / ``threading.RLock`` wired into a runtime;
* :func:`patch_threading` — monkey-patch ``threading.Lock``/``RLock`` so an
  unmodified program gets immunized (the AspectJ-weaving equivalent);
* :func:`get_runtime` / :func:`set_runtime` — the process-global runtime.
"""

from repro.dimmunix.config import DimmunixConfig
from repro.dimmunix.events import Event, EventKind, EventLog
from repro.dimmunix.frames import capture_stack, python_code_hash
from repro.dimmunix.lock import (
    DimmunixLock,
    DimmunixRLock,
    get_runtime,
    patch_threading,
    set_runtime,
)
from repro.dimmunix.runtime import DimmunixRuntime, RuntimeStats

__all__ = [
    "DimmunixConfig",
    "Event",
    "EventKind",
    "EventLog",
    "capture_stack",
    "python_code_hash",
    "DimmunixLock",
    "DimmunixRLock",
    "get_runtime",
    "patch_threading",
    "set_runtime",
    "DimmunixRuntime",
    "RuntimeStats",
]
