"""Instrumented locks and the threading monkey-patch.

:class:`DimmunixLock` is a drop-in replacement for ``threading.Lock`` whose
acquire/release protocol runs through a :class:`DimmunixRuntime`:

1. capture the caller's stack (the would-be outer call stack);
2. ``before_acquire`` — the avoidance gate, which may suspend the caller;
3. acquire the real lock *with a polling loop*, so that a thread designated
   as deadlock victim can escape and raise :class:`DeadlockError` (the real
   Dimmunix leaves the JVM hung; the polling loop is the Python-substrate
   substitution that lets programs terminate, see DESIGN.md);
4. ``acquired`` / ``released`` bookkeeping.

:func:`patch_threading` swaps ``threading.Lock``/``threading.RLock`` for
instrumented factories for the duration of a ``with`` block — the moral
equivalent of the paper's AspectJ weaving for programs that cannot be
modified.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager

from repro.dimmunix.config import DimmunixConfig
from repro.dimmunix.frames import capture_stack
from repro.dimmunix.runtime import DimmunixRuntime
from repro.util.errors import DeadlockError

_LOCK_IDS = itertools.count(1)

#: The real primitive, captured at import time.  The instrumented lock must
#: build its inner mutex from this even while ``threading.Lock`` is patched
#: to our factory — otherwise constructing a DimmunixLock would recurse.
_REAL_LOCK = threading.Lock

_global_runtime: DimmunixRuntime | None = None
_global_runtime_guard = threading.Lock()


def get_runtime() -> DimmunixRuntime:
    """The process-global runtime, created on first use."""
    global _global_runtime
    with _global_runtime_guard:
        if _global_runtime is None:
            _global_runtime = DimmunixRuntime()
            _global_runtime.start()
        return _global_runtime


def set_runtime(runtime: DimmunixRuntime | None) -> DimmunixRuntime | None:
    """Replace the process-global runtime; returns the previous one."""
    global _global_runtime
    with _global_runtime_guard:
        previous, _global_runtime = _global_runtime, runtime
        return previous


class DimmunixLock:
    """A non-reentrant mutex immunized by Dimmunix."""

    def __init__(self, runtime: DimmunixRuntime | None = None,
                 name: str | None = None):
        self._inner = _REAL_LOCK()
        self._runtime = runtime if runtime is not None else get_runtime()
        self.lock_id = next(_LOCK_IDS)
        self.name = name or f"lock-{self.lock_id}"

    # ------------------------------------------------------------ protocol
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        runtime = self._runtime
        if not runtime.config.enabled:
            if not blocking:
                return self._inner.acquire(False)
            if timeout is not None and timeout >= 0:
                return self._inner.acquire(True, timeout)
            return self._inner.acquire(True)
        stack = capture_stack(
            skip=1,
            limit=runtime.config.capture_depth,
            blacklist=runtime.config.frame_blacklist,
        )
        if not blocking:
            got = self._inner.acquire(False)
            if got:
                runtime.acquired(self.lock_id, stack)
            return got
        deadline = None
        if timeout is not None and timeout >= 0:
            deadline = time.monotonic() + timeout
        if not runtime.before_acquire(self.lock_id, stack, deadline):
            return False  # timed out inside avoidance
        poll = runtime.config.acquire_poll_interval
        while True:
            wait = poll
            if deadline is not None:
                wait = min(poll, deadline - time.monotonic())
                if wait <= 0:
                    runtime.cancel_wait()
                    return False
            if self._inner.acquire(True, wait):
                runtime.acquired(self.lock_id, stack)
                return True
            verdict = runtime.consume_victim()
            if verdict is not False:
                runtime.cancel_wait()
                raise DeadlockError(
                    f"deadlock detected while acquiring {self.name}; "
                    "this thread was designated the victim",
                    signature=verdict if verdict is not None else None,
                )

    def release(self) -> None:
        if not self._runtime.config.enabled:
            # Passthrough mode (must not be toggled while locks are held).
            self._inner.release()
            return
        # Runtime bookkeeping first: a successor could otherwise grab the
        # inner lock and register as holder before we deregister.
        self._runtime.released(self.lock_id)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "DimmunixLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DimmunixLock {self.name} id={self.lock_id}>"


class DimmunixRLock:
    """A reentrant mutex immunized by Dimmunix.

    Only the outermost acquire/release interacts with the runtime — nested
    acquisitions by the owner cannot deadlock and are not lock acquisitions
    from the avoidance module's point of view.
    """

    def __init__(self, runtime: DimmunixRuntime | None = None,
                 name: str | None = None):
        self._base = DimmunixLock(runtime, name)
        self._owner: int | None = None
        self._count = 0

    @property
    def name(self) -> str:
        return self._base.name

    @property
    def lock_id(self) -> int:
        return self._base.lock_id

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            self._count += 1
            return True
        got = self._base.acquire(blocking, timeout)
        if got:
            self._owner = me
            self._count = 1
        return got

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError("cannot release un-acquired RLock")
        self._count -= 1
        if self._count == 0:
            self._owner = None
            self._base.release()

    def __enter__(self) -> "DimmunixRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # threading.Condition compatibility hooks
    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _release_save(self):
        count, owner = self._count, self._owner
        self._count = 0
        self._owner = None
        self._base.release()
        return (count, owner)

    def _acquire_restore(self, saved) -> None:
        count, owner = saved
        self._base.acquire()
        self._count = count
        self._owner = owner


@contextmanager
def patch_threading(runtime: DimmunixRuntime | None = None):
    """Temporarily replace ``threading.Lock``/``RLock`` with immunized
    factories, so code constructing locks inside the ``with`` block is
    transparently protected (the AspectJ-weaving substitute).

    Yields the runtime in use.  Locks created before or after the block are
    untouched, as are internal locks the interpreter created at bootstrap.
    """
    active = runtime if runtime is not None else get_runtime()
    original_lock = threading.Lock
    original_rlock = threading.RLock

    def lock_factory():
        return DimmunixLock(active)

    def rlock_factory():
        return DimmunixRLock(active)

    threading.Lock = lock_factory
    threading.RLock = rlock_factory
    try:
        yield active
    finally:
        threading.Lock = original_lock
        threading.RLock = original_rlock
