"""Dimmunix runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

#: What to do with the threads of a detected deadlock once the signature has
#: been captured.  The real Dimmunix leaves the JVM deadlocked (the user
#: restarts it); ``raise`` additionally designates a victim thread in which a
#: :class:`repro.util.errors.DeadlockError` is raised so that test programs
#: and examples can terminate and re-run.
RECOVERY_NONE = "none"
RECOVERY_RAISE = "raise"


@dataclass
class DimmunixConfig:
    """Tunable parameters of the runtime.

    The defaults suit interactive use; tests shrink the intervals for speed
    and determinism (or drive :meth:`DimmunixRuntime.detect_now` directly).
    """

    #: Period of the background deadlock detector thread (seconds).
    detection_interval: float = 0.05
    #: How long a thread suspended by avoidance sleeps between re-checks of
    #: the dangerous pattern (it is also woken eagerly on state changes).
    avoidance_recheck_interval: float = 0.02
    #: Polling granularity for the instrumented blocking acquire; this is
    #: what allows a designated victim to escape a real deadlock.
    acquire_poll_interval: float = 0.02
    #: Maximum call-stack frames captured per acquisition.
    capture_depth: int = 32
    #: Recovery policy after detection: RECOVERY_NONE or RECOVERY_RAISE.
    recovery_policy: str = RECOVERY_RAISE
    #: False-positive detector (§III-C1): warn about a signature after this
    #: many instantiations with no true positive...
    fp_instantiation_threshold: int = 100
    #: ...provided at least one window of ``fp_burst_window`` seconds saw
    #: more than ``fp_burst_count`` instantiations.
    fp_burst_window: float = 1.0
    fp_burst_count: int = 10
    #: Persistent history location (None = in-memory only).
    history_path: Path | None = None
    #: Skip avoidance/detection bookkeeping entirely (vanilla passthrough);
    #: used by benchmarks to isolate instrumentation cost.
    enabled: bool = True
    #: Optional upper bound (seconds) on one avoidance suspension; ``None``
    #: trusts the avoidance-induced-cycle resolution (the default).  A bound
    #: is a belt-and-braces safety valve for pathological histories.
    max_avoidance_block: float | None = None
    #: Record the first acquisition stack seen at every site (used by the
    #: DoS-attack forger and diagnostics; off by default to save memory).
    record_acquisition_stacks: bool = False
    #: Module-name prefixes whose frames are excluded from captured stacks
    #: (the instrumentation itself must never appear in signatures).
    frame_blacklist: tuple[str, ...] = field(
        default=("repro.dimmunix", "repro.core", "threading")
    )
