"""Latency and throughput accounting for the client swarm.

The engine calls :meth:`Metrics.record` once per completed operation and
:meth:`Metrics.record_error` once per failed one — every issued request
lands in exactly one of the two, so ``completed + errors`` always equals
the number of operations the scenarios issued (the invariant the swarm
tests assert).

Latencies go into :class:`LatencyHistogram` — geometric buckets from 1 µs
to ~2 minutes (±~9 % resolution), so recording is O(1), memory is a few
hundred ints regardless of run length, and percentiles (p50/p95/p99) come
from a cumulative walk.  Throughput is a per-second series of completion
counts keyed by whole seconds since the collector was created.

Each event-loop shard owns a private ``Metrics`` (single-writer, no lock);
:meth:`Metrics.merge` folds shard collectors into one for reporting.

Snapshots also travel between *processes*: the federated swarm's worker
processes serialize theirs with :meth:`MetricsSnapshot.to_wire` and the
coordinator folds them back together with :func:`merge_snapshots`.  The
wire form carries the raw histogram buckets (not just the summary), so a
percentile of the merged histogram equals the percentile of the pooled
samples — federation loses no fidelity over running everything in one
process (a tested invariant).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterable

# The bucket grid lives in repro.obs.histogram so the server's per-stage
# histograms land on the same grid (and the same wire form) as the
# swarm's client-side latencies.  The private aliases keep this module's
# historical names working.
from repro.obs.histogram import (
    BUCKET_COUNT as _BUCKETS,
    GROWTH as _GROWTH,
    MIN_LATENCY as _MIN_LATENCY,
    bucket_index as _bucket_index,
    bucket_upper_bound as _bucket_upper_bound,
)


class LatencyHistogram:
    """Counts per geometric latency bucket; totals are exact, values ±9 %."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.counts[_bucket_index(seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Latency at percentile ``p`` (0..100): the upper bound of the
        bucket holding the p-th sample, clamped to the observed max."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return min(_bucket_upper_bound(index), self.max)
        return self.max  # pragma: no cover - rank <= count by construction

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 3),
            "min_ms": round(self.min * 1e3, 3) if self.count else 0.0,
            "max_ms": round(self.max * 1e3, 3),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p95_ms": round(self.percentile(95) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
        }

    def to_wire(self) -> dict:
        """JSON-safe full-fidelity form: sparse bucket counts plus the
        exact totals, so a deserialized histogram merges and reports
        exactly like the original."""
        return {
            "buckets": {str(i): n for i, n in enumerate(self.counts) if n},
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "LatencyHistogram":
        histogram = cls()
        for index, n in data.get("buckets", {}).items():
            histogram.counts[int(index)] = int(n)
        histogram.count = int(data.get("count", 0))
        histogram.total = float(data.get("total", 0.0))
        minimum = data.get("min")
        histogram.min = math.inf if minimum is None else float(minimum)
        histogram.max = float(data.get("max", 0.0))
        return histogram


@dataclass
class MetricsSnapshot:
    """A merged, read-only view of one or more collectors."""

    histograms: dict[str, LatencyHistogram] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    series: dict[int, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(h.count for h in self.histograms.values())

    @property
    def error_count(self) -> int:
        return sum(self.errors.values())

    def count(self, op: str) -> int:
        histogram = self.histograms.get(op)
        return histogram.count if histogram else 0

    def to_dict(self) -> dict:
        return {
            "completed": self.completed,
            "errors": dict(self.errors),
            "ops": {op: h.summary() for op, h in sorted(self.histograms.items())},
            "throughput_series": {
                str(sec): n for sec, n in sorted(self.series.items())
            },
        }

    def to_wire(self) -> dict:
        """Full-fidelity JSON form (raw buckets) for cross-process merge —
        the federated swarm's worker→coordinator payload."""
        return {
            "histograms": {
                op: h.to_wire() for op, h in sorted(self.histograms.items())
            },
            "errors": dict(self.errors),
            "series": {str(sec): n for sec, n in sorted(self.series.items())},
        }

    @classmethod
    def from_wire(cls, data: dict) -> "MetricsSnapshot":
        return cls(
            histograms={
                op: LatencyHistogram.from_wire(h)
                for op, h in data.get("histograms", {}).items()
            },
            errors={op: int(n) for op, n in data.get("errors", {}).items()},
            series={int(sec): int(n)
                    for sec, n in data.get("series", {}).items()},
        )

    def rebase_series(self, zero_second: int) -> None:
        """Shift the throughput series so ``zero_second`` becomes 0 —
        workers rebase onto their release instant so the coordinator can
        merge series from processes with different epochs.  Completions
        from before the new zero (setup traffic) fold into second 0."""
        self.series = _shift_series(self.series, zero_second)


def _shift_series(series: dict[int, int], zero_second: int) -> dict[int, int]:
    shifted: dict[int, int] = {}
    for second, n in series.items():
        key = max(0, second - zero_second)
        shifted[key] = shifted.get(key, 0) + n
    return shifted


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold snapshots (e.g. one per federated worker) into one.  Histogram
    buckets add, so merged percentiles equal percentiles of the pooled
    samples; error counts and throughput series add second-by-second."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        for op, histogram in snapshot.histograms.items():
            into = merged.histograms.get(op)
            if into is None:
                into = merged.histograms[op] = LatencyHistogram()
            into.merge(histogram)
        for op, n in snapshot.errors.items():
            merged.errors[op] = merged.errors.get(op, 0) + n
        for second, n in snapshot.series.items():
            merged.series[second] = merged.series.get(second, 0) + n
    return merged


def _stable_copy(source: dict) -> dict:
    """Copy a dict a single writer thread may be inserting into."""
    while True:
        try:
            return dict(source)
        except RuntimeError:  # a key appeared mid-copy; retry
            continue


class Metrics:
    """Single-writer collector: one per event-loop shard."""

    def __init__(self, epoch: float | None = None) -> None:
        #: Second-zero reference for the throughput series; shards created
        #: by one engine share the engine's epoch so their series align.
        self.epoch = time.monotonic() if epoch is None else epoch
        self._histograms: dict[str, LatencyHistogram] = {}
        self._errors: dict[str, int] = {}
        self._series: dict[int, int] = {}

    def record(self, op: str, seconds: float, now: float | None = None) -> None:
        histogram = self._histograms.get(op)
        if histogram is None:
            histogram = self._histograms[op] = LatencyHistogram()
        histogram.record(seconds)
        second = int((time.monotonic() if now is None else now) - self.epoch)
        self._series[second] = self._series.get(second, 0) + 1

    def record_error(self, op: str) -> None:
        self._errors[op] = self._errors.get(op, 0) + 1

    @staticmethod
    def merge(collectors: Iterable["Metrics"]) -> MetricsSnapshot:
        """Fold collectors into one snapshot.  Safe to call while shard
        threads are still recording (live telemetry): dicts are copied
        with a retry against concurrent key insertion, so the result is a
        consistent-enough point-in-time view."""
        snapshot = MetricsSnapshot()
        for collector in collectors:
            for op, histogram in _stable_copy(collector._histograms).items():
                into = snapshot.histograms.get(op)
                if into is None:
                    into = snapshot.histograms[op] = LatencyHistogram()
                into.merge(histogram)
            for op, n in _stable_copy(collector._errors).items():
                snapshot.errors[op] = snapshot.errors.get(op, 0) + n
            for second, n in _stable_copy(collector._series).items():
                snapshot.series[second] = snapshot.series.get(second, 0) + n
        return snapshot
