"""``repro.loadgen`` — event-driven client swarm for load generation.

A selectors-based engine multiplexes thousands of simulated Communix
clients over a handful of OS threads (mirroring the server transport's
event-loop design), drives each one with a pluggable scenario state
machine, and records per-op latency histograms and throughput series.

Programmatic use::

    from repro.loadgen import SwarmEngine, build_mix

    engine = SwarmEngine(host, port, loops=2)
    engine.add_clients(build_mix("cold=1,steady=2", clients=500, seed=7))
    snapshot = engine.run(timeout=120.0)
    print(snapshot.histograms["get_page"].percentile(99))

Command line: ``python -m repro.loadgen --help``.
"""

from repro.loadgen.engine import SwarmEngine
from repro.loadgen.federation import FederationReport, federated_run
from repro.loadgen.metrics import (
    LatencyHistogram,
    Metrics,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.loadgen.scenarios import (
    AdjacentSpam,
    Churn,
    ColdSync,
    ForgedTokens,
    Park,
    QuotaFlood,
    RampingFlood,
    Reconnect,
    SCENARIO_NAMES,
    Scenario,
    Send,
    SteadyState,
    Stop,
    build_mix,
    make_scenario,
    parse_mix,
)

__all__ = [
    "AdjacentSpam",
    "Churn",
    "ColdSync",
    "FederationReport",
    "ForgedTokens",
    "LatencyHistogram",
    "Metrics",
    "MetricsSnapshot",
    "Park",
    "QuotaFlood",
    "RampingFlood",
    "Reconnect",
    "SCENARIO_NAMES",
    "Scenario",
    "Send",
    "SteadyState",
    "Stop",
    "SwarmEngine",
    "build_mix",
    "federated_run",
    "make_scenario",
    "merge_snapshots",
    "parse_mix",
]
