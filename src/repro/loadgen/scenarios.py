"""Pluggable per-client behaviors for the swarm engine.

A **scenario** is a per-client state machine: the engine calls it on
connection events and completed responses, and the scenario answers with
the next :class:`Action` — send a request, park at the start barrier,
drop and redial the connection, or stop.  One scenario instance drives
exactly one simulated client; factories (``lambda: ColdSync(...)``) give
every client its own state.

The built-in scenarios cover the paper's workloads:

* :class:`ColdSync` — a new node draining the signature database through
  paginated ``GET`` (§III-B's download path);
* :class:`SteadyState` — the Fig. 2/3 load shape: ``ADD(sig)`` followed by
  an incremental ``GET`` from the client's cursor;
* :class:`Churn` — short-lived connections redialing between bursts;
* :class:`ForgedTokens` — §III-C2 attacker with undecryptable tokens;
* :class:`AdjacentSpam` — forged critical-path signatures the adjacency
  check must reject (§IV-B);
* :class:`QuotaFlood` — distinct off-path signatures stopped only by the
  per-user daily quota (§III-C1);
* :class:`RampingFlood` — the same flood starting at a benign-looking
  pace and accelerating to full blast, the shape the admission guard's
  detector (``repro.guard``) has to catch mid-ramp.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.loadgen import signatures as siggen
from repro.server.protocol import count_get_page, encode_add_request, encode_request
from repro.util.encoding import from_canonical_json

#: Metric labels the built-in scenarios use.
OP_ISSUE_ID = "issue_id"
OP_ADD = "add"
OP_GET_PAGE = "get_page"
OP_ADD_FORGED = "add_forged"
OP_ADD_ATTACK = "add_attack"


# ------------------------------------------------------------------ actions
@dataclass(frozen=True)
class Send:
    """Transmit one request frame; ``op`` labels its latency histogram.
    A positive ``delay`` is client think time before the send."""

    payload: bytes
    op: str
    delay: float = 0.0


@dataclass(frozen=True)
class Park:
    """Hold at the start barrier until the engine releases the swarm
    (``SwarmEngine.release``); the connection stays open."""


@dataclass(frozen=True)
class Reconnect:
    """Close the connection and dial a fresh one after ``delay``."""

    delay: float = 0.0


@dataclass(frozen=True)
class Stop:
    """This client is finished; close its connection."""


Action = Send | Park | Reconnect | Stop


@dataclass
class ClientContext:
    """What the engine tells a scenario about its client."""

    client_id: int
    reconnects: int = 0


# ----------------------------------------------------------------- protocol
def _get_page_request(from_index: int, max_count: int) -> bytes:
    return encode_request(
        {"op": "GET", "from_index": from_index, "max_count": max_count}
    )


class Scenario:
    """Base scenario: subclasses implement ``begin`` and ``on_response``.

    ``begin`` returns the client's first action once it is connected.  With
    ``park_on_connect`` set, the client instead parks at the engine's start
    barrier immediately after the transport connects — before issuing any
    request — and ``begin`` runs on release.  That is the barrier mode the
    federated benchmarks use: every client across every worker process
    holds an open connection, then the whole fleet starts at once.
    """

    #: Set when the scenario aborted on an unexpected response or error.
    failed: bool = False
    #: Park at the start barrier straight after connecting.
    park_on_connect: bool = False
    _release_seen: bool = False

    def begin(self, ctx: ClientContext) -> Action:
        """First action on a fresh connection (and again after
        ``Reconnect``)."""
        raise NotImplementedError

    def on_connect(self, ctx: ClientContext) -> Action:
        if self.park_on_connect and not self._release_seen:
            return Park()
        return self.begin(ctx)

    def on_response(self, ctx: ClientContext, op: str, payload: bytes) -> Action:
        raise NotImplementedError

    def on_release(self, ctx: ClientContext) -> Action:
        """Called when the engine releases parked clients."""
        self._release_seen = True
        return self.begin(ctx)

    def on_error(self, ctx: ClientContext, op: str | None, exc: Exception) -> Action:
        """Connection-level failure (refused, reset, protocol error)."""
        self.failed = True
        return Stop()


# ---------------------------------------------------------------- scenarios
class ColdSync(Scenario):
    """Drain the database with paginated GETs until ``more`` is clear.

    Resumes from its cursor across reconnects, so it composes with churny
    transports.  ``drained`` counts signatures received; ``completed`` is
    set once the server reports no further entries.
    """

    def __init__(self, page_size: int = 256, start_index: int = 0,
                 park_on_connect: bool = False):
        self.page_size = page_size
        self.cursor = start_index
        self.drained = 0
        self.completed = False
        self.park_on_connect = park_on_connect

    def begin(self, ctx: ClientContext) -> Action:
        return Send(_get_page_request(self.cursor, self.page_size), OP_GET_PAGE)

    def on_response(self, ctx: ClientContext, op: str, payload: bytes) -> Action:
        next_index, count, more = count_get_page(payload)
        self.cursor = next_index
        self.drained += count
        if more:
            return Send(_get_page_request(self.cursor, self.page_size), OP_GET_PAGE)
        self.completed = True
        return Stop()


class SteadyState(Scenario):
    """``len(blobs)`` rounds of ``ADD(sig)`` + incremental ``GET``.

    The client first obtains a token (``ISSUE_ID``), optionally parks at
    the start barrier (so a benchmark can connect everyone before timing
    begins), then alternates uploads with cursor-resumed page downloads —
    the paper's steady-state node behavior.  A per-client
    ``initial_delay`` staggers the first ADD after release: a swarm of
    barrier-parked clients otherwise fires its first round as one burst,
    and that synchronized spike — not steady-state service time — ends
    up owning the tail percentiles.
    """

    def __init__(self, blobs: list[bytes], page_size: int = 256,
                 think_time: float = 0.0, park_after_setup: bool = False,
                 park_on_connect: bool = False, initial_delay: float = 0.0):
        self.blobs = blobs
        self.page_size = page_size
        self.think_time = think_time
        self.park_after_setup = park_after_setup
        self.park_on_connect = park_on_connect
        self.initial_delay = initial_delay
        self.token: str | None = None
        self.cursor = 0
        self.round = 0
        self.accepted = 0
        self.completed = False

    def begin(self, ctx: ClientContext) -> Action:
        if self.token is None:
            return Send(encode_request({"op": "ISSUE_ID"}), OP_ISSUE_ID)
        return self._next_add(first=True)

    def _next_add(self, first: bool = False) -> Action:
        if self.round >= len(self.blobs):
            self.completed = True
            return Stop()
        blob = self.blobs[self.round]
        delay = self.initial_delay if first else self.think_time
        return Send(encode_add_request(blob, self.token), OP_ADD, delay=delay)

    def on_response(self, ctx: ClientContext, op: str, payload: bytes) -> Action:
        if op == OP_ISSUE_ID:
            decoded = from_canonical_json(payload)
            if not decoded.get("ok"):
                self.failed = True
                return Stop()
            self.token = str(decoded["token"])
            if self.park_after_setup:
                return Park()
            return self._next_add(first=True)
        if op == OP_ADD:
            if from_canonical_json(payload).get("ok"):
                self.accepted += 1
            return Send(_get_page_request(self.cursor, self.page_size), OP_GET_PAGE)
        next_index, _count, _more = count_get_page(payload)
        self.cursor = next_index
        self.round += 1
        return self._next_add()


class Churn(Scenario):
    """Connection churn: dial, page a few times, hang up, redial.

    Exercises the server's accept path and idle/close handling the way a
    population of short-lived clients does.  ``connects`` counts
    established connections; the cursor persists across them.
    """

    def __init__(self, cycles: int = 5, ops_per_cycle: int = 2,
                 page_size: int = 64, reconnect_delay: float = 0.0,
                 park_on_connect: bool = False):
        self.cycles = cycles
        self.ops_per_cycle = ops_per_cycle
        self.page_size = page_size
        self.reconnect_delay = reconnect_delay
        self.park_on_connect = park_on_connect
        self.cursor = 0
        self.connects = 0
        self.cycles_done = 0
        self._ops_this_cycle = 0
        self.completed = False

    def begin(self, ctx: ClientContext) -> Action:
        self.connects += 1
        self._ops_this_cycle = 0
        return Send(_get_page_request(self.cursor, self.page_size), OP_GET_PAGE)

    def on_response(self, ctx: ClientContext, op: str, payload: bytes) -> Action:
        next_index, _count, more = count_get_page(payload)
        # Wrap to the start when drained, so every op moves real data.
        self.cursor = next_index if more else 0
        self._ops_this_cycle += 1
        if self._ops_this_cycle < self.ops_per_cycle:
            return Send(_get_page_request(self.cursor, self.page_size), OP_GET_PAGE)
        self.cycles_done += 1
        if self.cycles_done >= self.cycles:
            self.completed = True
            return Stop()
        return Reconnect(delay=self.reconnect_delay)


class ForgedTokens(Scenario):
    """§III-C attacker without a valid identity: every ADD carries an
    undecryptable token and must come back ``bad_token``."""

    def __init__(self, blobs: list[bytes], tokens: list[str],
                 park_on_connect: bool = False):
        if len(tokens) < len(blobs):
            raise ValueError("need one forged token per blob")
        self.blobs = blobs
        self.tokens = tokens
        self.park_on_connect = park_on_connect
        self.sent = 0
        self.verdicts: dict[str, int] = {}
        self.completed = False

    def begin(self, ctx: ClientContext) -> Action:
        return self._next_add()

    def _next_add(self) -> Action:
        if self.sent >= len(self.blobs):
            self.completed = True
            return Stop()
        action = Send(
            encode_add_request(self.blobs[self.sent], self.tokens[self.sent]),
            OP_ADD_FORGED,
        )
        self.sent += 1
        return action

    def on_response(self, ctx: ClientContext, op: str, payload: bytes) -> Action:
        verdict = str(from_canonical_json(payload).get("verdict", "unknown"))
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
        return self._next_add()


class _AuthenticatedSpam(Scenario):
    """One valid identity uploading a prepared spam blob list; tallies the
    server's per-ADD verdicts."""

    op = OP_ADD_ATTACK

    def __init__(self, blobs: list[bytes], park_on_connect: bool = False):
        self.blobs = blobs
        self.park_on_connect = park_on_connect
        self.token: str | None = None
        self.sent = 0
        self.verdicts: dict[str, int] = {}
        self.completed = False

    def begin(self, ctx: ClientContext) -> Action:
        if self.token is None:
            return Send(encode_request({"op": "ISSUE_ID"}), OP_ISSUE_ID)
        return self._next_add()

    def _next_add(self) -> Action:
        if self.sent >= len(self.blobs):
            self.completed = True
            return Stop()
        action = Send(
            encode_add_request(self.blobs[self.sent], self.token), self.op
        )
        self.sent += 1
        return action

    def on_response(self, ctx: ClientContext, op: str, payload: bytes) -> Action:
        decoded = from_canonical_json(payload)
        if op == OP_ISSUE_ID:
            if not decoded.get("ok"):
                self.failed = True
                return Stop()
            self.token = str(decoded["token"])
            return self._next_add()
        verdict = str(decoded.get("verdict", "unknown"))
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
        return self._next_add()

    @property
    def accepted(self) -> int:
        return self.verdicts.get("ok", 0)


class AdjacentSpam(_AuthenticatedSpam):
    """§IV-B critical-path forgeries from one user: pairwise-overlapping
    top frames, so the adjacency check caps what the server accepts."""


class QuotaFlood(_AuthenticatedSpam):
    """Distinct valid-looking signatures from one user: only the daily
    quota (§III-C1) bounds how many the server accepts."""


class RampingFlood(_AuthenticatedSpam):
    """A quota flood that sneaks up: the client starts with
    ``start_delay`` of think time per ADD (indistinguishable from a
    steady-state node) and linearly sheds the delay over ``ramp_s``
    seconds until it is sending flat-out.  Exercises the admission
    guard's detection latency — a threshold tuned on the opening rate
    misses the flood entirely; a sliding-window detector catches the
    ramp as it crosses the budget."""

    def __init__(self, blobs: list[bytes], start_delay: float = 0.05,
                 ramp_s: float = 5.0, park_on_connect: bool = False,
                 clock=time.monotonic):
        super().__init__(blobs, park_on_connect=park_on_connect)
        self.start_delay = start_delay
        self.ramp_s = ramp_s
        self._clock = clock
        self._ramp_started: float | None = None

    def current_delay(self) -> float:
        """Think time at this point of the ramp (0 once fully ramped)."""
        now = self._clock()
        if self._ramp_started is None:
            self._ramp_started = now
        if self.ramp_s <= 0.0:
            return 0.0
        remaining = 1.0 - (now - self._ramp_started) / self.ramp_s
        return self.start_delay * max(0.0, remaining)

    def _next_add(self) -> Action:
        action = super()._next_add()
        if isinstance(action, Send):
            delay = self.current_delay()
            if delay > 0.0:
                action = Send(action.payload, action.op, delay=delay)
        return action


# ------------------------------------------------------------ scenario mixes
def _steady_blobs(rng: random.Random, rounds: int) -> list[bytes]:
    return [siggen.random_signature(rng).to_bytes() for _ in range(rounds)]


def make_scenario(name: str, rng: random.Random, *, rounds: int = 5,
                  page_size: int = 256, park: bool = False) -> Scenario:
    """One scenario instance by registry name (CLI / mix helper).  With
    ``park`` set, the client holds at the start barrier after connecting
    (the federated-swarm barrier mode)."""
    seed = rng.getrandbits(32)
    if name == "cold":
        return ColdSync(page_size=page_size, park_on_connect=park)
    if name == "steady":
        return SteadyState(_steady_blobs(rng, rounds), page_size=page_size,
                           park_on_connect=park)
    if name == "churn":
        return Churn(cycles=max(1, rounds), ops_per_cycle=2,
                     page_size=page_size, park_on_connect=park)
    if name == "forged":
        return ForgedTokens(
            siggen.off_path_flood_blobs(rounds, seed=seed),
            siggen.forged_tokens(rounds, seed=seed),
            park_on_connect=park,
        )
    if name == "adjacent":
        return AdjacentSpam(siggen.adjacent_spam_blobs(rounds, seed=seed),
                            park_on_connect=park)
    if name == "flood":
        return QuotaFlood(siggen.off_path_flood_blobs(rounds, seed=seed),
                          park_on_connect=park)
    if name == "rampflood":
        return RampingFlood(siggen.off_path_flood_blobs(rounds, seed=seed),
                            park_on_connect=park)
    raise ValueError(f"unknown scenario {name!r} (have {sorted(SCENARIO_NAMES)})")


SCENARIO_NAMES = ("cold", "steady", "churn", "forged", "adjacent", "flood",
                  "rampflood")


def parse_mix(spec: str) -> list[tuple[str, float]]:
    """``"cold=1,steady=2,churn=1"`` → weighted scenario names."""
    mix: list[tuple[str, float]] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, weight = item.partition("=")
        name = name.strip()
        if name not in SCENARIO_NAMES:
            raise ValueError(
                f"unknown scenario {name!r} (have {sorted(SCENARIO_NAMES)})"
            )
        mix.append((name, float(weight) if weight else 1.0))
    if not mix or sum(w for _, w in mix) <= 0:
        raise ValueError(f"empty scenario mix {spec!r}")
    return mix


def build_mix(spec: str, clients: int, seed: int = 0, *, rounds: int = 5,
              page_size: int = 256, park: bool = False) -> list[Scenario]:
    """``clients`` scenario instances apportioned by the mix's weights
    (largest-remainder rounding, deterministic under ``seed``)."""
    merged: dict[str, float] = {}
    for name, weight in parse_mix(spec):  # collapse repeated names
        merged[name] = merged.get(name, 0.0) + weight
    total_weight = sum(merged.values())
    rng = random.Random(seed)
    shares = [(name, clients * weight / total_weight)
              for name, weight in merged.items()]
    counts = {name: int(share) for name, share in shares}
    remainder = clients - sum(counts.values())
    by_fraction = sorted(shares, key=lambda s: s[1] - int(s[1]), reverse=True)
    for name, _ in by_fraction[:remainder]:
        counts[name] += 1
    scenarios: list[Scenario] = []
    for name, count in counts.items():
        for _ in range(count):
            scenarios.append(
                make_scenario(name, rng, rounds=rounds, page_size=page_size,
                              park=park)
            )
    return scenarios
