"""The swarm engine: thousands of simulated clients on a few threads.

Mirrors the server transport's event-loop design on the *client* side:
each of a handful of **shard** threads owns a ``selectors`` selector and a
slice of the simulated clients, multiplexing their non-blocking sockets —
connect, frame, send, receive — so a 10,000-client sweep costs a few OS
threads instead of 10,000 (the thread-per-connection ceiling the Fig. 2/3
benchmarks used to hit at ~1,000).

Each client is driven by a :class:`~repro.loadgen.scenarios.Scenario`
state machine; the shard translates scenario actions into socket work and
completed responses back into scenario callbacks.  Per-shard
:class:`~repro.loadgen.metrics.Metrics` record one latency sample or one
error for every request issued — never both, never neither — which is the
invariant the swarm's own tests pin.

Operational guarantees:

* **Connect pacing** — at most ``connect_burst`` dials are in flight per
  shard, so a 10k-client ramp cannot overrun the server's accept backlog.
* **Start barrier** — scenarios may :class:`~repro.loadgen.scenarios.Park`
  after setup; :meth:`SwarmEngine.release` opens the gate for all shards
  at once, giving benchmarks a connected-before-timed window.
* **Clean teardown** — :meth:`SwarmEngine.stop` joins every shard and
  closes every socket and selector; ``open_fds()`` is empty afterwards.
"""

from __future__ import annotations

import collections
import errno
import heapq
import selectors
import socket
import struct
import threading
import time

from repro.loadgen.metrics import Metrics, MetricsSnapshot
from repro.net import BufferPool, create_dial_socket, parse_endpoint, tcp_endpoint
from repro.loadgen.scenarios import (
    Action,
    ClientContext,
    Park,
    Reconnect,
    Scenario,
    Send,
    Stop,
)
from repro.server.protocol import MAX_FRAME
from repro.util.errors import ProtocolError
from repro.util.logging import get_logger

log = get_logger("loadgen.engine")

_RECV_CHUNK = 64 * 1024
#: Shard tick: upper bound on how stale stop/release flags can get.
_TICK = 0.05

# Client states.
_PENDING = "pending"        # queued behind the connect throttle
_CONNECTING = "connecting"  # non-blocking connect in flight
_ACTIVE = "active"          # connected; sending, waiting, or thinking
_PARKED = "parked"          # holding at the start barrier
_DONE = "done"              # finished (stopped or failed)

_IN_PROGRESS = {errno.EINPROGRESS, errno.EWOULDBLOCK, errno.EALREADY}


class _Client:
    """One simulated Communix client (owned by exactly one shard)."""

    __slots__ = ("cid", "scenario", "ctx", "state", "sock", "fd", "events",
                 "inbuf", "outbuf", "outpos", "op", "awaiting",
                 "send_started", "pending_send", "gen")

    def __init__(self, cid: int, scenario: Scenario):
        self.cid = cid
        self.scenario = scenario
        self.ctx = ClientContext(client_id=cid)
        self.state = _PENDING
        self.sock: socket.socket | None = None
        self.fd = -1
        self.events = 0
        self.inbuf = bytearray()
        self.outbuf = b""
        self.outpos = 0
        self.op: str | None = None
        self.awaiting = False          # a request is on the wire, unanswered
        self.send_started = 0.0
        self.pending_send: Send | None = None  # think-time delayed request
        self.gen = 0                   # dial generation (stale-timer guard)


class _Shard:
    """One event-loop thread's worth of swarm clients."""

    def __init__(self, engine: "SwarmEngine", index: int):
        self.engine = engine
        self.index = index
        self.selector: selectors.BaseSelector = selectors.DefaultSelector()
        self.metrics = Metrics(epoch=engine.epoch)
        self.issued: dict[str, int] = {}
        self.clients: list[_Client] = []
        self.backlog: collections.deque[_Client] = collections.deque()
        self.connecting = 0
        self.connected = 0
        self.parked: list[_Client] = []
        self.finished = 0
        self.timers: list[tuple[float, int, _Client, str, int]] = []
        self._timer_seq = 0
        self.thread: threading.Thread | None = None
        # Mirrors the server transport's read path: recv_into on a pooled
        # buffer, so measuring the server never charges it for the
        # generator's own per-read allocations.
        self._recv_pool = BufferPool(_RECV_CHUNK)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        self.backlog.extend(self.clients)
        self.thread = threading.Thread(
            target=self._run, name=f"swarm-shard-{self.index}", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        try:
            stop = self.engine._stop_event
            while not stop.is_set():
                self._start_connects()
                self._check_release()
                timeout = _TICK
                if self.timers:
                    timeout = min(
                        timeout, max(0.0, self.timers[0][0] - time.monotonic())
                    )
                for key, mask in self.selector.select(timeout):
                    self._dispatch(key.data, mask)
                self._fire_timers()
                if self.finished >= len(self.clients):
                    self.engine._note_shard_idle()
                    if stop.is_set():
                        break
                    self.engine._idle_wait(_TICK)
        except Exception:  # pragma: no cover - shard must never die silently
            log.exception("swarm shard %d crashed", self.index)
            self.engine._note_shard_crash()
        finally:
            self._close_all()

    def _close_all(self) -> None:
        for client in self.clients:
            if client.sock is not None:
                self._unregister(client)
                try:
                    client.sock.close()
                except OSError:
                    pass
                client.sock = None
        try:
            self.selector.close()
        except OSError:
            pass

    # ------------------------------------------------------------- connects
    def _start_connects(self) -> None:
        engine = self.engine
        while self.backlog and self.connecting < engine.connect_burst:
            client = self.backlog.popleft()
            if client.state is _DONE:
                continue
            if not self._dial(client):
                # The server's listen backlog is full; every further dial
                # this tick would fail the same way.  Requeue and let the
                # next tick retry, so a saturated server sees one probe
                # per shard tick instead of a socket-churn storm.
                self.backlog.appendleft(client)
                return

    def _dial(self, client: _Client) -> bool:
        """Start a non-blocking connect; False if the server's listen
        backlog is full (UNIX EAGAIN) and the dial should be retried."""
        endpoint = self.engine.endpoint
        sock = create_dial_socket(endpoint)
        client.sock = sock
        client.fd = sock.fileno()
        client.gen += 1
        client.inbuf.clear()
        client.outbuf = b""
        client.outpos = 0
        client.awaiting = False
        rc = sock.connect_ex(endpoint.sockaddr())
        if endpoint.is_unix and rc == errno.EAGAIN:
            # UNIX connect has no asynchronous mode: EAGAIN means the
            # server's listen backlog is momentarily full.  Back off and
            # redial instead of treating it as an in-flight connect.
            self._drop_socket(client)
            return False
        if rc == 0 or rc in _IN_PROGRESS:
            client.state = _CONNECTING
            self.connecting += 1
            client.events = selectors.EVENT_WRITE
            self.selector.register(sock, selectors.EVENT_WRITE, client)
            self._schedule(client, "connect_timeout",
                           self.engine.connect_timeout, gen=client.gen)
            return True
        self._drop_socket(client)
        self._client_error(client, None, OSError(rc, "connect failed"),
                           label="connect")
        return True

    def _finish_connect(self, client: _Client) -> None:
        self.connecting -= 1
        err = client.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
        if err:
            self._drop_socket(client)
            self._client_error(client, None, OSError(err, "connect failed"),
                               label="connect")
            return
        client.state = _ACTIVE
        self.connected += 1
        self._set_events(client, selectors.EVENT_READ)
        self._run_hook(client, lambda: client.scenario.on_connect(client.ctx))

    # --------------------------------------------------------------- events
    def _dispatch(self, client: _Client, mask: int) -> None:
        if client.state is _DONE or client.sock is None:
            return
        if client.state is _CONNECTING:
            if mask & selectors.EVENT_WRITE:
                self._finish_connect(client)
            return
        if mask & selectors.EVENT_WRITE:
            self._flush(client)
        if client.state is not _DONE and client.sock is not None \
                and mask & selectors.EVENT_READ:
            self._read(client)

    def _read(self, client: _Client) -> None:
        pool = self._recv_pool
        buf = pool.acquire()
        try:
            n = client.sock.recv_into(buf)
        except (BlockingIOError, InterruptedError):
            pool.release(buf)
            return
        except OSError as exc:
            pool.release(buf)
            self._connection_lost(client, exc)
            return
        if not n:
            pool.release(buf)
            self._connection_lost(
                client, ProtocolError("server closed the connection")
            )
            return
        client.inbuf += memoryview(buf)[:n]
        pool.release(buf)
        while client.awaiting and client.state is not _DONE:
            payload = self._next_frame(client)
            if payload is None:
                return
            self._complete(client, payload)
        if client.inbuf and client.state not in (_DONE,):
            # Bytes with no request outstanding: protocol violation.
            self._connection_lost(
                client, ProtocolError("unsolicited bytes from server")
            )

    def _next_frame(self, client: _Client) -> bytes | None:
        buf = client.inbuf
        if len(buf) < 4:
            return None
        (length,) = struct.unpack_from(">I", buf)
        if length > MAX_FRAME:
            self._connection_lost(
                client, ProtocolError(f"oversized frame ({length} bytes)")
            )
            return None
        if len(buf) < 4 + length:
            return None
        payload = bytes(buf[4:4 + length])
        del buf[:4 + length]
        return payload

    def _complete(self, client: _Client, payload: bytes) -> None:
        now = time.monotonic()
        op = client.op
        client.awaiting = False
        client.op = None
        self.metrics.record(op, now - client.send_started, now)
        self._run_hook(
            client, lambda: client.scenario.on_response(client.ctx, op, payload)
        )

    def _flush(self, client: _Client) -> None:
        view = memoryview(client.outbuf)
        while client.outpos < len(client.outbuf):
            try:
                sent = client.sock.send(view[client.outpos:])
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._connection_lost(client, exc)
                return
            client.outpos += sent
        if client.outpos >= len(client.outbuf):
            client.outbuf = b""
            client.outpos = 0
            self._set_events(client, selectors.EVENT_READ)
        else:
            self._set_events(
                client, selectors.EVENT_READ | selectors.EVENT_WRITE
            )

    # -------------------------------------------------------------- actions
    def _run_hook(self, client: _Client, hook) -> None:
        try:
            action = hook()
        except Exception:
            log.exception("scenario hook failed (client %d)", client.cid)
            client.scenario.failed = True
            self._finish(client)
            return
        try:
            self._apply(client, action)
        except Exception:
            # A bad action (e.g. Send returned from on_error after the
            # socket died) must fail this client alone, not the shard.
            log.exception("applying scenario action failed (client %d)",
                          client.cid)
            client.scenario.failed = True
            self._finish(client)

    def _apply(self, client: _Client, action: Action) -> None:
        if isinstance(action, Send):
            if action.delay > 0:
                client.pending_send = action
                self._schedule(client, "send", action.delay)
            else:
                self._begin_send(client, action)
        elif isinstance(action, Park):
            client.state = _PARKED
            self.parked.append(client)
            if self.engine._released.is_set():
                self._check_release()  # barrier already open: pass through
        elif isinstance(action, Reconnect):
            client.ctx.reconnects += 1
            self._hang_up(client)
            if action.delay > 0:
                self._schedule(client, "redial", action.delay)
            else:
                self.backlog.append(client)
        elif isinstance(action, Stop):
            self._finish(client)
        else:  # pragma: no cover - scenario bug
            client.scenario.failed = True
            self._finish(client)

    def _begin_send(self, client: _Client, action: Send) -> None:
        if client.sock is None or len(action.payload) > MAX_FRAME:
            # Sending needs a live connection (a scenario may only answer
            # a connection error with Reconnect or Stop).
            client.scenario.failed = True
            self._finish(client)
            return
        client.outbuf = struct.pack(">I", len(action.payload)) + action.payload
        client.outpos = 0
        client.op = action.op
        client.awaiting = True
        client.send_started = time.monotonic()
        self.issued[action.op] = self.issued.get(action.op, 0) + 1
        self._flush(client)

    # --------------------------------------------------------------- timers
    def _schedule(self, client: _Client, kind: str, delay: float,
                  gen: int = 0) -> None:
        self._timer_seq += 1
        heapq.heappush(
            self.timers,
            (time.monotonic() + delay, self._timer_seq, client, kind, gen),
        )

    def _fire_timers(self) -> None:
        now = time.monotonic()
        while self.timers and self.timers[0][0] <= now:
            _, _, client, kind, gen = heapq.heappop(self.timers)
            if client.state is _DONE:
                continue
            if kind == "send":
                pending, client.pending_send = client.pending_send, None
                if pending is not None and client.state is _ACTIVE:
                    self._begin_send(client, pending)
            elif kind == "redial":
                if client.state is _PENDING:
                    self.backlog.append(client)
            elif kind == "connect_timeout":
                # A timer from a superseded dial must not kill a fresh one.
                if client.state is _CONNECTING and client.gen == gen:
                    self.connecting -= 1
                    self._drop_socket(client)
                    self._client_error(
                        client, None,
                        OSError(errno.ETIMEDOUT, "connect timed out"),
                        label="connect",
                    )

    # -------------------------------------------------------------- barrier
    def _check_release(self) -> None:
        if not self.parked or not self.engine._released.is_set():
            return
        parked, self.parked = self.parked, []
        for client in parked:
            if client.state is _PARKED:
                client.state = _ACTIVE
                self._run_hook(
                    client, lambda c=client: c.scenario.on_release(c.ctx)
                )

    # --------------------------------------------------------------- errors
    def _connection_lost(self, client: _Client, exc: Exception) -> None:
        """The transport under a live client failed (reset, EOF, garbage)."""
        op = client.op if client.awaiting else None
        self._drop_socket(client)
        self._client_error(client, op, exc)

    def _client_error(self, client: _Client, op: str | None, exc: Exception,
                      label: str = "connection") -> None:
        # Every issued-but-unanswered request records exactly one error
        # under its own op; failures between requests count as
        # "connection" and connect failures as "connect".
        self.metrics.record_error(op if op is not None else label)
        client.awaiting = False
        client.op = None
        self._run_hook(
            client, lambda: client.scenario.on_error(client.ctx, op, exc)
        )

    # -------------------------------------------------------------- closing
    def _set_events(self, client: _Client, mask: int) -> None:
        if client.events != mask:
            self.selector.modify(client.sock, mask, client)
            client.events = mask

    def _unregister(self, client: _Client) -> None:
        try:
            self.selector.unregister(client.sock)
        except (KeyError, ValueError, OSError):
            pass
        client.events = 0

    def _drop_socket(self, client: _Client) -> None:
        if client.sock is None:
            return
        was_active = client.state in (_ACTIVE, _PARKED)
        self._unregister(client)
        try:
            client.sock.close()
        except OSError:
            pass
        client.sock = None
        client.fd = -1
        if was_active:
            self.connected -= 1
        client.state = _PENDING
        client.inbuf.clear()
        client.outbuf = b""
        client.outpos = 0
        client.awaiting = False
        client.op = None
        client.pending_send = None

    def _hang_up(self, client: _Client) -> None:
        self._drop_socket(client)

    def _finish(self, client: _Client) -> None:
        if client.state is _DONE:
            return
        self._drop_socket(client)
        client.state = _DONE
        self.finished += 1
        self.engine._note_client_done()


class SwarmEngine:
    """Owns the shards, the start barrier, and the merged metrics."""

    def __init__(self, target, port: int | None = None, *, loops: int = 2,
                 connect_burst: int = 128, connect_timeout: float = 20.0):
        """``target`` is an endpoint URL / :class:`repro.net.Endpoint`; the
        historical ``SwarmEngine(host, port)`` form still works."""
        if loops < 1:
            raise ValueError("loops must be positive")
        if port is not None:
            self.endpoint = tcp_endpoint(target, port)
        else:
            self.endpoint = parse_endpoint(target)
        self.address = self.endpoint.sockaddr()
        self.connect_burst = max(1, connect_burst)
        self.connect_timeout = connect_timeout
        self.epoch = time.monotonic()
        self._shards = [_Shard(self, i) for i in range(loops)]
        self._scenarios: list[Scenario] = []
        self._started = False
        self._stopped = False
        self._stop_event = threading.Event()
        self._released = threading.Event()
        self._done_event = threading.Event()
        self._idle_cond = threading.Event()
        self._crashed = False
        self.completed_at: float | None = None

    # ------------------------------------------------------------ lifecycle
    def add_clients(self, scenarios) -> None:
        """Register one client per scenario instance (before ``start``)."""
        if self._started:
            raise RuntimeError("add_clients() must precede start()")
        for scenario in scenarios:
            cid = len(self._scenarios)
            self._scenarios.append(scenario)
            shard = self._shards[cid % len(self._shards)]
            shard.clients.append(_Client(cid, scenario))

    def start(self) -> None:
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        if not self._scenarios:
            self.completed_at = time.monotonic()
            self._done_event.set()
            return
        for shard in self._shards:
            shard.start()
        log.info("swarm started: %d clients on %d loops -> %s",
                 len(self._scenarios), len(self._shards), self.endpoint)

    def release(self) -> float:
        """Open the start barrier for parked clients; returns the release
        timestamp (``time.monotonic()``) for timed-window accounting."""
        now = time.monotonic()
        self._released.set()
        return now

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every client finished; False on timeout."""
        return self._done_event.wait(timeout)

    def wait_barrier(self, expected: int | None = None,
                     timeout: float = 60.0) -> int:
        """Block until ``expected`` clients (default: all of them) are
        parked at the start barrier or already finished; returns the
        number parked.  Raises :class:`TimeoutError` otherwise."""
        expected = len(self._scenarios) if expected is None else expected
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.parked_count + self.finished_count >= expected:
                return self.parked_count
            time.sleep(0.05)
        raise TimeoutError(
            f"only {self.parked_count}/{expected} clients reached the barrier"
        )

    def stop(self) -> None:
        """Join the shards and close every remaining socket and selector."""
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopped = True
        self._stop_event.set()
        self._released.set()  # parked clients must not block teardown
        self._idle_cond.set()
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join(timeout=30.0)
                if shard.thread.is_alive():  # pragma: no cover - last resort
                    log.error("shard %d failed to exit", shard.index)
                    shard._close_all()

    def run(self, timeout: float | None = None) -> MetricsSnapshot:
        """``start()`` + ``wait()`` + ``stop()``; returns merged metrics."""
        self.start()
        try:
            self.wait(timeout)
        finally:
            self.stop()
        return self.snapshot()

    # ------------------------------------------------------------ telemetry
    def snapshot(self) -> MetricsSnapshot:
        return Metrics.merge(shard.metrics for shard in self._shards)

    def issued(self) -> dict[str, int]:
        """Requests issued per op label, across all shards.  Like
        ``snapshot()``, callable mid-run for live telemetry."""
        totals: dict[str, int] = {}
        for shard in self._shards:
            while True:
                try:
                    items = list(shard.issued.items())
                    break
                except RuntimeError:  # op label appeared mid-copy; retry
                    continue
            for op, n in items:
                totals[op] = totals.get(op, 0) + n
        return totals

    @property
    def client_count(self) -> int:
        return len(self._scenarios)

    @property
    def finished_count(self) -> int:
        return sum(shard.finished for shard in self._shards)

    @property
    def connected_count(self) -> int:
        return sum(shard.connected for shard in self._shards)

    @property
    def parked_count(self) -> int:
        # A parked client that subsequently died (reset, idle-reaped)
        # stays in the shard's parked list until release but is no longer
        # _PARKED — counting it would double-count against finished_count
        # and open the barrier early.
        return sum(
            sum(1 for client in shard.parked if client.state is _PARKED)
            for shard in self._shards
        )

    @property
    def scenarios(self) -> list[Scenario]:
        return list(self._scenarios)

    @property
    def crashed(self) -> bool:
        return self._crashed

    def open_fds(self) -> list[int]:
        """Sockets the swarm currently holds open (empty after ``stop``)."""
        fds = []
        for shard in self._shards:
            for client in shard.clients:
                if client.sock is not None and client.sock.fileno() >= 0:
                    fds.append(client.sock.fileno())
        return fds

    # ------------------------------------------------------- shard callbacks
    def _note_client_done(self) -> None:
        if self.finished_count >= len(self._scenarios) \
                and not self._done_event.is_set():
            self.completed_at = time.monotonic()
            self._done_event.set()

    def _note_shard_idle(self) -> None:
        # A shard with all clients finished parks cheaply between ticks.
        pass

    def _idle_wait(self, timeout: float) -> None:
        self._idle_cond.wait(timeout)

    def _note_shard_crash(self) -> None:
        self._crashed = True
        self.completed_at = time.monotonic()
        self._done_event.set()  # never leave wait() hanging
