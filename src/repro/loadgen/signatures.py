"""Signature-blob generators for swarm scenarios.

The benign generator is the paper's Fig. 2 load shape — random two-thread
signatures, each unique, so the database really grows under load.  The
adversarial generators reuse the §IV-B attacker from :mod:`repro.sim.attack`
so the swarm's attack mixes send exactly the signatures the paper's threat
model describes: forged critical-path pairs whose suffixes overlap (what
the server's adjacency check §III-C2 exists to reject) and off-path
phantoms (the flooding control).
"""

from __future__ import annotations

import random

from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ThreadSignature,
)
from repro.sim.attack import (
    forge_critical_path_signatures,
    forge_off_path_signatures,
)


def random_signature(rng: random.Random) -> DeadlockSignature:
    """A random two-thread signature (what the paper's load generator sends)."""

    def stack(tag: int) -> CallStack:
        return CallStack(
            Frame(
                class_name=f"load.C{rng.randrange(10_000)}",
                method=f"m{rng.randrange(100)}",
                line=rng.randrange(1, 5_000),
                code_hash=f"{rng.getrandbits(64):016x}",
            )
            for _ in range(6)
        )

    threads = (
        ThreadSignature(outer=stack(0), inner=stack(1)),
        ThreadSignature(outer=stack(2), inner=stack(3)),
    )
    return DeadlockSignature(threads=threads, origin="remote")


def random_signature_blobs(count: int, seed: int = 0) -> list[bytes]:
    """``count`` serialized random signatures (benign steady-state load)."""
    rng = random.Random(seed)
    return [random_signature(rng).to_bytes() for _ in range(count)]


def _sample_stacks(rng: random.Random, count: int, depth: int) -> list[CallStack]:
    """Acquisition stacks "sampled from the victim workload": distinct
    stacks that share a common tail, so their depth-``depth`` suffixes
    overlap pairwise — the §III-C2 adjacency shape."""
    shared_tail = [
        Frame(
            class_name="victim.app.Service",
            method=f"critical_{rng.randrange(1_000_000)}",
            line=rng.randrange(1, 5_000),
            code_hash=f"{rng.getrandbits(64):016x}",
        )
        for _ in range(depth - 1)
    ]
    stacks = []
    for i in range(count):
        top = Frame(
            class_name="victim.app.Handler",
            method=f"handle_{i}",
            line=rng.randrange(1, 5_000),
            code_hash=f"{rng.getrandbits(64):016x}",
        )
        stacks.append(CallStack([*shared_tail, top]))
    return stacks


def adjacent_spam_blobs(count: int, seed: int = 0, depth: int = 5) -> list[bytes]:
    """Forged critical-path signatures built from the *fewest* sample
    stacks that yield ``count`` pairs.  Each signature's top-frame set is a
    2-subset of ``k`` sampled tops, so any two signatures that share a
    sampled stack are mutually adjacent (§III-C2): of everything one user
    sends, the server can accept at most ``k // 2`` (a disjoint pairing)
    and must reject the rest as ``adjacent``."""
    rng = random.Random(seed)
    k = 3
    while k * (k - 1) // 2 < count:
        k += 1
    stacks = _sample_stacks(rng, k, depth)
    signatures = forge_critical_path_signatures(
        stacks, count=count, depth=depth, seed=seed
    )
    return [signature.to_bytes() for signature in signatures]


def off_path_flood_blobs(count: int, seed: int = 0, depth: int = 5) -> list[bytes]:
    """Distinct phantom signatures (locations the app never runs): the
    quota-flooding payload — each one validates, so only the per-user
    daily quota (§III-C1) stops the flood."""
    signatures = forge_off_path_signatures(count=count, depth=depth, seed=seed)
    return [signature.to_bytes() for signature in signatures]


def forged_tokens(count: int, seed: int = 0) -> list[str]:
    """Well-formed-looking but undecryptable user-ID tokens."""
    rng = random.Random(seed)
    # Token ciphertext is AES-block-aligned hex; 48 random bytes parse as
    # ciphertext but fail authentication/padding on decryption.
    return [rng.getrandbits(48 * 8).to_bytes(48, "big").hex() for _ in range(count)]
