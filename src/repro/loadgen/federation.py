"""Federated swarm: one coordinator, N worker processes, one report.

A single swarm process tops out around 10k simulated clients: the
container caps every process at 20,000 file descriptors and each held
client costs one socket.  Federation shards the swarm across worker
*processes*, each with its own FD budget, and keeps the benchmark
semantics of the single-process engine:

* the coordinator forks ``procs`` workers (``python -m repro.loadgen
  --worker``), each running its share of the clients against the same
  server endpoint (UNIX-socket transport for the big sweeps);
* every worker ramps up and parks its clients at the engine's start
  barrier, then reports ``ready`` on its stdout control channel;
* once *all* workers are ready the coordinator writes ``release`` to
  every worker's stdin — the whole federation starts its timed window
  together (the same Park/release contract the in-process barrier has);
* each worker streams back a ``result`` event carrying its merged metrics
  snapshot in full-fidelity wire form (raw histogram buckets), and the
  coordinator folds them with :func:`repro.loadgen.metrics.merge_snapshots`
  — merged percentiles equal percentiles of the pooled samples.

**Rolling cohorts** (``waves > 1``) rerun the spawn/park/release cycle
with fresh worker processes and fresh scenario seeds per wave: every wave
is a disjoint cohort of client identities (each session obtains its own
server-issued token), so ``waves x clients`` distinct client sessions
cycle through the sweep while concurrency stays bounded by one wave —
how the Fig. 2 benchmark approximates the paper's 100k-client x-axis on
a 20k-FD box.

Control protocol (line-delimited JSON on the worker's stdout, bare
commands on its stdin)::

    worker  → {"event": "ready", "parked": N, "connected": N, ...}
    coord   → release\\n
    worker  → {"event": "result", "ok": true, "snapshot": {...}, ...}
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.loadgen.metrics import MetricsSnapshot, merge_snapshots
from repro.util.logging import get_logger

log = get_logger("loadgen.federation")

#: Directory to put on the workers' PYTHONPATH (wherever this ``repro``
#: package was imported from, so coordinator and workers run the same code
#: even without an installed package).
_SRC_ROOT = str(Path(__file__).resolve().parent.parent.parent)

_RELEASE = "release"
#: Grace beyond the run timeout before a worker process is killed.
_REAP_GRACE = 10.0


def _emit(stream, payload: dict) -> None:
    stream.write(json.dumps(payload, sort_keys=True) + "\n")
    stream.flush()


# --------------------------------------------------------------- worker side
def worker_main(args) -> int:
    """``python -m repro.loadgen --worker``: one federation worker.

    Builds its scenario mix with the barrier enabled (every client parks
    right after connecting), reports ``ready``, waits for ``release`` on
    stdin, runs, and emits one ``result`` line.  Exit status mirrors the
    result's ``ok``.
    """
    from repro.loadgen.engine import SwarmEngine
    from repro.loadgen.scenarios import build_mix

    out = sys.stdout
    scenarios = build_mix(args.scenario_spec, args.clients, seed=args.seed,
                          rounds=args.rounds, page_size=args.page_size,
                          park=True)
    engine = SwarmEngine(args.connect, loops=args.loops,
                         connect_burst=args.connect_burst)
    engine.add_clients(scenarios)
    engine.start()
    released_at = None
    try:
        try:
            engine.wait_barrier(timeout=args.timeout)
        except TimeoutError as exc:
            _emit(out, {"event": "abort", "reason": str(exc)})
            return 1
        held = engine.connected_count
        _emit(out, {
            "event": "ready",
            "parked": engine.parked_count,
            "connected": held,
            "finished": engine.finished_count,
        })
        command = sys.stdin.readline()
        if command.strip() != _RELEASE:
            _emit(out, {"event": "abort",
                        "reason": f"expected release, got {command!r}"})
            return 1
        released_at = engine.release()
        finished = engine.wait(timeout=args.timeout)
    finally:
        engine.stop()
    completed_at = engine.completed_at or time.monotonic()
    snapshot = engine.snapshot()
    snapshot.rebase_series(int(released_at - engine.epoch))
    aborted = sum(1 for scenario in scenarios if scenario.failed)
    result = {
        "event": "result",
        "ok": bool(finished and not engine.crashed and not aborted
                   and not snapshot.error_count),
        "clients": engine.client_count,
        "finished": engine.finished_count,
        "held": held,
        "elapsed_s": round(max(0.0, completed_at - released_at), 3),
        "issued": engine.issued(),
        "errors": snapshot.error_count,
        "aborted": aborted,
        "crashed": engine.crashed,
        "timed_out": not finished,
        "snapshot": snapshot.to_wire(),
    }
    _emit(out, result)
    return 0 if result["ok"] else 1


# ---------------------------------------------------------- coordinator side
@dataclass
class WorkerResult:
    """One worker's contribution to a wave."""

    index: int
    ok: bool = False
    clients: int = 0
    finished: int = 0
    held: int = 0
    elapsed_s: float = 0.0
    issued: dict = field(default_factory=dict)
    errors: int = 0
    aborted: int = 0
    failure: str = ""
    snapshot: MetricsSnapshot = field(default_factory=MetricsSnapshot)


@dataclass
class FederationReport:
    """The merged outcome of a federated run (all waves, all workers)."""

    ok: bool
    procs: int
    waves: int
    clients_per_wave: int
    distinct_sessions: int
    held_peak: int
    elapsed_s: float
    issued: dict
    snapshot: MetricsSnapshot
    workers: list[WorkerResult]
    failures: list[str]

    @property
    def completed(self) -> int:
        return self.snapshot.completed

    @property
    def requests_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return round(self.completed / self.elapsed_s, 1)

    def to_payload(self) -> dict:
        """The ``--json`` / benchmark artifact form."""
        return {
            "mode": "federated",
            "procs": self.procs,
            "waves": self.waves,
            "clients_per_wave": self.clients_per_wave,
            "distinct_sessions": self.distinct_sessions,
            "held_peak": self.held_peak,
            "elapsed_s": round(self.elapsed_s, 3),
            "requests_per_s": self.requests_per_s,
            "issued": dict(self.issued),
            **self.snapshot.to_dict(),
            "workers": [
                {
                    "index": w.index,
                    "ok": w.ok,
                    "clients": w.clients,
                    "finished": w.finished,
                    "held": w.held,
                    "elapsed_s": w.elapsed_s,
                    "errors": w.errors,
                    "aborted": w.aborted,
                    **({"failure": w.failure} if w.failure else {}),
                }
                for w in self.workers
            ],
            **({"failures": list(self.failures)} if self.failures else {}),
        }


class _Worker:
    """Coordinator-side handle for one worker process."""

    def __init__(self, index: int, proc: subprocess.Popen):
        self.index = index
        self.proc = proc
        self.events: dict[str, dict] = {}
        self.eof = False
        self.result = WorkerResult(index=index)

    def deliver(self, message: dict) -> None:
        self.events[str(message.get("event"))] = message

    def failed(self, reason: str) -> None:
        if not self.result.failure:
            self.result.failure = reason


def _split_clients(total: int, procs: int) -> list[int]:
    base, remainder = divmod(total, procs)
    return [base + (1 if i < remainder else 0) for i in range(procs)]


def _worker_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC_ROOT + (os.pathsep + existing if existing else "")
    return env


def _spawn(index: int, clients: int, *, connect: str, scenario: str,
           rounds: int, page_size: int, loops: int, connect_burst: int,
           timeout: float, seed: int) -> _Worker:
    command = [
        sys.executable, "-u", "-m", "repro.loadgen",
        "--connect", connect,
        "--clients", str(clients),
        "--scenario", scenario,
        "--rounds", str(rounds),
        "--page-size", str(page_size),
        "--loops", str(loops),
        "--connect-burst", str(connect_burst),
        "--timeout", str(timeout),
        "--seed", str(seed),
        "--worker", "--quiet",
    ]
    proc = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=None,  # worker tracebacks surface on the coordinator's stderr
        text=True,
        bufsize=1,
        env=_worker_env(),
    )
    return _Worker(index, proc)


def _pump_events(workers: list[_Worker], wanted: str, deadline: float) -> None:
    """Read control lines until every live worker produced ``wanted`` (or
    aborted/died) or the deadline passes."""
    by_stream = {w.proc.stdout: w for w in workers}

    def pending() -> list[_Worker]:
        return [w for w in workers
                if not w.eof and wanted not in w.events
                and "abort" not in w.events]

    while pending() and time.monotonic() < deadline:
        streams = [w.proc.stdout for w in pending()]
        ready, _, _ = select.select(streams, [], [],
                                    min(0.5, max(0.01, deadline - time.monotonic())))
        for stream in ready:
            worker = by_stream[stream]
            line = stream.readline()
            if not line:
                worker.eof = True
                worker.failed("worker exited before reporting "
                              f"{wanted!r} (rc={worker.proc.poll()})")
                continue
            try:
                message = json.loads(line)
            except ValueError:
                continue  # stray non-protocol output
            worker.deliver(message)


def _reap(workers: list[_Worker]) -> None:
    for worker in workers:
        proc = worker.proc
        try:
            if proc.stdin:
                proc.stdin.close()
        except OSError:
            pass
        try:
            proc.wait(timeout=_REAP_GRACE)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            proc.kill()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
        try:
            if proc.stdout:
                proc.stdout.close()
        except OSError:
            pass


def _run_wave(wave: int, *, connect: str, procs: int, clients: int,
              scenario: str, rounds: int, page_size: int, loops: int,
              connect_burst: int, timeout: float, barrier_timeout: float,
              seed: int, on_progress=None) -> list[WorkerResult]:
    shares = _split_clients(clients, procs)
    workers = [
        _spawn(
            index, share, connect=connect, scenario=scenario, rounds=rounds,
            page_size=page_size, loops=loops, connect_burst=connect_burst,
            timeout=timeout, seed=seed + wave * procs + index,
        )
        for index, share in enumerate(shares)
    ]
    try:
        _pump_events(workers, "ready", time.monotonic() + barrier_timeout)
        all_ready = all("ready" in w.events for w in workers)
        if all_ready:
            if on_progress is not None:
                on_progress(wave, "barrier", sum(
                    w.events["ready"].get("connected", 0) for w in workers
                ))
            for worker in workers:
                try:
                    worker.proc.stdin.write(_RELEASE + "\n")
                    worker.proc.stdin.flush()
                except OSError as exc:  # pragma: no cover - worker died racing
                    worker.failed(f"release failed: {exc}")
            _pump_events(workers, "result",
                         time.monotonic() + timeout + _REAP_GRACE)
        else:
            for worker in workers:
                if "ready" not in worker.events:
                    worker.failed(
                        worker.events.get("abort", {}).get(
                            "reason", "no ready event before barrier timeout"
                        )
                    )
                worker.proc.kill()
    finally:
        _reap(workers)

    results = []
    for worker in workers:
        result = worker.result
        message = worker.events.get("result")
        ready = worker.events.get("ready", {})
        if message is not None:
            result.ok = bool(message.get("ok"))
            result.clients = int(message.get("clients", 0))
            result.finished = int(message.get("finished", 0))
            result.held = int(message.get("held", ready.get("connected", 0)))
            result.elapsed_s = float(message.get("elapsed_s", 0.0))
            result.issued = dict(message.get("issued", {}))
            result.errors = int(message.get("errors", 0))
            result.aborted = int(message.get("aborted", 0))
            result.snapshot = MetricsSnapshot.from_wire(
                message.get("snapshot", {})
            )
            if not result.ok and not result.failure:
                result.failure = (
                    f"worker {worker.index}: errors={result.errors} "
                    f"aborted={result.aborted} "
                    f"timed_out={message.get('timed_out')}"
                )
        elif not result.failure:
            result.failure = worker.events.get("abort", {}).get(
                "reason", "no result from worker"
            )
        results.append(result)
    return results


def federated_run(*, connect: str, procs: int, clients: int,
                  scenario: str = "steady", rounds: int = 5,
                  page_size: int = 256, loops: int = 2,
                  connect_burst: int = 128, timeout: float = 120.0,
                  barrier_timeout: float | None = None, seed: int = 0,
                  waves: int = 1, on_progress=None) -> FederationReport:
    """Run ``clients`` swarm clients split over ``procs`` worker processes
    against the server at ``connect`` (any endpoint URL), ``waves`` times
    with disjoint cohorts, and merge everything into one report.

    ``elapsed_s`` is the sum over waves of the slowest worker's timed
    window (barrier-release to last completion), i.e. the active load
    window — process spawn and connection ramp are untimed, like the
    single-process benchmarks' setup phase.
    """
    if procs < 1:
        raise ValueError("procs must be positive")
    if waves < 1:
        raise ValueError("waves must be positive")
    if clients < procs:
        procs = max(1, clients)  # no point forking idle workers
    barrier_timeout = timeout if barrier_timeout is None else barrier_timeout

    all_results: list[WorkerResult] = []
    held_peak = 0
    elapsed = 0.0
    waves_run = 0
    for wave in range(waves):
        waves_run = wave + 1
        if on_progress is not None:
            on_progress(wave, "spawn", procs)
        results = _run_wave(
            wave, connect=connect, procs=procs, clients=clients,
            scenario=scenario, rounds=rounds, page_size=page_size,
            loops=loops, connect_burst=connect_burst, timeout=timeout,
            barrier_timeout=barrier_timeout, seed=seed,
            on_progress=on_progress,
        )
        all_results.extend(results)
        held_peak = max(held_peak, sum(r.held for r in results))
        elapsed += max((r.elapsed_s for r in results), default=0.0)
        if any(r.failure or not r.ok for r in results):
            # A dead server or wedged worker would fail every remaining
            # wave the same slow way; report what happened instead.
            log.error("wave %d failed; skipping %d remaining wave(s)",
                      wave, waves - wave - 1)
            break

    snapshot = merge_snapshots(r.snapshot for r in all_results)
    issued: dict[str, int] = {}
    for result in all_results:
        for op, n in result.issued.items():
            issued[op] = issued.get(op, 0) + n
    failures = [r.failure for r in all_results if r.failure]
    return FederationReport(
        ok=(all(r.ok for r in all_results) and not failures
            and waves_run == waves),
        procs=procs,
        waves=waves_run,
        clients_per_wave=clients,
        distinct_sessions=clients * waves_run,
        held_peak=held_peak,
        elapsed_s=elapsed,
        issued=issued,
        snapshot=snapshot,
        workers=all_results,
        failures=failures,
    )
