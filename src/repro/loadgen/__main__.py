"""Run a Communix client swarm from the command line.

Usage::

    # Against a running server (TCP or UNIX endpoint URL):
    python -m repro.loadgen --connect tcp://127.0.0.1:7199 --clients 500 \
        --scenario "cold=1,steady=2,churn=1" --rounds 5

    # Self-contained smoke (spins an in-process server, preloads it):
    python -m repro.loadgen --serve --preload 1000 --clients 200 \
        --scenario mix --timeout 60 --json swarm.json

    # Federated: 2 worker processes sharing one UNIX-socket server,
    # barrier-synchronized, metrics merged by the coordinator:
    python -m repro.loadgen --serve --addr unix:///tmp/communix.sock \
        --procs 2 --clients 20000 --scenario steady --rounds 1

``--scenario`` takes one scenario name (``cold``, ``steady``, ``churn``,
``forged``, ``adjacent``, ``flood``, ``rampflood``), a weighted mix such as
``"cold=1,steady=2"``, or the shorthand ``mix`` (an even benign+attack
blend).  ``--procs N`` forks N worker processes (each with its own FD
budget — how sweeps pass the 20k-FD per-process cap); ``--waves M``
reruns the swarm M times with disjoint client cohorts (rolling-cohort
mode).  Exit status is non-zero when clients error, any scenario aborts,
or the run does not finish inside ``--timeout``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.loadgen import federation
from repro.loadgen.engine import SwarmEngine
from repro.loadgen.scenarios import SCENARIO_NAMES, build_mix
from repro.loadgen.signatures import random_signature
from repro.net import EndpointError, parse_endpoint
from repro.util.logging import enable_console_logging

#: The ``--scenario mix`` shorthand: mostly benign traffic with every
#: attack class represented (the paper's §III-C threat mix).
DEFAULT_MIX = "cold=2,steady=4,churn=2,forged=1,adjacent=1,flood=1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Event-driven Communix client swarm (load generator)",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--connect", metavar="URL",
        help="drive an already-running Communix server "
             "(tcp://HOST:PORT, unix:///PATH, or legacy HOST:PORT)",
    )
    target.add_argument(
        "--serve", action="store_true",
        help="spin up an in-process server and drive it (self-contained)",
    )
    parser.add_argument(
        "--addr", metavar="URL", default="tcp://127.0.0.1:0",
        help="with --serve: the endpoint the in-process server listens on",
    )
    parser.add_argument("--preload", type=int, default=0,
                        help="with --serve: signatures preloaded into the "
                             "database before the swarm starts")
    parser.add_argument("--idle-timeout", type=float, default=600.0,
                        help="with --serve: server idle-connection sweep; "
                             "must exceed the barrier ramp, since parked "
                             "clients hold silent connections")
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--scenario", default="steady",
                        help=f"name ({', '.join(SCENARIO_NAMES)}), weighted "
                             f"mix like 'cold=1,steady=2', or 'mix'")
    parser.add_argument("--rounds", type=int, default=5,
                        help="ops per client (ADDs for steady/attack "
                             "scenarios, cycles for churn)")
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument("--loops", type=int, default=2,
                        help="swarm event-loop threads (per process)")
    parser.add_argument("--connect-burst", type=int, default=128,
                        help="max in-flight dials per loop")
    parser.add_argument("--procs", type=int, default=1,
                        help="worker processes; >1 federates the swarm "
                             "across processes behind one start barrier")
    parser.add_argument("--waves", type=int, default=1,
                        help="rolling-cohort waves: rerun the swarm this "
                             "many times with disjoint client identities")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH",
                        help="write the metrics snapshot as JSON")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--worker", action="store_true",
                        help=argparse.SUPPRESS)  # federation-internal mode
    return parser


def _preload(server, count: int, seed: int) -> None:
    rng = random.Random(seed)
    db = server.database
    uid = 0
    while len(db) < count:
        signature = random_signature(rng)
        if db.contains(signature.sig_id):
            continue
        db.append(signature, signature.to_bytes(), uid)
        uid += 1


def _print_op_table(issued, snapshot) -> None:
    header = (f"{'op':<12} {'issued':>8} {'ok':>8} {'err':>6} "
              f"{'mean_ms':>9} {'p50_ms':>8} {'p95_ms':>8} {'p99_ms':>8}")
    print(header)
    print("-" * len(header))
    for op in sorted(set(issued) | set(snapshot.histograms) | set(snapshot.errors)):
        summary = (snapshot.histograms[op].summary()
                   if op in snapshot.histograms else
                   {"count": 0, "mean_ms": 0, "p50_ms": 0,
                    "p95_ms": 0, "p99_ms": 0})
        print(f"{op:<12} {issued.get(op, 0):>8} {summary['count']:>8} "
              f"{snapshot.errors.get(op, 0):>6} {summary['mean_ms']:>9} "
              f"{summary['p50_ms']:>8} {summary['p95_ms']:>8} "
              f"{summary['p99_ms']:>8}")


def _print_summary(snapshot, elapsed: float, engine: SwarmEngine) -> None:
    issued = engine.issued()
    print(f"\nclients: {engine.client_count}  finished: "
          f"{engine.finished_count}  wall: {elapsed:.2f}s  "
          f"throughput: {snapshot.completed / elapsed:.0f} req/s"
          if elapsed > 0 else "")
    _print_op_table(issued, snapshot)


def _print_federated_summary(report) -> None:
    print(f"\nfederated: {report.procs} procs x {report.waves} wave(s)  "
          f"sessions: {report.distinct_sessions}  "
          f"held peak: {report.held_peak}  "
          f"window: {report.elapsed_s:.2f}s  "
          f"throughput: {report.requests_per_s:.0f} req/s")
    _print_op_table(report.issued, report.snapshot)
    for failure in report.failures:
        print(f"worker failure: {failure}", file=sys.stderr)


def _serve(args):
    """Start the in-process server for --serve; returns the transport."""
    from repro.server.server import CommunixServer
    from repro.server.transport import ServerTransport

    server = CommunixServer()
    if args.preload:
        _preload(server, args.preload, args.seed)
    transport = ServerTransport(server, endpoints=[args.addr],
                                accept_backlog=4096,
                                idle_timeout=args.idle_timeout)
    transport.start()
    return transport


def _run_federated(args, spec: str) -> int:
    transport = None
    if args.serve:
        transport = _serve(args)
        connect = transport.bound_endpoints[0].url()
    else:
        connect = args.connect

    def progress(wave, stage, count):
        if not args.quiet:
            if stage == "spawn":
                print(f"wave {wave}: spawning {count} workers", file=sys.stderr)
            else:
                print(f"wave {wave}: barrier up, {count} clients connected",
                      file=sys.stderr)

    try:
        report = federation.federated_run(
            connect=connect, procs=args.procs, clients=args.clients,
            scenario=spec, rounds=args.rounds, page_size=args.page_size,
            loops=args.loops, connect_burst=args.connect_burst,
            timeout=args.timeout, seed=args.seed, waves=args.waves,
            on_progress=progress,
        )
    finally:
        if transport is not None:
            transport.stop()

    if not args.quiet:
        _print_federated_summary(report)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_payload(), handle, indent=2)
            handle.write("\n")
    if not report.ok:
        print(f"FAILED: {len(report.failures)} worker failure(s)",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.quiet:
        enable_console_logging()

    spec = DEFAULT_MIX if args.scenario == "mix" else args.scenario
    if "=" not in spec and "," not in spec:
        spec = f"{spec}=1"
    args.scenario_spec = spec

    if args.connect is not None:
        try:
            parse_endpoint(args.connect)
        except EndpointError as exc:
            print(f"--connect: {exc}", file=sys.stderr)
            return 2
    if args.serve:
        try:
            parse_endpoint(args.addr)
        except EndpointError as exc:
            print(f"--addr: {exc}", file=sys.stderr)
            return 2

    if args.worker:
        if not args.connect:
            print("--worker requires --connect", file=sys.stderr)
            return 2
        return federation.worker_main(args)

    if args.procs > 1 or args.waves > 1:
        return _run_federated(args, spec)

    transport = None
    if args.serve:
        transport = _serve(args)
        target = transport.bound_endpoints[0]
    else:
        target = parse_endpoint(args.connect)

    scenarios = build_mix(spec, args.clients, seed=args.seed,
                          rounds=args.rounds, page_size=args.page_size)

    engine = SwarmEngine(target, loops=args.loops,
                         connect_burst=args.connect_burst)
    engine.add_clients(scenarios)
    started = time.monotonic()
    try:
        engine.start()
        finished = engine.wait(args.timeout)
    finally:
        engine.stop()
        if transport is not None:
            transport.stop()
    elapsed = (engine.completed_at or time.monotonic()) - started
    snapshot = engine.snapshot()

    if not args.quiet:
        _print_summary(snapshot, elapsed, engine)
    if args.json:
        payload = {
            "clients": engine.client_count,
            "finished": engine.finished_count,
            "scenario": spec,
            "elapsed_s": round(elapsed, 3),
            "requests_per_s": round(snapshot.completed / elapsed, 1)
            if elapsed > 0 else 0.0,
            "issued": engine.issued(),
            **snapshot.to_dict(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    aborted = [s for s in scenarios if s.failed]
    if not finished:
        print(f"TIMEOUT: {engine.client_count - engine.finished_count} "
              f"clients unfinished after {args.timeout}s", file=sys.stderr)
        return 1
    if engine.crashed or aborted or snapshot.error_count:
        print(f"FAILED: crashed={engine.crashed} aborted={len(aborted)} "
              f"errors={snapshot.error_count}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
