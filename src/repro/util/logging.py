"""Library logging setup.

The library never prints; it logs under the ``repro`` namespace and installs
a ``NullHandler`` so that applications embedding it stay silent unless they
configure logging themselves.
"""

from __future__ import annotations

import logging

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the library namespace.

    ``get_logger("server")`` yields ``repro.server``; passing a fully
    qualified ``repro.*`` name returns it unchanged.
    """
    if name.startswith(_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Convenience for examples: route library logs to stderr."""
    logger = logging.getLogger(_ROOT)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
