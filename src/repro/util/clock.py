"""Clock abstraction used throughout the framework.

Every component that needs wall-clock time (the server's daily quota, the
client's download period, Dimmunix's false-positive detector, the
protection-time simulator) receives a :class:`Clock` instead of calling
``time.time()`` directly.  Production code uses :class:`SystemClock`; tests
and simulations use :class:`ManualClock` to advance time deterministically.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface for time sources.

    Concrete clocks provide :meth:`now` (seconds, arbitrary epoch) and
    :meth:`sleep`.
    """

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Real wall-clock time backed by :func:`time.monotonic` offsets.

    ``now()`` returns UNIX time so that persisted timestamps are meaningful
    across processes.
    """

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class ManualClock(Clock):
    """A clock that only moves when told to.

    ``sleep`` advances the clock instead of blocking, which lets tests run
    day-granularity scenarios (e.g. the server's 10-signatures-per-day quota)
    instantly.  The clock is thread-safe: waiters blocked in :meth:`sleep`
    on a real condition variable are released when another thread advances
    time past their deadline.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def advance(self, seconds: float) -> None:
        """Move time forward and wake any waiters."""
        if seconds < 0:
            raise ValueError("cannot move time backwards")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def wait_until(self, deadline: float, timeout: float = 5.0) -> bool:
        """Block the *calling OS thread* until the clock reaches ``deadline``.

        Used by tests that coordinate a background component with manual
        time.  Returns ``False`` if the real ``timeout`` elapses first.
        """
        end = time.monotonic() + timeout
        with self._cond:
            while self._now < deadline:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True
