"""Exception hierarchy for the Communix reproduction.

All library exceptions derive from :class:`CommunixError` so that callers can
catch framework failures with a single ``except`` clause while still being
able to distinguish the subsystem that raised them.
"""

from __future__ import annotations


class CommunixError(Exception):
    """Base class for every error raised by this library."""


class ValidationError(CommunixError):
    """A signature failed server- or client-side validation."""


class RateLimitExceeded(ValidationError):
    """A user exceeded the server's per-day signature quota (§III-C1)."""


class CryptoError(CommunixError):
    """AES / user-ID token failure (bad key size, corrupt token, padding)."""


class ProtocolError(CommunixError):
    """Malformed or truncated message on the client/server wire protocol."""


class HistoryError(CommunixError):
    """The persistent deadlock history could not be read or written."""


class DeadlockError(CommunixError):
    """Raised in a victim thread when Dimmunix breaks a detected deadlock.

    The real Dimmunix leaves the JVM deadlocked after capturing the
    signature; this reproduction optionally designates a victim so that test
    programs and examples can terminate (see
    ``DimmunixConfig.recovery_policy``).  The captured signature is available
    on the exception.
    """

    def __init__(self, message: str, signature=None):
        super().__init__(message)
        self.signature = signature


class AvoidanceTimeout(CommunixError):
    """A thread waited longer than the configured bound in avoidance."""
