"""Canonical JSON encoding and stable content hashing.

Signatures are content-addressed: two machines that independently produce the
same deadlock signature must derive the same signature ID.  That requires a
*canonical* byte encoding — sorted keys, no whitespace, UTF-8 — which this
module provides, together with a SHA-256 helper used for signature IDs and
bytecode hashes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(obj: Any) -> bytes:
    """Encode ``obj`` as canonical JSON bytes (sorted keys, compact)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def from_canonical_json(data: bytes | str) -> Any:
    """Decode JSON previously produced by :func:`canonical_json`."""
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    return json.loads(data)


def stable_hash(data: bytes | str, length: int = 16) -> str:
    """Hex SHA-256 of ``data``, truncated to ``length`` hex characters.

    16 hex chars (64 bits) is plenty for the signature and bytecode ID spaces
    exercised here while keeping serialized signatures compact (the paper
    reports 1.7 KB per signature; ours are the same order of magnitude).
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()[:length]
