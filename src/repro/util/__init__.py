"""Shared utilities: clocks, canonical encoding, errors, and logging.

These helpers are deliberately small and dependency-free; every other
subpackage builds on them.  The clock abstraction in particular is what makes
the time-sensitive parts of the system (rate limiting, false-positive
detection, the periodic client, the protection-time simulation) fully
deterministic under test.
"""

from repro.util.clock import Clock, ManualClock, SystemClock
from repro.util.encoding import canonical_json, from_canonical_json, stable_hash
from repro.util.errors import (
    CommunixError,
    CryptoError,
    DeadlockError,
    HistoryError,
    ProtocolError,
    RateLimitExceeded,
    ValidationError,
)
from repro.util.logging import get_logger

__all__ = [
    "Clock",
    "ManualClock",
    "SystemClock",
    "canonical_json",
    "from_canonical_json",
    "stable_hash",
    "CommunixError",
    "CryptoError",
    "DeadlockError",
    "HistoryError",
    "ProtocolError",
    "RateLimitExceeded",
    "ValidationError",
    "get_logger",
]
