"""The persistent deadlock history (paper §II-A).

Dimmunix "extracts the signature of the deadlock, stores it in a persistent
history, then alters future thread schedules [...] to avoid execution flows
matching the signature".  The history is the single source of truth shared
by the avoidance module (which indexes it by outer-top location), the
Communix agent (which adds validated remote signatures and performs merges),
and the plugin (which uploads newly added local signatures).

Thread-safety: every mutation happens under an internal lock and bumps a
``version`` counter; readers (the avoidance module) take an immutable
snapshot and rebuild their index only when the version changed, which keeps
the runtime hot path cheap.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable, Iterable

from repro.core.signature import DeadlockSignature
from repro.util.errors import HistoryError
from repro.util.logging import get_logger

log = get_logger("core.history")


class DeadlockHistory:
    """An in-memory, optionally file-backed set of deadlock signatures."""

    def __init__(self, path: str | os.PathLike | None = None,
                 autosave: bool = True):
        self._path = Path(path) if path is not None else None
        self._autosave = autosave and self._path is not None
        self._lock = threading.RLock()
        self._signatures: list[DeadlockSignature] = []
        self._by_id: dict[str, DeadlockSignature] = {}
        self._by_bug: dict[tuple, list[DeadlockSignature]] = {}
        self.version = 0
        self._listeners: list[Callable[[DeadlockSignature], None]] = []
        if self._path is not None and self._path.exists():
            self.load(self._path)

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        with self._lock:
            return len(self._signatures)

    def __contains__(self, sig: DeadlockSignature) -> bool:
        with self._lock:
            return sig.sig_id in self._by_id

    def snapshot(self) -> tuple[DeadlockSignature, ...]:
        """An immutable view for lock-free iteration by readers."""
        with self._lock:
            return tuple(self._signatures)

    def get(self, sig_id: str) -> DeadlockSignature | None:
        with self._lock:
            return self._by_id.get(sig_id)

    def same_bug(self, sig: DeadlockSignature) -> list[DeadlockSignature]:
        """Existing signatures with the same bug key (§III-D merge targets)."""
        with self._lock:
            return list(self._by_bug.get(sig.bug_key, ()))

    # ----------------------------------------------------------- mutation
    def add(self, sig: DeadlockSignature) -> bool:
        """Add a signature; returns False (and does nothing) on duplicates."""
        with self._lock:
            if sig.sig_id in self._by_id:
                return False
            self._signatures.append(sig)
            self._by_id[sig.sig_id] = sig
            self._by_bug.setdefault(sig.bug_key, []).append(sig)
            self.version += 1
            listeners = list(self._listeners)
        log.info("history: added signature %s (origin=%s)", sig.sig_id, sig.origin)
        if self._autosave:
            self.save()
        for listener in listeners:
            listener(sig)
        return True

    def replace(self, old: DeadlockSignature, new: DeadlockSignature) -> bool:
        """Swap ``old`` for ``new`` (generalization merges, §III-D)."""
        with self._lock:
            if old.sig_id not in self._by_id:
                return False
            stored_old = self._by_id[old.sig_id]
            if new.sig_id in self._by_id and new.sig_id != old.sig_id:
                # The merge result already exists; just drop the old entry.
                self._signatures.remove(stored_old)
                del self._by_id[old.sig_id]
                self._unindex_bug(stored_old)
            else:
                index = self._signatures.index(stored_old)
                self._signatures[index] = new
                del self._by_id[old.sig_id]
                self._unindex_bug(stored_old)
                self._by_id[new.sig_id] = new
                self._by_bug.setdefault(new.bug_key, []).append(new)
            self.version += 1
        if self._autosave:
            self.save()
        return True

    def remove(self, sig_id: str) -> bool:
        with self._lock:
            sig = self._by_id.pop(sig_id, None)
            if sig is None:
                return False
            self._signatures.remove(sig)
            self._unindex_bug(sig)
            self.version += 1
        if self._autosave:
            self.save()
        return True

    def clear(self) -> None:
        with self._lock:
            self._signatures.clear()
            self._by_id.clear()
            self._by_bug.clear()
            self.version += 1

    def _unindex_bug(self, sig: DeadlockSignature) -> None:
        bucket = self._by_bug.get(sig.bug_key)
        if bucket is None:
            return
        bucket[:] = [s for s in bucket if s.sig_id != sig.sig_id]
        if not bucket:
            del self._by_bug[sig.bug_key]

    # ----------------------------------------------------------- listeners
    def add_listener(self, callback: Callable[[DeadlockSignature], None]) -> None:
        """Register a callback invoked (outside the lock) for each added
        signature — the Communix plugin uses this to upload new local ones."""
        with self._lock:
            self._listeners.append(callback)

    # --------------------------------------------------------- persistence
    def save(self, path: str | os.PathLike | None = None) -> None:
        target = Path(path) if path is not None else self._path
        if target is None:
            raise HistoryError("no history path configured")
        with self._lock:
            records = [
                {"origin": s.origin, "signature": s.encode()}
                for s in self._signatures
            ]
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "entries": records}, fh)
        os.replace(tmp, target)

    def load(self, path: str | os.PathLike) -> int:
        """Load signatures from ``path``, merging into the current set."""
        target = Path(path)
        try:
            with open(target, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            raise HistoryError(f"cannot read history {target}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise HistoryError(f"unsupported history format in {target}")
        loaded = 0
        autosave = self._autosave
        self._autosave = False  # avoid rewriting the file per entry
        try:
            for record in payload.get("entries", []):
                try:
                    sig = DeadlockSignature.decode(
                        record["signature"], origin=record.get("origin", "local")
                    )
                except Exception as exc:
                    raise HistoryError(f"corrupt history entry: {exc}") from exc
                if self.add(sig):
                    loaded += 1
        finally:
            self._autosave = autosave
        return loaded

    def merge_from(self, signatures: Iterable[DeadlockSignature]) -> int:
        added = 0
        for sig in signatures:
            if self.add(sig):
                added += 1
        return added
