"""The local signature repository (paper §III-B).

The Communix *client* downloads new signatures from the server into this
per-machine repository; the Communix *agent* inspects it at application
startup.  Two invariants from the paper:

* downloads are **incremental** — the repository remembers the server index
  it has reached, and the client only requests what is missing (``GET(n+1)``);
* inspection is **incremental per application** — every signature is
  analyzed only once per application, so the repository keeps a cursor for
  each application key, plus the set of signatures that passed the hash
  check but failed the nesting check (those are re-checked when the
  application loads new classes).

Persistence is split into two files so the two update rates never pay for
each other: the main file holds the (append-only, potentially large)
signature list and is rewritten only when new signatures arrive, while a
small *sidecar* (``<path>.state``) holds the server index, per-app cursors
and pending-nesting sets — so a cursor bump after an agent inspection
serializes a few dozen bytes, not the whole repository.  Legacy
single-file (version-1) repositories still load.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.core.signature import DeadlockSignature, ORIGIN_REMOTE
from repro.util.errors import HistoryError


class LocalRepository:
    """An append-only, optionally file-backed store of remote signatures."""

    def __init__(self, path: str | os.PathLike | None = None):
        self._path = Path(path) if path is not None else None
        self._state_path = (
            self._path.with_suffix(self._path.suffix + ".state")
            if self._path is not None else None
        )
        self._lock = threading.RLock()
        self._signatures: list[DeadlockSignature] = []
        self._ids: set[str] = set()
        self._server_index = 0  # next index to request from the server
        self._cursors: dict[str, int] = {}
        self._pending_nesting: dict[str, list[int]] = {}
        if self._path is not None and self._path.exists():
            self._load()

    # ------------------------------------------------------------- content
    def __len__(self) -> int:
        with self._lock:
            return len(self._signatures)

    @property
    def server_index(self) -> int:
        """The next server database index this repository needs."""
        with self._lock:
            return self._server_index

    def append_from_server(self, signatures: list[DeadlockSignature],
                           next_server_index: int | None = None) -> int:
        """Store a batch downloaded from the server (in server order)."""
        added = 0
        with self._lock:
            for sig in signatures:
                sig = sig.with_origin(ORIGIN_REMOTE)
                if sig.sig_id in self._ids:
                    continue
                self._signatures.append(sig)
                self._ids.add(sig.sig_id)
                added += 1
            if next_server_index is not None:
                self._server_index = max(self._server_index, next_server_index)
            else:
                self._server_index += len(signatures)
        if added:
            self._save_signatures()
        self._save_state()  # server_index moves even on all-duplicate batches
        return added

    def signature_at(self, index: int) -> DeadlockSignature:
        with self._lock:
            return self._signatures[index]

    def all_signatures(self) -> list[DeadlockSignature]:
        with self._lock:
            return list(self._signatures)

    # ----------------------------------------------- per-application state
    def new_signatures_for(self, app_key: str) -> list[tuple[int, DeadlockSignature]]:
        """Signatures this application has not inspected yet."""
        with self._lock:
            cursor = self._cursors.get(app_key, 0)
            return list(enumerate(self._signatures[cursor:], start=cursor))

    def advance_cursor(self, app_key: str, new_cursor: int) -> None:
        with self._lock:
            self._cursors[app_key] = max(self._cursors.get(app_key, 0), new_cursor)
        self._save_state()

    def get_cursor(self, app_key: str) -> int:
        with self._lock:
            return self._cursors.get(app_key, 0)

    def pending_nesting(self, app_key: str) -> list[int]:
        """Indices that passed the hash check but failed the nesting check;
        to be re-checked when the application loads new classes."""
        with self._lock:
            return list(self._pending_nesting.get(app_key, []))

    def set_pending_nesting(self, app_key: str, indices: list[int]) -> None:
        with self._lock:
            self._pending_nesting[app_key] = sorted(set(indices))
        self._save_state()

    # --------------------------------------------------------- persistence
    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)

    def _save_signatures(self) -> None:
        """Rewrite the (large) signature file — only when signatures arrive."""
        if self._path is None:
            return
        with self._lock:
            payload = {
                "version": 2,
                "signatures": [s.encode() for s in self._signatures],
            }
        self._write_atomic(self._path, payload)

    def _save_state(self) -> None:
        """Rewrite only the small sidecar: server index, cursors, pending."""
        if self._state_path is None:
            return
        with self._lock:
            payload = {
                "version": 1,
                "server_index": self._server_index,
                "cursors": dict(self._cursors),
                "pending_nesting": {
                    k: list(v) for k, v in self._pending_nesting.items()
                },
            }
        self._write_atomic(self._state_path, payload)

    def _load(self) -> None:
        try:
            with open(self._path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            raise HistoryError(f"cannot read repository {self._path}: {exc}") from exc
        version = payload.get("version")
        if version not in (1, 2):
            raise HistoryError(f"unsupported repository format in {self._path}")
        for encoded in payload.get("signatures", []):
            sig = DeadlockSignature.decode(encoded, origin=ORIGIN_REMOTE)
            if sig.sig_id not in self._ids:
                self._signatures.append(sig)
                self._ids.add(sig.sig_id)
        if version == 1:
            # Legacy single-file layout: state lives inline — but if a
            # sidecar exists it is newer (every state change writes it),
            # so it wins.  Migrate to the split layout right away so the
            # inline copy can never shadow later sidecar updates again.
            sidecar = self._read_state_file()
            self._restore_state(payload if sidecar is None else sidecar)
            self._save_signatures()
            self._save_state()
            return
        self._restore_state(self._read_state_file() or {})

    def _read_state_file(self) -> dict | None:
        if self._state_path is None or not self._state_path.exists():
            return None
        try:
            with open(self._state_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError) as exc:
            raise HistoryError(
                f"cannot read repository state {self._state_path}: {exc}"
            ) from exc

    def _restore_state(self, state: dict) -> None:
        self._server_index = int(state.get("server_index", len(self._signatures)))
        self._cursors = {k: int(v) for k, v in state.get("cursors", {}).items()}
        self._pending_nesting = {
            k: [int(i) for i in v]
            for k, v in state.get("pending_nesting", {}).items()
        }
