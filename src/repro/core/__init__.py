"""Communix core: signatures, history, validation, generalization, plugin,
agent — the paper's primary contribution (§III).
"""

from repro.core.agent import AgentReport, CommunixAgent
from repro.core.generalization import Generalizer, IncorporateResult, merge_signatures
from repro.core.history import DeadlockHistory
from repro.core.plugin import CommunixPlugin, attach_hashes
from repro.core.pyapp import PythonAppAdapter
from repro.core.repository import LocalRepository
from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_LOCAL,
    ORIGIN_REMOTE,
    ThreadSignature,
)
from repro.core.validation import (
    ClientSideValidator,
    MIN_OUTER_DEPTH,
    RejectReason,
    ValidationResult,
    trim_stack,
)

__all__ = [
    "AgentReport",
    "CommunixAgent",
    "Generalizer",
    "IncorporateResult",
    "merge_signatures",
    "DeadlockHistory",
    "CommunixPlugin",
    "attach_hashes",
    "PythonAppAdapter",
    "LocalRepository",
    "CallStack",
    "DeadlockSignature",
    "Frame",
    "ORIGIN_LOCAL",
    "ORIGIN_REMOTE",
    "ThreadSignature",
    "ClientSideValidator",
    "MIN_OUTER_DEPTH",
    "RejectReason",
    "ValidationResult",
    "trim_stack",
]
