"""Deadlock signatures: frames, call stacks, and their algebra (paper §II-A).

A deadlock signature consists of, for each deadlocked thread, the call stack
it had when it *acquired* the lock involved in the deadlock (the **outer**
call stack) and the call stack it had at the moment of the deadlock (the
**inner** call stack).  The top frames of these stacks are the outer and
inner *lock statements*; a deadlock bug is uniquely delimited by them.

Conventions used throughout this library:

* A call stack is a tuple of frames ordered bottom -> top; **the top frame is
  the last element** (matching the paper's ``[c1.m1:l1:h1, ..., cn.mn:ln:hn]``
  encoding where frame *n* is the top).
* A frame's *location* is ``(class_name, method, line)``.  Runtime matching
  compares locations only; bytecode hashes are a validation-time concern.
* A runtime stack *matches* a signature stack iff the signature stack's
  locations are a suffix of the runtime stack's locations.  In particular the
  top frames must coincide, which is what allows Dimmunix to index its
  history by top-frame location (see :mod:`repro.dimmunix.avoidance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable

from repro.util.encoding import canonical_json, from_canonical_json, stable_hash
from repro.util.errors import ValidationError

#: Origin markers.  Local signatures were produced by this node's Dimmunix;
#: remote ones arrived through Communix and are subject to the stricter
#: validation rules (depth >= 5, nesting check).
ORIGIN_LOCAL = "local"
ORIGIN_REMOTE = "remote"


@dataclass(frozen=True, order=True)
class Frame:
    """One call-stack frame: ``class.method:line:hash``.

    ``code_hash`` is the (truncated) hash of the bytecode of the class that
    contains the frame, attached by the Communix plugin when the signature is
    produced; an empty string means "unknown" (e.g. a freshly captured local
    frame before the plugin annotates it).
    """

    class_name: str
    method: str
    line: int
    code_hash: str = ""

    @property
    def location(self) -> tuple[str, str, int]:
        return (self.class_name, self.method, self.line)

    def with_hash(self, code_hash: str) -> "Frame":
        return Frame(self.class_name, self.method, self.line, code_hash)

    def encode(self) -> str:
        return f"{self.class_name}.{self.method}:{self.line}:{self.code_hash}"

    @staticmethod
    def decode(text: str) -> "Frame":
        try:
            loc, line, code_hash = text.rsplit(":", 2)
            class_name, method = loc.rsplit(".", 1)
            return Frame(class_name, method, int(line), code_hash)
        except ValueError as exc:
            raise ValidationError(f"malformed frame {text!r}") from exc

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.class_name}.{self.method}:{self.line}"


class CallStack(tuple):
    """An immutable stack of :class:`Frame` objects, bottom -> top."""

    def __new__(cls, frames: Iterable[Frame] = ()):
        return super().__new__(cls, tuple(frames))

    @property
    def top(self) -> Frame:
        if not self:
            raise ValidationError("empty call stack has no top frame")
        return self[-1]

    @property
    def depth(self) -> int:
        return len(self)

    def locations(self) -> tuple[tuple[str, str, int], ...]:
        return tuple(f.location for f in self)

    def matches(self, runtime_stack: "CallStack") -> bool:
        """True iff this (signature) stack is a location-suffix of ``runtime_stack``."""
        if len(self) > len(runtime_stack):
            return False
        if not self:
            return False
        offset = len(runtime_stack) - len(self)
        for i, frame in enumerate(self):
            if frame.location != runtime_stack[offset + i].location:
                return False
        return True

    def common_suffix(self, other: "CallStack") -> "CallStack":
        """Longest common suffix by *location* (generalization, §III-D).

        Hashes are kept from ``self`` where the locations agree; merging only
        ever happens between stacks validated against the same application,
        so the hashes agree wherever the locations do.
        """
        result: list[Frame] = []
        for mine, theirs in zip(reversed(self), reversed(other)):
            if mine.location != theirs.location:
                break
            result.append(mine)
        result.reverse()
        return CallStack(result)

    def suffix(self, depth: int) -> "CallStack":
        """The top-most ``depth`` frames (the whole stack if shorter)."""
        if depth <= 0:
            return CallStack()
        return CallStack(self[-depth:])

    def encode(self) -> list[str]:
        return [f.encode() for f in self]

    @staticmethod
    def decode(items: Iterable[str]) -> "CallStack":
        return CallStack(Frame.decode(item) for item in items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CallStack[" + " <- ".join(str(f) for f in reversed(self)) + "]"


@dataclass(frozen=True)
class ThreadSignature:
    """One deadlocked thread's contribution: outer + inner call stacks."""

    outer: CallStack
    inner: CallStack

    def __post_init__(self):
        if not self.outer or not self.inner:
            raise ValidationError("thread signature requires non-empty stacks")

    @property
    def bug_key(self) -> tuple[tuple[str, str, int], tuple[str, str, int]]:
        """The (outer lock statement, inner lock statement) location pair."""
        return (self.outer.top.location, self.inner.top.location)

    def encode(self) -> dict[str, Any]:
        return {"outer": self.outer.encode(), "inner": self.inner.encode()}

    @staticmethod
    def decode(obj: dict[str, Any]) -> "ThreadSignature":
        try:
            return ThreadSignature(
                outer=CallStack.decode(obj["outer"]),
                inner=CallStack.decode(obj["inner"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError("malformed thread signature") from exc


def _canonical_thread_order(threads: Iterable[ThreadSignature]) -> tuple[ThreadSignature, ...]:
    """Signatures are unordered sets of thread stacks; store them sorted so
    that equality and content hashes are representation-independent."""
    return tuple(sorted(threads, key=lambda t: (t.encode()["outer"], t.encode()["inner"])))


@dataclass(frozen=True)
class DeadlockSignature:
    """A full deadlock signature (one entry of the deadlock history).

    ``origin`` is node-local metadata (local vs remote) and is *excluded*
    from identity, serialization, and the content hash: the same deadlock
    observed on two machines yields byte-identical wire signatures.
    """

    threads: tuple[ThreadSignature, ...]
    origin: str = field(default=ORIGIN_LOCAL, compare=False)

    def __post_init__(self):
        if len(self.threads) < 2:
            raise ValidationError("a deadlock involves at least two threads")
        object.__setattr__(self, "threads", _canonical_thread_order(self.threads))

    # ------------------------------------------------------------------ id
    # cached_property is safe on frozen dataclasses (it writes through
    # __dict__, and signatures are deeply immutable), and it matters: the
    # avoidance hot path and the generalizer consult these constantly.
    @cached_property
    def sig_id(self) -> str:
        return stable_hash(self.to_bytes())

    # ------------------------------------------------------------- keys
    @cached_property
    def bug_key(self) -> tuple:
        """Multiset of (outer-top, inner-top) location pairs.

        Two signatures represent the same deadlock bug iff their bug keys are
        equal (§III-D: "the top frames of S have to be identical to the top
        frames of S'").
        """
        return tuple(sorted(t.bug_key for t in self.threads))

    @cached_property
    def top_frames(self) -> frozenset:
        """Set of top-frame locations, for the server's adjacency check."""
        locs = set()
        for t in self.threads:
            locs.add(t.outer.top.location)
            locs.add(t.inner.top.location)
        return frozenset(locs)

    def is_adjacent_to(self, other: "DeadlockSignature") -> bool:
        """§III-C2: adjacent = some, but not all, top frames in common."""
        mine, theirs = self.top_frames, other.top_frames
        common = mine & theirs
        return bool(common) and mine != theirs

    # ------------------------------------------------------------ depths
    @property
    def min_outer_depth(self) -> int:
        return min(t.outer.depth for t in self.threads)

    # ------------------------------------------------------ serialization
    def encode(self) -> dict[str, Any]:
        return {"version": 1, "threads": [t.encode() for t in self.threads]}

    def to_bytes(self) -> bytes:
        return canonical_json(self.encode())

    @staticmethod
    def decode(obj: dict[str, Any], origin: str = ORIGIN_REMOTE) -> "DeadlockSignature":
        if not isinstance(obj, dict) or obj.get("version") != 1:
            raise ValidationError("unsupported signature encoding")
        threads = obj.get("threads")
        if not isinstance(threads, list) or len(threads) < 2:
            raise ValidationError("signature must list >= 2 threads")
        return DeadlockSignature(
            threads=tuple(ThreadSignature.decode(t) for t in threads),
            origin=origin,
        )

    @staticmethod
    def from_bytes(data: bytes, origin: str = ORIGIN_REMOTE) -> "DeadlockSignature":
        try:
            obj = from_canonical_json(data)
        except ValueError as exc:
            raise ValidationError("signature is not valid JSON") from exc
        return DeadlockSignature.decode(obj, origin=origin)

    def with_origin(self, origin: str) -> "DeadlockSignature":
        return DeadlockSignature(threads=self.threads, origin=origin)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tops = ", ".join(
            f"{t.outer.top}~{t.inner.top}" for t in self.threads
        )
        return f"DeadlockSignature<{self.sig_id}:{tops}>"
