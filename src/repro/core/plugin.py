"""The Communix plugin (paper §III-A/B).

The plugin runs on top of Dimmunix: whenever Dimmunix produces a new *local*
deadlock signature, the plugin (1) attaches to every call-stack frame the
hash of the class bytecode containing that frame — this is what makes
Communix application-agnostic, no names or versions are ever shared — and
(2) sends the annotated signature to the Communix server, right away.

Uploads go through a small background worker so that the detector thread
(which fires the history listener) never blocks on the network; failed
uploads are retried on the next flush.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Protocol

from repro.core.history import DeadlockHistory
from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_LOCAL,
    ThreadSignature,
)
from repro.util.logging import get_logger

log = get_logger("core.plugin")


class HashSource(Protocol):
    """Where the plugin gets bytecode hashes (the running application)."""

    def frame_hash(self, frame) -> str | None: ...


#: An uploader takes (signature, user token) and returns True on success.
Uploader = Callable[[DeadlockSignature, str], bool]


def attach_hashes(signature: DeadlockSignature, app: HashSource) -> DeadlockSignature:
    """Fill in each frame's ``code_hash`` from the application.

    Frames whose hash is already set (e.g. live-Python captures embed
    code-object hashes at capture time) are kept; frames of classes the
    application does not know stay unhashed and will simply fail remote
    validation, which is the safe direction.
    """

    def annotate(stack: CallStack) -> CallStack:
        frames = []
        for frame in stack:
            if frame.code_hash:
                frames.append(frame)
                continue
            digest = app.frame_hash(frame)
            frames.append(frame.with_hash(digest) if digest else frame)
        return CallStack(frames)

    threads = tuple(
        ThreadSignature(outer=annotate(t.outer), inner=annotate(t.inner))
        for t in signature.threads
    )
    return DeadlockSignature(threads=threads, origin=signature.origin)


class CommunixPlugin:
    """Watches a deadlock history and uploads new local signatures."""

    def __init__(self, history: DeadlockHistory, app: HashSource,
                 uploader: Uploader, user_token: str,
                 background: bool = True):
        self._app = app
        self._uploader = uploader
        self._token = user_token
        self._queue: queue.Queue = queue.Queue()
        self._failed: list[DeadlockSignature] = []
        self.uploaded: list[str] = []  # sig_ids successfully sent
        self._background = background
        self._worker: threading.Thread | None = None
        self._stop = threading.Event()
        self._unsubscribe: Callable[[], None] | None = None
        history.add_listener(self._on_signature_added)
        if background:
            self._worker = threading.Thread(
                target=self._drain_loop, name="communix-plugin", daemon=True
            )
            self._worker.start()

    def set_app(self, app: HashSource) -> None:
        """Rebind the hash source (late-attached applications)."""
        self._app = app

    # ------------------------------------------------------------ listener
    def _on_signature_added(self, signature: DeadlockSignature) -> None:
        if signature.origin != ORIGIN_LOCAL:
            return  # only share what this node discovered itself
        if self._app is not None:
            annotated = attach_hashes(signature, self._app)
        else:
            # No hash source attached (frames captured live already embed
            # code-object hashes); share the signature as-is.
            annotated = signature
        if self._background:
            self._queue.put(annotated)
        else:
            self._send(annotated)

    # -------------------------------------------------------------- worker
    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            try:
                signature = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                self._send(signature)
            finally:
                self._queue.task_done()

    def _send(self, signature: DeadlockSignature) -> None:
        try:
            ok = self._uploader(signature, self._token)
        except Exception as exc:
            log.warning("signature upload failed: %s", exc)
            ok = False
        if ok:
            self.uploaded.append(signature.sig_id)
        else:
            self._failed.append(signature)

    # -------------------------------------------------------------- public
    def flush(self, timeout: float = 5.0) -> bool:
        """Wait for queued *and in-flight* uploads, then retry failures once."""
        import time

        deadline = time.monotonic() + timeout
        while self._queue.unfinished_tasks and time.monotonic() < deadline:
            time.sleep(0.01)
        retry, self._failed = self._failed, []
        for signature in retry:
            self._send(signature)
        return not self._queue.unfinished_tasks and not self._failed

    @property
    def failed_uploads(self) -> list[DeadlockSignature]:
        return list(self._failed)

    def close(self) -> None:
        self._stop.set()
        if self._worker is not None:
            self._worker.join(timeout=2.0)
