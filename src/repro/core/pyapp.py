"""Adapter exposing a live Python program as a validation target.

The agent's client-side validation needs two things from "the application"
(:class:`repro.core.validation.AppView`): a hash for the code containing any
signature frame, and the set of nested synchronized-block sites.  For the
synthetic Java-like model, :class:`repro.appmodel.Application` provides both
from static artifacts.  For a live Python program this adapter provides:

* **frame hashes** from a registry of (module, function) -> code-object hash
  built by scanning the given modules (the same ``co_code`` hashes that
  :func:`repro.dimmunix.frames.capture_stack` embeds into local frames);
* **nested sites** from the Dimmunix runtime's first-run dynamic discovery —
  locations observed acquiring a lock while already holding one.  This is
  the documented substitution for the Soot static analysis (DESIGN.md): the
  *check* the agent performs (set membership of outer-top locations) is
  identical, only the producer of the set differs.
"""

from __future__ import annotations

import inspect
from types import ModuleType

from repro.dimmunix.frames import python_code_hash
from repro.dimmunix.runtime import DimmunixRuntime


class PythonAppAdapter:
    def __init__(self, name: str, modules: list[ModuleType],
                 runtime: DimmunixRuntime | None = None,
                 extra_nested_sites: set | None = None):
        self.name = name
        self._modules = list(modules)
        self._runtime = runtime
        self._registry: dict[tuple[str, str], str] = {}
        self._extra_nested = set(extra_nested_sites or ())
        self.generation = 0
        self.refresh()

    # ------------------------------------------------------------ registry
    def refresh(self) -> None:
        """(Re)scan the modules for functions and methods."""
        registry: dict[tuple[str, str], str] = {}
        for module in self._modules:
            module_name = module.__name__
            for obj in vars(module).values():
                if inspect.isfunction(obj):
                    registry[(module_name, obj.__name__)] = python_code_hash(
                        obj.__code__
                    )
                elif inspect.isclass(obj) and obj.__module__ == module_name:
                    for attr in vars(obj).values():
                        func = inspect.unwrap(attr) if callable(attr) else None
                        if inspect.isfunction(func):
                            registry[(module_name, func.__name__)] = (
                                python_code_hash(func.__code__)
                            )
        self._registry = registry
        self.generation += 1

    def add_module(self, module: ModuleType) -> None:
        self._modules.append(module)
        self.refresh()

    # ------------------------------------------------------------- AppView
    def frame_hash(self, frame) -> str | None:
        return self._registry.get((frame.class_name, frame.method))

    def nested_sync_sites(self, force: bool = False) -> set:
        sites = set(self._extra_nested)
        if self._runtime is not None:
            sites |= self._runtime.nested_sites
        return sites

    def register_nested_site(self, location: tuple[str, str, int]) -> None:
        """Persisted sites from previous runs (the first-run cache)."""
        self._extra_nested.add(location)
