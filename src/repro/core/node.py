"""A Communix node: everything one machine runs, wired together.

:class:`CommunixNode` assembles the five per-machine pieces of Figure 1 —
Dimmunix (runtime), the Communix plugin, the Communix client, the local
repository, and the Communix agent — around one application and one server
endpoint.  Examples and integration tests use it to stand up whole
mini-deployments (several nodes sharing one server) in a few lines.
"""

from __future__ import annotations

from pathlib import Path

from repro.client.client import CommunixClient, DEFAULT_PERIOD, DownloadReport
from repro.client.endpoints import ServerEndpoint
from repro.core.agent import AgentReport, CommunixAgent
from repro.core.history import DeadlockHistory
from repro.core.plugin import CommunixPlugin
from repro.core.repository import LocalRepository
from repro.core.signature import DeadlockSignature
from repro.core.validation import ClientSideValidator
from repro.dimmunix.config import DimmunixConfig
from repro.dimmunix.lock import DimmunixLock, DimmunixRLock
from repro.dimmunix.runtime import DimmunixRuntime
from repro.util.clock import Clock, SystemClock


class CommunixNode:
    """One machine in a Communix deployment.

    ``app`` is the running application as seen by validation: anything with
    ``name``, ``generation``, ``frame_hash(frame)`` and
    ``nested_sync_sites()`` — an :class:`repro.appmodel.Application` or a
    :class:`repro.core.pyapp.PythonAppAdapter`.
    """

    def __init__(self, name: str, app, endpoint: ServerEndpoint,
                 data_dir: str | Path | None = None,
                 dimmunix_config: DimmunixConfig | None = None,
                 clock: Clock | None = None,
                 client_period: float = DEFAULT_PERIOD,
                 min_outer_depth: int = 5,
                 require_nesting: bool = True):
        self.name = name
        self.app = app
        self.endpoint = endpoint
        self.clock = clock or SystemClock()
        self._min_outer_depth = min_outer_depth
        self._require_nesting = require_nesting
        data_path = Path(data_dir) if data_dir is not None else None

        history_path = data_path / "history.json" if data_path else None
        repo_path = data_path / "repository.json" if data_path else None

        self.history = DeadlockHistory(path=history_path)
        self.runtime = DimmunixRuntime(
            history=self.history,
            config=dimmunix_config or DimmunixConfig(),
            clock=self.clock,
        )
        self.user_token = endpoint.issue_token()
        self.plugin = CommunixPlugin(
            history=self.history,
            app=app,
            uploader=self._upload,
            user_token=self.user_token,
        )
        self.repository = LocalRepository(path=repo_path)
        self.client = CommunixClient(
            endpoint=endpoint,
            repository=self.repository,
            clock=self.clock,
            period=client_period,
        )
        self.agent = CommunixAgent(
            app=app,
            history=self.history,
            repository=self.repository,
            validator=ClientSideValidator(
                app, min_outer_depth=min_outer_depth,
                require_nesting=require_nesting,
            ),
        )

    # -------------------------------------------------------------- wiring
    def _upload(self, signature: DeadlockSignature, token: str) -> bool:
        return self.endpoint.add(signature.to_bytes(), token)

    def attach_app(self, app) -> None:
        """Bind (or replace) the application this node runs.

        Needed when the application view depends on the node's runtime —
        e.g. :class:`repro.core.pyapp.PythonAppAdapter` consumes the
        runtime's dynamically discovered nested sites::

            node = CommunixNode("alice", None, endpoint)
            node.attach_app(PythonAppAdapter("app", [mod], node.runtime))
        """
        self.app = app
        self.plugin.set_app(app)
        self.agent.set_app(
            app,
            ClientSideValidator(
                app,
                min_outer_depth=self._min_outer_depth,
                require_nesting=self._require_nesting,
            ),
        )

    # -------------------------------------------------------------- public
    def lock(self, name: str | None = None) -> DimmunixLock:
        """A new immunized mutex bound to this node's runtime."""
        return DimmunixLock(self.runtime, name)

    def rlock(self, name: str | None = None) -> DimmunixRLock:
        return DimmunixRLock(self.runtime, name)

    def start(self, background_client: bool = False) -> None:
        """Start the detector (and optionally the daily download daemon)."""
        self.runtime.start()
        if background_client:
            self.client.start()

    def sync_now(self) -> DownloadReport:
        """Force one incremental download (instead of waiting a day)."""
        return self.client.poll_once()

    def start_application(self) -> AgentReport:
        """Simulate an application start: the agent inspects new signatures."""
        if hasattr(self.app, "start"):
            self.app.start()
        return self.agent.on_application_start()

    def close(self) -> None:
        self.client.stop()
        self.plugin.close()
        self.runtime.stop()

    def __enter__(self) -> "CommunixNode":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
