"""Signature generalization (paper §III-D).

Generalization merges different signatures of the *same deadlock bug* — same
outer and inner lock statements — into one signature whose call stacks are
the longest common suffixes of the originals.  Fewer, shorter signatures
mean a compact history and fewer false negatives (a long suffix only matches
the one manifestation it came from), at the cost of more conservative
avoidance; the depth->=5 floor for remote signatures bounds that cost against
malicious generalization (§III-C1).

Merge rule: S and S' merge iff they have identical top frames, and either
(1) both were produced locally, or (2) one is remote and every outer stack
of the result keeps depth >= 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.history import DeadlockHistory
from repro.core.signature import (
    DeadlockSignature,
    ORIGIN_LOCAL,
    ORIGIN_REMOTE,
    ThreadSignature,
)
from repro.core.validation import MIN_OUTER_DEPTH


def merge_signatures(a: DeadlockSignature, b: DeadlockSignature,
                     min_remote_depth: int = MIN_OUTER_DEPTH) -> DeadlockSignature | None:
    """Merge two signatures of the same bug, or return ``None``.

    ``None`` means the pair is not mergeable: different bugs, or the merge
    would take a remote signature's outer stacks below the depth floor.
    """
    if a.bug_key != b.bug_key:
        return None
    threads_a = sorted(a.threads, key=lambda t: t.bug_key)
    threads_b = sorted(b.threads, key=lambda t: t.bug_key)
    merged_threads: list[ThreadSignature] = []
    for ta, tb in zip(threads_a, threads_b):
        if ta.bug_key != tb.bug_key:
            return None  # duplicate bug-key multiplicities misaligned
        outer = ta.outer.common_suffix(tb.outer)
        inner = ta.inner.common_suffix(tb.inner)
        if not outer or not inner:
            return None
        merged_threads.append(ThreadSignature(outer=outer, inner=inner))
    any_remote = ORIGIN_REMOTE in (a.origin, b.origin)
    if any_remote and any(t.outer.depth < min_remote_depth for t in merged_threads):
        return None
    origin = ORIGIN_REMOTE if any_remote else ORIGIN_LOCAL
    return DeadlockSignature(threads=tuple(merged_threads), origin=origin)


@dataclass
class IncorporateResult:
    """What happened to one incoming signature."""

    outcome: str  # "merged" | "added" | "absorbed" | "duplicate"
    resulting: DeadlockSignature | None = None
    merged_away: list[str] = field(default_factory=list)  # sig_ids replaced


class Generalizer:
    """Folds validated signatures into a deadlock history (§III-D).

    "When a Java application starts, the Communix agent checks if new
    signatures that passed the validation could be merged with existing
    signatures from the deadlock history [...].  The signatures that cannot
    be merged are added to the history."
    """

    def __init__(self, history: DeadlockHistory,
                 min_remote_depth: int = MIN_OUTER_DEPTH):
        self._history = history
        self._min_remote_depth = min_remote_depth

    def incorporate(self, signature: DeadlockSignature) -> IncorporateResult:
        existing = self._history.get(signature.sig_id)
        if existing is not None:
            return IncorporateResult(outcome="duplicate", resulting=existing)
        for candidate in self._history.same_bug(signature):
            merged = merge_signatures(candidate, signature, self._min_remote_depth)
            if merged is None:
                continue
            if merged.sig_id == candidate.sig_id:
                # The incoming signature is a special case of what we
                # already have; nothing to store.
                return IncorporateResult(outcome="absorbed", resulting=candidate)
            self._history.replace(candidate, merged)
            return IncorporateResult(
                outcome="merged",
                resulting=merged,
                merged_away=[candidate.sig_id],
            )
        self._history.add(signature)
        return IncorporateResult(outcome="added", resulting=signature)
