"""Client-side signature validation (paper §III-C3).

For each new signature the Communix agent checks, in order:

1. **Hash check** — every call stack (outer *and* inner) must carry a top
   frame whose bytecode hash matches the running application; below the top,
   the stack is trimmed to its longest suffix of matching hashes ("if hk is
   the first hash value that does not match A, the frames 1..k are removed").
   Inner stacks are checked even though avoidance never matches them: a
   mismatch there means the code between the outer and inner lock statements
   changed — likely a fixed deadlock — so the signature is rejected.
2. **Depth check** — remote signatures must have outer call stacks of depth
   >= 5 (§III-C1: this bounds the thread-serialization damage a malicious
   signature can cause; Table II quantifies it).
3. **Nesting check** — every outer call stack must end in a *nested*
   synchronized block: its top frame's location must belong to the
   precomputed nested-site set of the application.  This caps the number of
   acceptable fake signatures at the number of nested sites in the program.

The validator is application-agnostic: it sees the application through the
small :class:`AppView` protocol (bytecode hashes + nested sites), which both
the synthetic app model and live-Python adapters implement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol

from repro.core.signature import CallStack, DeadlockSignature, ThreadSignature

#: Minimum outer call-stack depth for remote signatures (§III-C1).
MIN_OUTER_DEPTH = 5


class AppView(Protocol):
    """The slice of an application the validator needs.

    ``frame_hash`` returns the hash the running application has for the code
    containing a given frame (the class bytecode hash in the Java model, the
    code-object hash for live Python), or ``None`` for unknown code.
    """

    def frame_hash(self, frame) -> str | None: ...

    def nested_sync_sites(self, force: bool = False) -> set[tuple[str, str, int]]: ...


class RejectReason(enum.Enum):
    HASH_MISMATCH = "hash_mismatch"
    TOO_SHALLOW = "too_shallow"
    NOT_NESTED = "not_nested"
    MALFORMED = "malformed"


@dataclass
class ValidationResult:
    accepted: bool
    signature: DeadlockSignature | None = None
    reason: RejectReason | None = None
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


def trim_stack(stack: CallStack, app: AppView) -> CallStack | None:
    """Apply the §III-C3 hash check to one stack.

    Returns ``None`` if the *top* frame's hash does not match the running
    application; otherwise the longest suffix whose hashes all match.
    """
    if not stack:
        return None
    top = stack.top
    app_hash = app.frame_hash(top)
    if app_hash is None or app_hash != top.code_hash:
        return None
    # Scan downward from just below the top; cut at the first mismatch.
    for i in range(len(stack) - 2, -1, -1):
        frame = stack[i]
        app_hash = app.frame_hash(frame)
        if app_hash is None or app_hash != frame.code_hash:
            return CallStack(stack[i + 1:])
    return stack


class ClientSideValidator:
    def __init__(self, app: AppView, min_outer_depth: int = MIN_OUTER_DEPTH,
                 require_nesting: bool = True):
        self._app = app
        self._min_outer_depth = min_outer_depth
        self._require_nesting = require_nesting

    def validate(self, signature: DeadlockSignature) -> ValidationResult:
        """Run all three checks; on success the returned signature has its
        stacks trimmed to the hash-matching suffixes."""
        trimmed_threads: list[ThreadSignature] = []
        for thread in signature.threads:
            outer = trim_stack(thread.outer, self._app)
            if outer is None:
                return ValidationResult(
                    accepted=False,
                    reason=RejectReason.HASH_MISMATCH,
                    detail=f"outer top {thread.outer.top} does not match application",
                )
            inner = trim_stack(thread.inner, self._app)
            if inner is None:
                return ValidationResult(
                    accepted=False,
                    reason=RejectReason.HASH_MISMATCH,
                    detail=f"inner top {thread.inner.top} does not match application",
                )
            trimmed_threads.append(ThreadSignature(outer=outer, inner=inner))

        if any(t.outer.depth < self._min_outer_depth for t in trimmed_threads):
            shallow = min(t.outer.depth for t in trimmed_threads)
            return ValidationResult(
                accepted=False,
                reason=RejectReason.TOO_SHALLOW,
                detail=f"outer depth {shallow} < {self._min_outer_depth}",
            )

        if self._require_nesting:
            nested = self._app.nested_sync_sites()
            for thread in trimmed_threads:
                if thread.outer.top.location not in nested:
                    return ValidationResult(
                        accepted=False,
                        reason=RejectReason.NOT_NESTED,
                        detail=(
                            f"outer top {thread.outer.top} is not a nested "
                            "synchronized block"
                        ),
                    )

        validated = DeadlockSignature(
            threads=tuple(trimmed_threads), origin=signature.origin
        )
        return ValidationResult(accepted=True, signature=validated)
