"""The Communix agent (paper §III-A/C/D).

The agent runs in the application's address space, together with Dimmunix.
Each time the application starts it inspects the *new* signatures in the
local repository (each signature is analyzed only once per application):

1. client-side validation (hash check with suffix trimming, depth >= 5,
   nested-synchronized-block check) — :mod:`repro.core.validation`;
2. generalization of accepted signatures into the application's deadlock
   history (merge with same-bug entries, else add) —
   :mod:`repro.core.generalization`.

Signatures that passed the hash check but failed the nesting check are
remembered; when the application has loaded new classes since the last run,
only the nesting check is repeated for them ("adding new classes to the CFG
can only uncover new nested synchronized blocks/methods", §III-C3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.generalization import Generalizer
from repro.core.history import DeadlockHistory
from repro.core.repository import LocalRepository
from repro.core.signature import DeadlockSignature
from repro.core.validation import ClientSideValidator, RejectReason
from repro.util.logging import get_logger

log = get_logger("core.agent")


@dataclass
class AgentReport:
    """Outcome of one startup inspection pass."""

    inspected: int = 0
    accepted: int = 0
    added: int = 0
    merged: int = 0
    absorbed: int = 0
    duplicates: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    recheck_accepted: int = 0
    elapsed_seconds: float = 0.0

    def note_rejection(self, reason: RejectReason) -> None:
        key = reason.value
        self.rejected[key] = self.rejected.get(key, 0) + 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())


class CommunixAgent:
    def __init__(self, app, history: DeadlockHistory,
                 repository: LocalRepository,
                 validator: ClientSideValidator | None = None,
                 generalizer: Generalizer | None = None):
        self._app = app
        self._history = history
        self._repository = repository
        self._validator = validator or ClientSideValidator(app)
        self._generalizer = generalizer or Generalizer(history)
        #: application generation at the time of the last nesting check, so
        #: we only re-check pending signatures when new classes were loaded.
        self._last_generation: int | None = None

    @property
    def app_key(self) -> str:
        return self._app.name

    def set_app(self, app, validator: ClientSideValidator | None = None) -> None:
        """Rebind the agent to a (late-attached) application."""
        self._app = app
        if validator is not None:
            self._validator = validator
        self._last_generation = None

    # --------------------------------------------------------------- runs
    def on_application_start(self) -> AgentReport:
        """The agent's startup pass: validate + generalize new signatures."""
        started = time.perf_counter()
        report = AgentReport()
        pending_after: list[int] = []

        generation = getattr(self._app, "generation", 0)
        if self._last_generation is not None and generation != self._last_generation:
            self._recheck_pending(report, pending_after)
        else:
            pending_after.extend(self._repository.pending_nesting(self.app_key))
        self._last_generation = generation

        batch = self._repository.new_signatures_for(self.app_key)
        highest = self._repository.get_cursor(self.app_key)
        for index, signature in batch:
            highest = max(highest, index + 1)
            report.inspected += 1
            self._process(index, signature, report, pending_after)
        self._repository.advance_cursor(self.app_key, highest)
        self._repository.set_pending_nesting(self.app_key, pending_after)
        report.elapsed_seconds = time.perf_counter() - started
        log.info(
            "agent[%s]: inspected=%d accepted=%d rejected=%d (%.3fs)",
            self.app_key, report.inspected, report.accepted,
            report.rejected_total, report.elapsed_seconds,
        )
        return report

    # ------------------------------------------------------------ internals
    def _process(self, index: int, signature: DeadlockSignature,
                 report: AgentReport, pending_after: list[int]) -> None:
        result = self._validator.validate(signature)
        if not result.accepted:
            report.note_rejection(result.reason)
            if result.reason is RejectReason.NOT_NESTED:
                # Passed the hash check, failed nesting: candidates for
                # re-checking when new classes load.
                pending_after.append(index)
            return
        report.accepted += 1
        self._incorporate(result.signature, report)

    def _incorporate(self, signature: DeadlockSignature, report: AgentReport) -> None:
        outcome = self._generalizer.incorporate(signature).outcome
        if outcome == "added":
            report.added += 1
        elif outcome == "merged":
            report.merged += 1
        elif outcome == "absorbed":
            report.absorbed += 1
        else:
            report.duplicates += 1

    def _recheck_pending(self, report: AgentReport,
                         pending_after: list[int]) -> None:
        """New classes were loaded: repeat the nesting check (only) for
        signatures that previously passed hashes but failed nesting."""
        self._app.nested_sync_sites(force=True)
        for index in self._repository.pending_nesting(self.app_key):
            signature = self._repository.signature_at(index)
            result = self._validator.validate(signature)
            if result.accepted:
                report.recheck_accepted += 1
                report.accepted += 1
                self._incorporate(result.signature, report)
            elif result.reason is RejectReason.NOT_NESTED:
                pending_after.append(index)
            # Hash failures on re-check mean the application itself changed;
            # the signature is dropped from pending either way.
