"""Setup shim.

This environment is offline and lacks the ``wheel`` package, so PEP 517
editable builds (which require ``bdist_wheel``) fail.  Keeping a ``setup.py``
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works with the stock setuptools available here.  All metadata lives in
``pyproject.toml``; this file only mirrors what the legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Communix: a collaborative deadlock immunity framework "
        "(DSN 2011 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
