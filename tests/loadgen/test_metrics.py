"""Latency histograms, collector merging, and cross-process snapshots."""

import json
import random

import pytest

from repro.loadgen.metrics import (
    LatencyHistogram,
    Metrics,
    MetricsSnapshot,
    merge_snapshots,
)


class TestLatencyHistogram:
    def test_totals_are_exact(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.record(i / 1000.0)
        assert histogram.count == 1000
        assert histogram.total == pytest.approx(sum(range(1, 1001)) / 1000.0)

    def test_percentiles_within_bucket_resolution(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.record(i / 1000.0)  # 1ms .. 1s uniform
        # Geometric buckets grow by 2**0.25 (~19%); the reported value is
        # the bucket's upper bound, so it is within one growth factor.
        assert 0.5 <= histogram.percentile(50) <= 0.5 * 2 ** 0.25
        assert 0.95 <= histogram.percentile(95) <= 0.95 * 2 ** 0.25
        assert histogram.percentile(99) <= histogram.max
        assert histogram.percentile(100) == histogram.max

    def test_single_sample(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["p50_ms"] == summary["p99_ms"] == summary["max_ms"]

    def test_extremes_clamp_to_terminal_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)       # below resolution
        histogram.record(10_000.0)  # beyond the last bucket
        assert histogram.count == 2
        assert histogram.percentile(99) <= histogram.max

    def test_merge_adds_counts(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for i in range(100):
            a.record(0.001 * (i + 1))
            b.record(0.010 * (i + 1))
        merged = LatencyHistogram()
        merged.merge(a)
        merged.merge(b)
        assert merged.count == 200
        assert merged.min == a.min
        assert merged.max == b.max


class TestMetrics:
    def test_every_op_lands_in_exactly_one_place(self):
        metrics = Metrics(epoch=0.0)
        for _ in range(5):
            metrics.record("add", 0.01, now=1.0)
        metrics.record_error("add")
        snapshot = Metrics.merge([metrics])
        assert snapshot.count("add") == 5
        assert snapshot.errors == {"add": 1}
        assert snapshot.completed == 5
        assert snapshot.error_count == 1

    def test_merge_across_shards(self):
        shards = [Metrics(epoch=0.0) for _ in range(3)]
        for i, shard in enumerate(shards):
            for _ in range(10 * (i + 1)):
                shard.record("get_page", 0.002, now=float(i))
        snapshot = Metrics.merge(shards)
        assert snapshot.count("get_page") == 60
        assert sum(snapshot.series.values()) == 60
        assert snapshot.series == {0: 10, 1: 20, 2: 30}

    def test_to_dict_is_json_shaped(self):
        metrics = Metrics(epoch=0.0)
        metrics.record("add", 0.004, now=0.5)
        payload = Metrics.merge([metrics]).to_dict()
        assert payload["completed"] == 1
        assert payload["ops"]["add"]["count"] == 1
        assert payload["throughput_series"] == {"0": 1}


class TestWireSnapshots:
    """The federation payload: full-fidelity histogram transfer + merge."""

    def _snapshot(self, samples, *, op="add", errors=0, second=0):
        metrics = Metrics(epoch=0.0)
        for sample in samples:
            metrics.record(op, sample, now=float(second))
        for _ in range(errors):
            metrics.record_error(op)
        return Metrics.merge([metrics])

    def test_histogram_wire_round_trip_is_lossless(self):
        histogram = LatencyHistogram()
        rng = random.Random(7)
        for _ in range(500):
            histogram.record(rng.uniform(1e-5, 2.0))
        clone = LatencyHistogram.from_wire(
            json.loads(json.dumps(histogram.to_wire()))
        )
        assert clone.counts == histogram.counts
        assert clone.count == histogram.count
        assert clone.total == pytest.approx(histogram.total)
        assert (clone.min, clone.max) == (histogram.min, histogram.max)
        for p in (50, 95, 99, 100):
            assert clone.percentile(p) == histogram.percentile(p)

    def test_empty_histogram_round_trip(self):
        clone = LatencyHistogram.from_wire(LatencyHistogram().to_wire())
        assert clone.count == 0
        assert clone.percentile(99) == 0.0

    def test_snapshot_wire_round_trip(self):
        snapshot = self._snapshot([0.01, 0.02, 0.03], errors=2, second=4)
        clone = MetricsSnapshot.from_wire(
            json.loads(json.dumps(snapshot.to_wire()))
        )
        assert clone.completed == 3
        assert clone.errors == {"add": 2}
        assert clone.series == {4: 3}
        assert clone.histograms["add"].summary() == \
            snapshot.histograms["add"].summary()

    def test_merged_percentiles_equal_pooled_percentiles(self):
        """The federation invariant: merging per-worker histograms gives
        exactly the percentiles of recording every sample into one
        histogram — sharding the swarm loses no fidelity."""
        rng = random.Random(23)
        worker_samples = [
            [rng.uniform(1e-4, 0.5) for _ in range(300)] for _ in range(4)
        ]
        pooled = LatencyHistogram()
        for samples in worker_samples:
            for sample in samples:
                pooled.record(sample)
        merged = merge_snapshots(
            # ...with a wire round-trip in the middle, as federation does.
            MetricsSnapshot.from_wire(self._snapshot(samples).to_wire())
            for samples in worker_samples
        )
        histogram = merged.histograms["add"]
        assert histogram.count == pooled.count
        assert histogram.counts == pooled.counts
        for p in (50, 90, 95, 99, 99.9):
            assert histogram.percentile(p) == pooled.percentile(p)

    def test_merge_snapshots_sums_series_and_errors(self):
        a = self._snapshot([0.01] * 3, second=0, errors=1)
        b = self._snapshot([0.01] * 5, second=0)
        c = self._snapshot([0.01] * 2, second=2)
        merged = merge_snapshots([a, b, c])
        assert merged.series == {0: 8, 2: 2}
        assert merged.errors == {"add": 1}
        assert merged.completed == 10

    def test_rebase_series_shifts_to_release_zero(self):
        snapshot = self._snapshot([0.01], second=7)
        snapshot.series = {5: 2, 7: 3, 9: 1}
        snapshot.rebase_series(7)
        # Pre-release completions fold into second 0.
        assert snapshot.series == {0: 5, 2: 1}
