"""Latency histograms and collector merging."""

import pytest

from repro.loadgen.metrics import LatencyHistogram, Metrics


class TestLatencyHistogram:
    def test_totals_are_exact(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.record(i / 1000.0)
        assert histogram.count == 1000
        assert histogram.total == pytest.approx(sum(range(1, 1001)) / 1000.0)

    def test_percentiles_within_bucket_resolution(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.record(i / 1000.0)  # 1ms .. 1s uniform
        # Geometric buckets grow by 2**0.25 (~19%); the reported value is
        # the bucket's upper bound, so it is within one growth factor.
        assert 0.5 <= histogram.percentile(50) <= 0.5 * 2 ** 0.25
        assert 0.95 <= histogram.percentile(95) <= 0.95 * 2 ** 0.25
        assert histogram.percentile(99) <= histogram.max
        assert histogram.percentile(100) == histogram.max

    def test_single_sample(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["p50_ms"] == summary["p99_ms"] == summary["max_ms"]

    def test_extremes_clamp_to_terminal_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)       # below resolution
        histogram.record(10_000.0)  # beyond the last bucket
        assert histogram.count == 2
        assert histogram.percentile(99) <= histogram.max

    def test_merge_adds_counts(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for i in range(100):
            a.record(0.001 * (i + 1))
            b.record(0.010 * (i + 1))
        merged = LatencyHistogram()
        merged.merge(a)
        merged.merge(b)
        assert merged.count == 200
        assert merged.min == a.min
        assert merged.max == b.max


class TestMetrics:
    def test_every_op_lands_in_exactly_one_place(self):
        metrics = Metrics(epoch=0.0)
        for _ in range(5):
            metrics.record("add", 0.01, now=1.0)
        metrics.record_error("add")
        snapshot = Metrics.merge([metrics])
        assert snapshot.count("add") == 5
        assert snapshot.errors == {"add": 1}
        assert snapshot.completed == 5
        assert snapshot.error_count == 1

    def test_merge_across_shards(self):
        shards = [Metrics(epoch=0.0) for _ in range(3)]
        for i, shard in enumerate(shards):
            for _ in range(10 * (i + 1)):
                shard.record("get_page", 0.002, now=float(i))
        snapshot = Metrics.merge(shards)
        assert snapshot.count("get_page") == 60
        assert sum(snapshot.series.values()) == 60
        assert snapshot.series == {0: 10, 1: 20, 2: 30}

    def test_to_dict_is_json_shaped(self):
        metrics = Metrics(epoch=0.0)
        metrics.record("add", 0.004, now=0.5)
        payload = Metrics.merge([metrics]).to_dict()
        assert payload["completed"] == 1
        assert payload["ops"]["add"]["count"] == 1
        assert payload["throughput_series"] == {"0": 1}
