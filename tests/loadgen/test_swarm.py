"""SwarmEngine integration: deterministic loopback runs against a live
event-driven server — drain completeness, FD hygiene, metrics invariants."""

import os
import random
import socket
import time

import pytest

from repro.crypto.userid import UserIdAuthority
from repro.loadgen.engine import SwarmEngine
from repro.loadgen.scenarios import (
    AdjacentSpam,
    Churn,
    ColdSync,
    ForgedTokens,
    QuotaFlood,
    SteadyState,
)
from repro.loadgen.signatures import (
    adjacent_spam_blobs,
    forged_tokens,
    off_path_flood_blobs,
    random_signature_blobs,
)
from repro.server.server import CommunixServer
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock

PRELOAD = 100


def open_fd_count() -> int | None:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-proc platforms
        return None


@pytest.fixture
def live_server(shared_factory):
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(11)),
        clock=ManualClock(start=1_000_000.0),
    )
    db = server.database
    uid = 10_000
    while len(db) < PRELOAD:
        sig = shared_factory.make_valid()
        if db.contains(sig.sig_id):
            continue
        db.append(sig, sig.to_bytes(), uid)
        uid += 1
    transport = ServerTransport(server, accept_backlog=1024,
                                idle_timeout=120.0)
    host, port = transport.start()
    yield server, transport, host, port
    transport.stop()


class TestDeterministicLoopbackRun:
    def test_mixed_scenario_swarm(self, live_server):
        server, transport, host, port = live_server
        cold = [ColdSync(page_size=32) for _ in range(10)]
        steady = [
            SteadyState(random_signature_blobs(3, seed=1000 + i), page_size=64)
            for i in range(10)
        ]
        churn = [Churn(cycles=3, ops_per_cycle=2, page_size=16)
                 for _ in range(6)]
        forged = [
            ForgedTokens(off_path_flood_blobs(4, seed=50 + i),
                         forged_tokens(4, seed=50 + i))
            for i in range(4)
        ]
        adjacent = [AdjacentSpam(adjacent_spam_blobs(8, seed=70 + i))
                    for i in range(2)]
        flood = [QuotaFlood(off_path_flood_blobs(12, seed=90 + i))
                 for i in range(2)]
        scenarios = cold + steady + churn + forged + adjacent + flood

        fds_before = open_fd_count()
        engine = SwarmEngine(host, port, loops=2, connect_burst=64)
        engine.add_clients(scenarios)
        snapshot = engine.run(timeout=120.0)

        # Everyone finished, nothing aborted, no transport errors.
        assert engine.finished_count == len(scenarios)
        assert not engine.crashed
        assert [s for s in scenarios if s.failed] == []
        assert snapshot.errors == {}

        # Every cold-sync client drained the (growing) database.
        for scenario in cold:
            assert scenario.completed
            assert scenario.drained >= PRELOAD

        # Steady-state clients: every ADD accepted, all rounds done.
        for scenario in steady:
            assert scenario.completed
            assert scenario.accepted == 3

        # Churn clients really cycled their connections.
        for scenario in churn:
            assert scenario.completed
            assert scenario.connects == 3

        # Forged tokens: rejected to the last one.
        for scenario in forged:
            assert scenario.verdicts == {"bad_token": 4}

        # Adjacent spam: the §III-C2 check caps acceptance at a disjoint
        # pairing of the forged suffix pool (8 pairs from 5 stacks -> <=2).
        for scenario in adjacent:
            assert scenario.accepted <= 2
            assert scenario.verdicts.get("adjacent", 0) >= 6

        # Quota flood: only the daily quota (10) stops the flood.
        for scenario in flood:
            assert scenario.accepted == 10
            assert scenario.verdicts.get("quota_exceeded", 0) == 2

        # Histogram totals equal ops issued, per op and overall.
        issued = engine.issued()
        assert issued  # sanity: the run really issued work
        for op, n in issued.items():
            assert snapshot.count(op) + snapshot.errors.get(op, 0) == n
        assert snapshot.completed == sum(issued.values())
        assert sum(snapshot.series.values()) == snapshot.completed

        # Zero FD leaks after stop(), on both sides.  The in-process
        # server reaps its half of each closed connection on its next
        # loop tick, so give its registry a moment to drain before
        # counting descriptors.
        assert engine.open_fds() == []
        deadline = time.monotonic() + 10.0
        while transport.connection_count and time.monotonic() < deadline:
            time.sleep(0.01)
        assert transport.connection_count == 0
        fds_after = open_fd_count()
        if fds_before is not None:
            assert fds_after <= fds_before


class TestBarrier:
    def test_park_and_release(self, live_server):
        _, _, host, port = live_server
        n = 20
        scenarios = [
            SteadyState(random_signature_blobs(1, seed=2000 + i),
                        page_size=32, park_after_setup=True)
            for i in range(n)
        ]
        engine = SwarmEngine(host, port, loops=2)
        engine.add_clients(scenarios)
        engine.start()
        try:
            deadline = time.monotonic() + 60.0
            while engine.parked_count < n and time.monotonic() < deadline:
                time.sleep(0.01)
            assert engine.parked_count == n
            assert engine.connected_count == n
            released_at = engine.release()
            assert engine.wait(60.0)
            assert engine.completed_at >= released_at
        finally:
            engine.stop()
        snapshot = engine.snapshot()
        assert snapshot.count("add") == n
        assert snapshot.errors == {}
        assert all(s.completed for s in scenarios)


class TestUnixTransport:
    def test_swarm_over_unix_socket(self, tmp_path, shared_factory):
        """The engine dials unix:// endpoints exactly like TCP ones."""
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(17)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(
            server, endpoints=[f"unix://{tmp_path / 'swarm.sock'}"],
            accept_backlog=256,
        )
        transport.start()
        url = transport.bound_endpoints[0].url()
        scenarios = [
            SteadyState(random_signature_blobs(2, seed=4000 + i), page_size=32)
            for i in range(20)
        ]
        engine = SwarmEngine(url, loops=2, connect_burst=16)
        engine.add_clients(scenarios)
        try:
            snapshot = engine.run(timeout=60.0)
        finally:
            transport.stop()
        assert engine.finished_count == 20
        assert snapshot.errors == {}
        assert all(s.completed for s in scenarios)
        assert snapshot.count("add") == 40
        assert engine.open_fds() == []

    def test_park_on_connect_barrier_mixed_scenarios(self, live_server):
        """Every scenario type parks before its first request and resumes
        on release — the federation worker's barrier mode."""
        from repro.loadgen.scenarios import build_mix

        _, _, host, port = live_server
        n = 18
        scenarios = build_mix(
            "cold=1,steady=1,churn=1,forged=1,adjacent=1,flood=1",
            n, seed=9, rounds=2, page_size=32, park=True,
        )
        engine = SwarmEngine(host, port, loops=2)
        engine.add_clients(scenarios)
        engine.start()
        try:
            parked = engine.wait_barrier(timeout=60.0)
            assert parked == n  # nobody issued a request before the gate
            assert engine.connected_count == n
            snapshot_before = engine.snapshot()
            assert snapshot_before.completed == 0
            engine.release()
            assert engine.wait(60.0)
        finally:
            engine.stop()
        snapshot = engine.snapshot()
        assert snapshot.errors == {}
        assert [s for s in scenarios if s.failed] == []
        assert snapshot.completed > 0


class TestLifecycle:
    def test_empty_engine_finishes_immediately(self):
        engine = SwarmEngine("127.0.0.1", 1)
        snapshot = engine.run(timeout=1.0)
        assert engine.finished_count == 0
        assert snapshot.completed == 0

    def test_stop_mid_run_releases_every_fd(self, live_server):
        _, _, host, port = live_server
        engine = SwarmEngine(host, port, loops=2)
        engine.add_clients(ColdSync(page_size=8) for _ in range(30))
        engine.start()
        time.sleep(0.05)  # mid-drain
        engine.stop()
        assert engine.open_fds() == []

    def test_connect_refused_surfaces_as_connect_errors(self):
        # A port with no listener: every dial must fail fast and cleanly.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        engine = SwarmEngine("127.0.0.1", port, loops=1,
                             connect_timeout=5.0)
        scenarios = [ColdSync() for _ in range(5)]
        engine.add_clients(scenarios)
        snapshot = engine.run(timeout=30.0)
        assert engine.finished_count == 5
        assert snapshot.errors.get("connect") == 5
        assert all(s.failed for s in scenarios)
        assert engine.open_fds() == []

    def test_add_clients_after_start_rejected(self):
        engine = SwarmEngine("127.0.0.1", 1)
        engine.start()
        try:
            with pytest.raises(RuntimeError):
                engine.add_clients([ColdSync()])
        finally:
            engine.stop()


class TestPooledReceive:
    """Regression: each shard's read path borrows from its BufferPool
    instead of allocating a fresh buffer per recv (PR 6)."""

    def test_shard_reads_reuse_pooled_buffers(self, live_server):
        server, transport, host, port = live_server
        engine = SwarmEngine(host, port, loops=2)
        engine.add_clients([ColdSync(page_size=32) for _ in range(8)])
        engine.run(timeout=60.0)
        assert engine.finished_count == 8
        for shard in engine._shards:
            # Single-threaded shard loop: one buffer serves every read.
            assert shard._recv_pool.allocated <= 2
