"""Federated swarm: coordinator/worker protocol, barrier, merged report.

These spawn real ``python -m repro.loadgen --worker`` processes against a
live in-process server, so they exercise the whole control-pipe protocol
(ready → release → result) end to end — kept small because each worker is
a full interpreter start.
"""

import random

import pytest

from repro.crypto.userid import UserIdAuthority
from repro.loadgen.federation import (
    FederationReport,
    _split_clients,
    federated_run,
)
from repro.server.server import CommunixServer
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock


@pytest.fixture
def unix_server(tmp_path):
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(31)),
        clock=ManualClock(start=1_000_000.0),
    )
    transport = ServerTransport(
        server, endpoints=[f"unix://{tmp_path / 'fed.sock'}"],
        accept_backlog=1024, idle_timeout=120.0,
    )
    transport.start()
    yield server, transport, transport.bound_endpoints[0].url()
    transport.stop()


class TestSplit:
    def test_split_clients_covers_total(self):
        assert _split_clients(10, 3) == [4, 3, 3]
        assert _split_clients(9, 3) == [3, 3, 3]
        assert _split_clients(2, 2) == [1, 1]
        assert sum(_split_clients(10001, 4)) == 10001


class TestFederatedRun:
    def test_two_workers_over_unix_socket(self, unix_server):
        server, transport, url = unix_server
        report = federated_run(
            connect=url, procs=2, clients=16, scenario="steady=1",
            rounds=1, page_size=64, loops=1, timeout=60.0, seed=3,
        )
        assert isinstance(report, FederationReport)
        assert report.ok, report.failures
        assert report.procs == 2
        assert report.held_peak == 16  # every client held at the barrier
        assert report.distinct_sessions == 16
        # Each client ran ISSUE_ID + ADD + GET(page): merged histograms
        # carry one sample per op per client, and nothing errored.
        assert report.snapshot.count("issue_id") == 16
        assert report.snapshot.count("add") == 16
        assert report.snapshot.count("get_page") == 16
        assert report.snapshot.errors == {}
        assert report.issued["add"] == 16
        assert len(report.workers) == 2
        assert all(w.ok for w in report.workers)
        assert {w.clients for w in report.workers} == {8}
        # The 16 ADDs really landed in the one shared database.
        assert len(server.database) == 16
        assert report.requests_per_s > 0

    def test_rolling_waves_are_disjoint_cohorts(self, unix_server):
        server, transport, url = unix_server
        report = federated_run(
            connect=url, procs=2, clients=8, scenario="steady=1",
            rounds=1, page_size=64, loops=1, timeout=60.0, seed=5, waves=2,
        )
        assert report.ok, report.failures
        assert report.waves == 2
        assert report.distinct_sessions == 16
        # Concurrency stays bounded by one wave...
        assert report.held_peak == 8
        # ...while the merged metrics cover every session of every wave.
        assert report.snapshot.count("add") == 16
        assert len(report.workers) == 4
        assert len(server.database) == 16

    def test_unreachable_server_reports_failure(self, tmp_path):
        report = federated_run(
            connect=f"unix://{tmp_path / 'nobody.sock'}", procs=2,
            clients=4, scenario="steady=1", rounds=1, timeout=20.0,
            barrier_timeout=20.0,
        )
        assert not report.ok
        assert report.failures
        assert all(not w.ok for w in report.workers)

    def test_more_procs_than_clients_collapses(self, unix_server):
        _, _, url = unix_server
        report = federated_run(
            connect=url, procs=4, clients=2, scenario="steady=1",
            rounds=1, timeout=60.0,
        )
        assert report.ok, report.failures
        assert report.procs == 2  # no idle workers forked
