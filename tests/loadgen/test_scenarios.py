"""Scenario state machines, driven directly (no sockets)."""

import random

import pytest

from repro.loadgen.scenarios import (
    AdjacentSpam,
    Churn,
    ClientContext,
    ColdSync,
    ForgedTokens,
    Park,
    QuotaFlood,
    RampingFlood,
    Reconnect,
    Send,
    SteadyState,
    Stop,
    build_mix,
    make_scenario,
    parse_mix,
)
from repro.loadgen.signatures import (
    adjacent_spam_blobs,
    forged_tokens,
    off_path_flood_blobs,
    random_signature_blobs,
)
from repro.server.protocol import (
    encode_get_page_response,
    pack_signature_record,
)
from repro.util.encoding import canonical_json, from_canonical_json


CTX = ClientContext(client_id=0)


def page(next_index, blobs, more):
    chunks = [pack_signature_record(b) for b in blobs]
    return encode_get_page_response(next_index, len(blobs), chunks, more)


def drive_request(action):
    """Decode the JSON request inside a Send action."""
    assert isinstance(action, Send)
    return from_canonical_json(action.payload)


class TestColdSync:
    def test_drains_until_more_clears(self):
        scenario = ColdSync(page_size=2)
        action = scenario.on_connect(CTX)
        assert drive_request(action) == {"op": "GET", "from_index": 0,
                                         "max_count": 2}
        action = scenario.on_response(CTX, "get_page", page(2, [b"a", b"b"], True))
        assert drive_request(action)["from_index"] == 2
        action = scenario.on_response(CTX, "get_page", page(3, [b"c"], False))
        assert isinstance(action, Stop)
        assert scenario.drained == 3
        assert scenario.completed

    def test_resumes_from_cursor_after_reconnect(self):
        scenario = ColdSync(page_size=4)
        scenario.on_connect(CTX)
        scenario.on_response(CTX, "get_page", page(4, [b"x"] * 4, True))
        action = scenario.on_connect(CTX)  # redial mid-drain
        assert drive_request(action)["from_index"] == 4


class TestSteadyState:
    def _token_response(self):
        return canonical_json({"ok": True, "token": "deadbeef"})

    def test_full_round_sequence(self):
        blobs = random_signature_blobs(2, seed=5)
        scenario = SteadyState(blobs, page_size=8)
        action = scenario.on_connect(CTX)
        assert drive_request(action)["op"] == "ISSUE_ID"
        action = scenario.on_response(CTX, "issue_id", self._token_response())
        assert drive_request(action)["op"] == "ADD"
        action = scenario.on_response(
            CTX, "add", canonical_json({"ok": True, "verdict": "ok", "index": 0})
        )
        assert drive_request(action)["op"] == "GET"
        action = scenario.on_response(CTX, "get_page", page(1, [b"s"], False))
        assert drive_request(action)["op"] == "ADD"  # round 2
        scenario.on_response(CTX, "add",
                             canonical_json({"ok": True, "verdict": "ok"}))
        action = scenario.on_response(CTX, "get_page", page(2, [b"t"], False))
        assert isinstance(action, Stop)
        assert scenario.accepted == 2
        assert scenario.completed
        assert scenario.cursor == 2

    def test_parks_at_barrier_then_releases(self):
        scenario = SteadyState(random_signature_blobs(1, seed=6),
                               park_after_setup=True)
        scenario.on_connect(CTX)
        action = scenario.on_response(CTX, "issue_id", self._token_response())
        assert isinstance(action, Park)
        action = scenario.on_release(CTX)
        assert drive_request(action)["op"] == "ADD"

    def test_failed_token_issue_aborts(self):
        scenario = SteadyState(random_signature_blobs(1, seed=7))
        scenario.on_connect(CTX)
        action = scenario.on_response(CTX, "issue_id",
                                      canonical_json({"ok": False}))
        assert isinstance(action, Stop)
        assert scenario.failed

    def test_think_time_sets_send_delay(self):
        scenario = SteadyState(random_signature_blobs(2, seed=8),
                               think_time=0.5)
        scenario.on_connect(CTX)
        first = scenario.on_response(CTX, "issue_id", self._token_response())
        assert first.delay == 0.0  # first ADD goes out immediately
        scenario.on_response(CTX, "add", canonical_json({"ok": True}))
        later = scenario.on_response(CTX, "get_page", page(1, [], False))
        assert later.delay == 0.5

    def test_initial_delay_staggers_first_add_only(self):
        scenario = SteadyState(random_signature_blobs(2, seed=9),
                               think_time=0.5, initial_delay=0.125)
        scenario.on_connect(CTX)
        first = scenario.on_response(CTX, "issue_id", self._token_response())
        assert first.delay == 0.125
        scenario.on_response(CTX, "add", canonical_json({"ok": True}))
        later = scenario.on_response(CTX, "get_page", page(1, [], False))
        assert later.delay == 0.5  # later rounds pace by think_time


class TestChurn:
    def test_cycles_and_reconnects(self):
        scenario = Churn(cycles=2, ops_per_cycle=2, page_size=4)
        scenario.on_connect(CTX)
        scenario.on_response(CTX, "get_page", page(4, [b"x"] * 4, True))
        action = scenario.on_response(CTX, "get_page", page(8, [b"y"] * 4, True))
        assert isinstance(action, Reconnect)
        scenario.on_connect(CTX)
        scenario.on_response(CTX, "get_page", page(12, [b"z"] * 4, True))
        action = scenario.on_response(CTX, "get_page", page(16, [b"w"] * 4, True))
        assert isinstance(action, Stop)
        assert scenario.connects == 2
        assert scenario.cycles_done == 2
        assert scenario.completed

    def test_cursor_wraps_when_database_drained(self):
        scenario = Churn(cycles=1, ops_per_cycle=2, page_size=4)
        scenario.on_connect(CTX)
        action = scenario.on_response(CTX, "get_page", page(3, [b"x"] * 3, False))
        assert drive_request(action)["from_index"] == 0  # wrapped


class TestAttackScenarios:
    def test_forged_tokens_tally_verdicts(self):
        blobs = off_path_flood_blobs(3, seed=1)
        scenario = ForgedTokens(blobs, forged_tokens(3, seed=1))
        action = scenario.on_connect(CTX)
        for _ in range(3):
            assert drive_request(action)["op"] == "ADD"
            action = scenario.on_response(
                CTX, "add_forged",
                canonical_json({"ok": False, "verdict": "bad_token"}),
            )
        assert isinstance(action, Stop)
        assert scenario.verdicts == {"bad_token": 3}
        assert scenario.completed

    def test_authenticated_spam_counts_accepted(self):
        scenario = AdjacentSpam(adjacent_spam_blobs(3, seed=2))
        scenario.on_connect(CTX)
        action = scenario.on_response(
            CTX, "issue_id", canonical_json({"ok": True, "token": "aa"})
        )
        verdicts = ["ok", "adjacent", "adjacent"]
        for verdict in verdicts:
            assert drive_request(action)["op"] == "ADD"
            action = scenario.on_response(
                CTX, "add_attack",
                canonical_json({"ok": verdict == "ok", "verdict": verdict}),
            )
        assert isinstance(action, Stop)
        assert scenario.accepted == 1
        assert scenario.verdicts["adjacent"] == 2

    def test_quota_flood_blobs_are_distinct(self):
        blobs = off_path_flood_blobs(12, seed=3)
        assert len(set(blobs)) == 12

    def test_forged_token_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ForgedTokens(off_path_flood_blobs(3), forged_tokens(2))


class TestRampingFlood:
    def _drive(self, scenario, n):
        """Run n ADD rounds; returns the delay carried by each Send."""
        action = scenario.on_connect(CTX)
        action = scenario.on_response(
            CTX, "issue_id", canonical_json({"ok": True, "token": "aa"})
        )
        delays = []
        for _ in range(n):
            assert drive_request(action)["op"] == "ADD"
            delays.append(action.delay)
            action = scenario.on_response(
                CTX, "add_attack",
                canonical_json({"ok": False, "verdict": "quota_exceeded"}),
            )
        return delays, action

    def test_delay_ramps_linearly_to_zero(self):
        clock = iter(float(t) for t in range(0, 100)).__next__
        scenario = RampingFlood(off_path_flood_blobs(8, seed=4),
                                start_delay=0.1, ramp_s=4.0, clock=clock)
        delays, _ = self._drive(scenario, 8)
        # Clock ticks one second per send: 4 ramping sends, then flat out.
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.075)
        assert delays[2] == pytest.approx(0.05)
        assert delays[3] == pytest.approx(0.025)
        assert delays[4:] == [0.0] * 4

    def test_completes_and_tallies_like_a_flood(self):
        scenario = RampingFlood(off_path_flood_blobs(3, seed=5),
                                start_delay=0.0, ramp_s=0.0)
        _, action = self._drive(scenario, 3)
        assert isinstance(action, Stop)
        assert scenario.completed
        assert scenario.verdicts == {"quota_exceeded": 3}

    def test_zero_ramp_means_immediate_full_rate(self):
        scenario = RampingFlood(off_path_flood_blobs(2, seed=6),
                                start_delay=0.5, ramp_s=0.0)
        delays, _ = self._drive(scenario, 2)
        assert delays == [0.0, 0.0]

    def test_registered_in_make_scenario(self):
        scenario = make_scenario("rampflood", random.Random(1), rounds=4)
        assert isinstance(scenario, RampingFlood)
        assert len(scenario.blobs) == 4
        mixed = build_mix("steady=1,rampflood=1", 4, seed=2)
        kinds = {type(s).__name__ for s in mixed}
        assert "RampingFlood" in kinds


class TestMixBuilding:
    def test_parse_mix(self):
        assert parse_mix("cold=1,steady=2") == [("cold", 1.0), ("steady", 2.0)]
        assert parse_mix("churn") == [("churn", 1.0)]
        with pytest.raises(ValueError):
            parse_mix("bogus=1")
        with pytest.raises(ValueError):
            parse_mix("")

    def test_build_mix_apportions_all_clients(self):
        scenarios = build_mix("cold=1,steady=2,churn=1", 10, seed=3)
        assert len(scenarios) == 10
        kinds = [type(s).__name__ for s in scenarios]
        assert kinds.count("ColdSync") in (2, 3)
        assert kinds.count("SteadyState") == 5
        assert kinds.count("Churn") in (2, 3)

    def test_build_mix_merges_repeated_names(self):
        scenarios = build_mix("steady=1,steady=1", 10, seed=1)
        assert len(scenarios) == 10
        assert all(type(s).__name__ == "SteadyState" for s in scenarios)

    def test_build_mix_is_deterministic(self):
        first = build_mix("steady=1", 3, seed=9)
        second = build_mix("steady=1", 3, seed=9)
        assert [s.blobs for s in first] == [s.blobs for s in second]

    def test_make_scenario_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_scenario("nope", random.Random(0))
