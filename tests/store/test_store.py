"""SignatureStore: metadata recovery, checkpoints, and tail-only replay."""

import json
import random

import pytest

import repro.store.store as store_module
from repro.loadgen.signatures import random_signature
from repro.store import SignatureStore, StoreError, load_manifest
from repro.store.checkpoint import manifest_path


@pytest.fixture(scope="module")
def signatures():
    rng = random.Random(20110627)
    return [random_signature(rng) for _ in range(40)]


def _append(store, sig, uid):
    return store.append(sig.to_bytes(), sig.sig_id, uid, sig.top_frames)


def _populate(path, signatures, *, uid_of=lambda i: i % 3 + 1, **kwargs):
    store = SignatureStore(str(path), **kwargs)
    for i, sig in enumerate(signatures):
        assert _append(store, sig, uid_of(i)) == i
    return store


class TestAppendRecover:
    def test_metadata_survives_reopen(self, tmp_path, signatures):
        _populate(tmp_path, signatures[:10], fsync="always",
                  segment_records=4).close(final_checkpoint=False)
        store = SignatureStore(str(tmp_path), segment_records=4)
        entries = store.recovered_entries()
        assert [e.index for e in entries] == list(range(10))
        for i, entry in enumerate(entries):
            assert entry.blob == signatures[i].to_bytes()
            assert entry.sig_id == signatures[i].sig_id
            assert entry.top_frames == signatures[i].top_frames
            assert entry.sender_uid == i % 3 + 1
        assert store.next_uid == 4  # max uid seen + 1
        store.close()

    def test_recovered_entries_consumed_once(self, tmp_path, signatures):
        _populate(tmp_path, signatures[:3], fsync="never").close()
        store = SignatureStore(str(tmp_path))
        assert len(store.recovered_entries()) == 3
        assert store.recovered_entries() == []
        store.close()

    def test_append_to_closed_store_fails(self, tmp_path, signatures):
        store = SignatureStore(str(tmp_path), fsync="never")
        store.close()
        with pytest.raises(ValueError):
            _append(store, signatures[0], 1)


class TestCheckpoint:
    def test_manifest_contents(self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:6], fsync="always",
                          segment_records=4, checkpoint_every=0)
        store.checkpoint()
        manifest = load_manifest(str(tmp_path))
        assert manifest.record_count == 6
        assert manifest.segment_records == 4
        assert manifest.segments == ["segment-00000000.cxlog",
                                     "segment-00000001.cxlog"]
        assert [sig_id for sig_id, _ in manifest.entries] == [
            s.sig_id for s in signatures[:6]
        ]
        assert manifest.users == {1: [0, 3], 2: [1, 4], 3: [2, 5]}
        assert manifest.next_uid == 4
        store.close()

    def test_auto_checkpoint_cadence(self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:11], fsync="never",
                          checkpoint_every=4)
        assert store.checkpoint_count == 8  # fired at 4 and 8, not yet 12
        store.close(final_checkpoint=False)

    def test_close_writes_final_checkpoint(self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:5], fsync="never")
        store.close()
        assert load_manifest(str(tmp_path)).record_count == 5

    def test_failed_final_checkpoint_still_seals_the_log(
            self, tmp_path, signatures, monkeypatch):
        store = _populate(tmp_path, signatures[:3], fsync="never")

        def exploding(*a, **k):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(store_module, "write_manifest", exploding)
        with pytest.raises(OSError):
            store.close()
        # The log was sealed anyway: no leaked handle, store is closed,
        # and the records (flushed by the log close) survive reopen.
        assert store.closed
        monkeypatch.undo()
        reopened = SignatureStore(str(tmp_path))
        assert len(reopened.recovered_entries()) == 3
        reopened.close()

    def test_note_next_uid_persists(self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:2], fsync="never")
        store.note_next_uid(77)
        store.close()
        reopened = SignatureStore(str(tmp_path))
        assert reopened.next_uid == 77
        reopened.close()


class TestTailOnlyReplay:
    def test_checkpointed_restart_parses_only_the_tail(
            self, tmp_path, signatures, monkeypatch):
        store = _populate(tmp_path, signatures[:12], fsync="always",
                          segment_records=4, checkpoint_every=0)
        store.checkpoint()  # manifest at 12
        for i, sig in enumerate(signatures[12:17]):
            _append(store, sig, 9)
        store.close(final_checkpoint=False)  # 5 tail records past manifest

        parses = []
        real = store_module.DeadlockSignature.from_bytes

        def counting(data, origin):
            parses.append(data)
            return real(data, origin)

        monkeypatch.setattr(store_module.DeadlockSignature, "from_bytes",
                            staticmethod(counting))
        reopened = SignatureStore(str(tmp_path), segment_records=4)
        entries = reopened.recovered_entries()
        assert len(entries) == 17
        assert reopened.replayed_past_checkpoint == 5
        # Only the 5 un-checkpointed records were deserialized; the prefix
        # came straight from the manifest metadata.
        assert len(parses) == 5
        # ... and the prefix metadata still matches the real signatures.
        assert entries[3].sig_id == signatures[3].sig_id
        assert entries[3].top_frames == signatures[3].top_frames
        reopened.close()

    def test_stale_manifest_falls_back_to_full_replay(
            self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:4], fsync="always",
                          segment_records=2)
        store.close()  # manifest at 4
        # Simulate losing log segments the checkpoint vouches for.
        manifest = json.loads(open(manifest_path(str(tmp_path))).read())
        manifest["record_count"] = 99
        manifest["entries"] += manifest["entries"] * 50
        manifest["entries"] = manifest["entries"][:99]
        with open(manifest_path(str(tmp_path)), "w") as fh:
            fh.write(json.dumps(manifest))
        reopened = SignatureStore(str(tmp_path), segment_records=2)
        entries = reopened.recovered_entries()
        assert [e.sig_id for e in entries] == [s.sig_id
                                               for s in signatures[:4]]
        reopened.close()
        # The healing close rewrote an honest manifest.
        assert load_manifest(str(tmp_path)).record_count == 4

    def test_reopen_adopts_the_dirs_segmentation(self, tmp_path, signatures):
        _populate(tmp_path, signatures[:10], fsync="never",
                  segment_records=4).close()
        # Misconfigured reopen: the manifest knows the dir's stripe size
        # and wins over the configured value.
        reopened = SignatureStore(str(tmp_path), segment_records=2)
        entries = reopened.recovered_entries()
        assert [e.sig_id for e in entries] == [s.sig_id
                                               for s in signatures[:10]]
        sig = signatures[10]
        assert _append(reopened, sig, 1) == 10
        reopened.close()
        assert load_manifest(str(tmp_path)).segment_records == 4

    def test_manifestless_segmentation_mismatch_refuses(
            self, tmp_path, signatures):
        import os

        store = _populate(tmp_path, signatures[:8], fsync="never",
                          segment_records=4)
        store.close()
        os.remove(manifest_path(str(tmp_path)))  # nothing records the size
        with pytest.raises(StoreError):
            SignatureStore(str(tmp_path), segment_records=2)
        # The refusal changed nothing: the right configuration still opens.
        good = SignatureStore(str(tmp_path), segment_records=4)
        assert len(good.recovered_entries()) == 8
        good.close()

    def test_checkpointed_reopen_restores_user_index_from_manifest(
            self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:6], fsync="never",
                          segment_records=4)
        store.close()  # manifest covers all 6
        reopened = SignatureStore(str(tmp_path), segment_records=4)
        reopened.recovered_entries()
        manifest = reopened.checkpoint()
        assert manifest.users == {1: [0, 3], 2: [1, 4], 3: [2, 5]}
        reopened.close()

    def test_corrupt_manifest_is_ignored(self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:3], fsync="never")
        store.close()
        with open(manifest_path(str(tmp_path)), "w") as fh:
            fh.write("{this is not json")
        reopened = SignatureStore(str(tmp_path))
        assert len(reopened.recovered_entries()) == 3
        assert reopened.replayed_past_checkpoint == 3
        reopened.close()
