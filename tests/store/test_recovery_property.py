"""Property test: arbitrary tail damage recovers the longest valid prefix.

The crash model: the process dies mid-write (torn tail) or the disk
scribbles on recently-written bytes (bit flips near the end of the log).
For any such damage to the tail segment, ``open()`` must recover *exactly*
the records untouched by the damage — nothing lost before it, nothing
fabricated after it — and leave the directory in a state where appends
resume cleanly.
"""

from __future__ import annotations

import os

from hypothesis import given, settings, strategies as st

from repro.store.records import record_size
from repro.store.wal import SegmentedLog, segment_filename


def _build_log(tmp_dir: str, blobs: list[bytes], segment_records: int) -> None:
    log = SegmentedLog(tmp_dir, segment_records=segment_records,
                       fsync="never")
    for i, blob in enumerate(blobs):
        log.append(blob, i + 1)
    log.close()


def _tail_spans(blobs: list[bytes], segment_records: int) -> list[tuple[int, int, int]]:
    """``(record_index, start, end)`` byte spans inside the tail segment."""
    tail_start = (len(blobs) - 1) // segment_records * segment_records
    spans = []
    offset = 0
    for i in range(tail_start, len(blobs)):
        size = record_size(blobs[i])
        spans.append((i, offset, offset + size))
        offset += size
    return spans


@st.composite
def damage_cases(draw):
    n_records = draw(st.integers(min_value=1, max_value=24))
    segment_records = draw(st.integers(min_value=1, max_value=8))
    blobs = [
        draw(st.binary(min_size=0, max_size=40)) + f"#{i}".encode()
        for i in range(n_records)
    ]
    kind = draw(st.sampled_from(["truncate", "flip", "append_garbage"]))
    offset_frac = draw(st.floats(min_value=0.0, max_value=1.0))
    flips = draw(st.lists(st.floats(min_value=0.0, max_value=1.0),
                          min_size=1, max_size=4))
    garbage = draw(st.binary(min_size=1, max_size=30))
    return n_records, segment_records, blobs, kind, offset_frac, flips, garbage


@settings(max_examples=60, deadline=None)
@given(damage_cases())
def test_open_recovers_longest_valid_prefix(tmp_path_factory, case):
    n_records, segment_records, blobs, kind, offset_frac, flips, garbage = case
    tmp_dir = str(tmp_path_factory.mktemp("walprop"))
    _build_log(tmp_dir, blobs, segment_records)

    spans = _tail_spans(blobs, segment_records)
    # The segment holding the last *record* — rotation may have opened a
    # fresh empty file after it, which is not the one to damage.
    tail_seq = (len(blobs) - 1) // segment_records
    tail_path = os.path.join(tmp_dir, segment_filename(tail_seq))
    data = bytearray(open(tail_path, "rb").read())
    tail_first = spans[0][0]
    tail_bytes = len(data)
    assert tail_bytes == spans[-1][2]

    if kind == "truncate":
        cut = int(offset_frac * tail_bytes)
        damaged_from = cut
        data = data[:cut]
    elif kind == "flip":
        positions = sorted({min(int(f * tail_bytes), tail_bytes - 1)
                            for f in flips})
        for pos in positions:
            data[pos] ^= 0xA5
        damaged_from = positions[0]
    else:  # append_garbage: a torn write of a never-acked record
        damaged_from = tail_bytes
        data = data + bytearray(garbage)
    with open(tail_path, "wb") as fh:
        fh.write(data)

    # Expected: every tail record wholly before the first damaged byte.
    expected = tail_first
    for index, start, end in spans:
        if end <= damaged_from:
            expected = index + 1
        else:
            break

    log = SegmentedLog(tmp_dir, segment_records=segment_records,
                       fsync="never")
    records = log.recovered_records()
    assert len(records) == expected
    assert [r.blob for r in records] == blobs[:expected]
    assert [r.sender_uid for r in records] == list(range(1, expected + 1))

    # The repaired log accepts appends at the recovered index and a second
    # open sees a perfectly clean directory.
    assert log.append(b"post-recovery", 99) == expected
    log.close()
    reopened = SegmentedLog(tmp_dir, segment_records=segment_records,
                            fsync="never")
    assert reopened.record_count == expected + 1
    assert reopened.recovery.truncated_bytes == 0
    assert reopened.recovered_records()[-1].blob == b"post-recovery"
    reopened.close()
