"""Record framing: pack/scan round-trips and torn-tail semantics."""

import struct
import zlib

from repro.store.records import (
    HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    LogRecord,
    pack_record,
    record_size,
    scan_records,
    unpack_payload,
)


def _blobs(n):
    return [f"signature-{i}".encode() * (i + 1) for i in range(n)]


class TestPackScan:
    def test_roundtrip(self):
        data = b"".join(pack_record(blob, uid)
                        for uid, blob in enumerate(_blobs(5)))
        records, valid = scan_records(data)
        assert valid == len(data)
        assert [r.blob for r in records] == _blobs(5)
        assert [r.sender_uid for r in records] == list(range(5))

    def test_record_layout_mirrors_wire_framing(self):
        # u32 len | u32 crc32 | u64 uid | blob — big-endian throughout.
        record = pack_record(b"abc", 7)
        length, crc = struct.unpack_from(">II", record)
        payload = record[HEADER_BYTES:]
        assert length == len(payload) == 8 + 3
        assert crc == zlib.crc32(payload)
        assert payload == struct.pack(">Q", 7) + b"abc"

    def test_record_size_matches(self):
        blob = b"x" * 137
        assert record_size(blob) == len(pack_record(blob, 1))

    def test_empty_input(self):
        assert scan_records(b"") == ([], 0)

    def test_unpack_payload_rejects_short(self):
        try:
            unpack_payload(b"\x00" * 4)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("short payload must be rejected")


class TestTornTails:
    def test_partial_header(self):
        good = pack_record(b"one", 1)
        records, valid = scan_records(good + b"\x00\x00")
        assert [r.blob for r in records] == [b"one"]
        assert valid == len(good)

    def test_partial_payload(self):
        good = pack_record(b"one", 1)
        torn = pack_record(b"two", 2)[:-1]
        records, valid = scan_records(good + torn)
        assert [r.blob for r in records] == [b"one"]
        assert valid == len(good)

    def test_crc_mismatch_stops_scan(self):
        good = pack_record(b"one", 1)
        bad = bytearray(pack_record(b"two", 2))
        bad[-1] ^= 0xFF
        records, valid = scan_records(good + bytes(bad) + pack_record(b"three", 3))
        assert [r.blob for r in records] == [b"one"]
        assert valid == len(good)

    def test_absurd_length_field_is_damage(self):
        good = pack_record(b"one", 1)
        forged = struct.pack(">II", MAX_PAYLOAD_BYTES + 1, 0) + b"x" * 32
        records, valid = scan_records(good + forged)
        assert [r.blob for r in records] == [b"one"]
        assert valid == len(good)

    def test_length_below_uid_field_is_damage(self):
        forged = struct.pack(">II", 4, zlib.crc32(b"abcd")) + b"abcd"
        assert scan_records(forged) == ([], 0)

    def test_skip_crc_still_parses_framing(self):
        bad = bytearray(pack_record(b"two", 2))
        bad[-1] ^= 0xFF  # blob corrupted but framing intact
        records, valid = scan_records(bytes(bad), verify_crc=False)
        assert valid == len(bad)
        # The caller vouched for the bytes: the (corrupt) blob is returned.
        assert records == [LogRecord(2, b"tw" + bytes([ord("o") ^ 0xFF]))]
