"""The store's metadata-provider hook: one copy of per-record metadata.

A :class:`SignatureDatabase` writing through a :class:`SignatureStore`
already holds every record's ``(sig_id, top_frames, sender_uid)``; once it
attaches itself as the store's metadata provider, the store drops its own
mirror lists and pulls checkpoint metadata from the database instead.
These tests pin the attach contract and that checkpoints built through
the provider are byte-for-byte what the mirrored path produced.
"""

import random

import pytest

from repro.loadgen.signatures import random_signature
from repro.server.database import SignatureDatabase
from repro.core.signature import DeadlockSignature
from repro.store import SignatureStore, StoreError, load_manifest


def _db_with_store(path, **store_kwargs) -> SignatureDatabase:
    store = SignatureStore(str(path), **store_kwargs)
    return SignatureDatabase(store=store)


def _add(database, sig, uid) -> int:
    return database.append(sig, sig.to_bytes(), uid)


@pytest.fixture(scope="module")
def signatures():
    rng = random.Random(20110808)
    return [random_signature(rng) for _ in range(12)]


class TestAttach:
    def test_database_attaches_itself_on_construction(self, tmp_path,
                                                      signatures):
        database = _db_with_store(tmp_path, fsync="never")
        store = database.store
        # The mirrors are gone: metadata now has exactly one owner.
        assert store._provider is database
        assert store._sig_ids is None
        assert store._top_frames is None
        assert store._uids is None
        for i, sig in enumerate(signatures[:4]):
            assert _add(database, sig, i + 1) == i
        store.close()

    def test_attach_rejects_out_of_lockstep_provider(self, tmp_path,
                                                     signatures):
        database = _db_with_store(tmp_path, fsync="never")
        _add(database, signatures[0], 1)
        database.store.close(final_checkpoint=False)
        # Reopen the store (1 logged record) but offer an empty database.
        store = SignatureStore(str(tmp_path), fsync="never")
        with pytest.raises(StoreError, match="lockstep"):
            store.set_metadata_provider(SignatureDatabase())
        store.close(final_checkpoint=False)

    def test_reattach_after_restart_via_replay(self, tmp_path, signatures):
        database = _db_with_store(tmp_path, fsync="never")
        for i, sig in enumerate(signatures[:5]):
            _add(database, sig, i % 2 + 1)
        database.store.close()
        # Restart: the database replays the store, ends in lockstep, and
        # re-attaches; the store never rebuilds its mirrors.
        reopened = _db_with_store(tmp_path, fsync="never")
        assert len(reopened) == 5
        assert reopened.store._provider is reopened
        assert reopened.store._sig_ids is None
        reopened.store.close()


class TestCheckpointThroughProvider:
    def test_manifest_matches_database_metadata(self, tmp_path, signatures):
        database = _db_with_store(tmp_path, fsync="never")
        for i, sig in enumerate(signatures):
            _add(database, sig, i % 3 + 1)
        manifest = database.store.checkpoint(full=True)
        assert manifest.record_count == len(signatures)
        assert manifest.users == {
            1: [i for i in range(12) if i % 3 == 0],
            2: [i for i in range(12) if i % 3 == 1],
            3: [i for i in range(12) if i % 3 == 2],
        }
        database.store.close(final_checkpoint=False)
        # A cold store (mirror path: no provider until a database replays
        # it) composes the same view from the manifest.
        assert load_manifest(str(tmp_path)).record_count == len(signatures)
        cold = SignatureStore(str(tmp_path), fsync="never")
        assert cold.checkpoint_count == len(signatures)
        entries = cold.recovered_entries()
        assert [e.sig_id for e in entries] == [s.sig_id for s in signatures]
        assert [e.sender_uid for e in entries] == [i % 3 + 1
                                                  for i in range(12)]
        cold.close(final_checkpoint=False)

    def test_delta_checkpoints_slice_the_provider(self, tmp_path, signatures):
        database = _db_with_store(tmp_path, fsync="never",
                                  checkpoint_every=4)
        for i, sig in enumerate(signatures):
            _add(database, sig, i % 3 + 1)
        # The database drives the cadence (store.maybe_checkpoint after
        # each published entry), so checkpoints cover the full count:
        # full manifest at 4, deltas at 8 and 12 — through the provider's
        # checkpoint_metadata slices.
        assert database.store.checkpoint_count == 12
        database.store.close(final_checkpoint=False)
        reopened = _db_with_store(tmp_path, checkpoint_every=4)
        assert len(reopened) == 12
        assert reopened.store.checkpoint_count == 12
        assert reopened.store.replayed_past_checkpoint == 0
        for i, sig in enumerate(signatures):
            assert reopened.entry(i).sig_id == sig.sig_id
        reopened.store.close(final_checkpoint=False)

    def test_checkpoint_metadata_slices(self, tmp_path, signatures):
        database = _db_with_store(tmp_path, fsync="never")
        for i, sig in enumerate(signatures[:6]):
            _add(database, sig, i + 1)
        rows = database.checkpoint_metadata(2, 5)
        assert [uid for _, _, uid in rows] == [3, 4, 5]
        assert [sig_id for sig_id, _, _ in rows] == [
            s.sig_id for s in signatures[2:5]
        ]
        database.store.close(final_checkpoint=False)

    def test_duplicate_append_keeps_lockstep(self, tmp_path, signatures):
        # A duplicate ADD is deduped by the database *before* the store
        # append, so provider length and log length stay equal and the
        # next checkpoint is consistent.
        database = _db_with_store(tmp_path, fsync="never")
        sig = signatures[0]
        assert _add(database, sig, 1) == 0
        reparsed = DeadlockSignature.from_bytes(sig.to_bytes())
        assert _add(database, reparsed, 2) == 0  # deduped, not re-logged
        assert len(database) == database.store.record_count == 1
        assert database.store.checkpoint(full=True).record_count == 1
        database.store.close(final_checkpoint=False)
