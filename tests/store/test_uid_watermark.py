"""Eager uid-watermark durability (ISSUE PR 6 satellite).

The gap being closed: ``note_next_uid`` used to raise only the in-memory
watermark, persisted at the *next checkpoint* — so a ``kill -9`` landing
between a token issue and that checkpoint replayed an older ``next_uid``
and re-issued a uid that already belonged to someone, merging two users'
quota and adjacency history.  The watermark now also lands eagerly in the
``UID_WATERMARK`` sidecar on every issue.
"""

import random

import pytest

from repro.crypto.userid import UserIdAuthority
from repro.loadgen.signatures import random_signature
from repro.server.server import CommunixServer, ServerConfig
from repro.store import SignatureStore
from repro.store.checkpoint import (
    load_uid_watermark,
    uid_watermark_path,
    write_uid_watermark,
)
from repro.util.clock import ManualClock


def _crash(store: SignatureStore) -> None:
    """Simulate kill -9: release the log handle without the final
    checkpoint a clean shutdown would write."""
    store.close(final_checkpoint=False)


class TestSidecar:
    def test_round_trip(self, tmp_path):
        write_uid_watermark(str(tmp_path), 123)
        assert load_uid_watermark(str(tmp_path)) == 123

    def test_absent_reads_as_one(self, tmp_path):
        assert load_uid_watermark(str(tmp_path)) == 1

    @pytest.mark.parametrize("garbage", [b"", b"not-a-number", b"-5", b"0"])
    def test_damaged_sidecar_tolerated(self, tmp_path, garbage):
        with open(uid_watermark_path(str(tmp_path)), "wb") as fh:
            fh.write(garbage)
        assert load_uid_watermark(str(tmp_path)) == 1


class TestStoreWatermark:
    def test_note_next_uid_survives_crash(self, tmp_path):
        store = SignatureStore(str(tmp_path), checkpoint_every=0)
        store.note_next_uid(42)
        _crash(store)
        reopened = SignatureStore(str(tmp_path))
        assert reopened.next_uid == 42
        reopened.close()

    def test_watermark_never_lowered(self, tmp_path):
        store = SignatureStore(str(tmp_path), checkpoint_every=0)
        store.note_next_uid(50)
        store.note_next_uid(10)  # stale caller must not regress it
        assert store.next_uid == 50
        _crash(store)
        assert load_uid_watermark(str(tmp_path)) == 50

    def test_no_rewrite_when_not_raised(self, tmp_path):
        store = SignatureStore(str(tmp_path), checkpoint_every=0)
        store.note_next_uid(9)
        path = uid_watermark_path(str(tmp_path))
        before = os_stat_signature(path)
        store.note_next_uid(9)  # same value: no second fsync dance
        assert os_stat_signature(path) == before
        _crash(store)

    def test_records_and_sidecar_max_together(self, tmp_path):
        # A record from uid 80 implies next_uid >= 81 even when the
        # sidecar only ever saw 42.
        rng = random.Random(6)
        store = SignatureStore(str(tmp_path), checkpoint_every=0)
        store.note_next_uid(42)
        sig = random_signature(rng)
        store.append(sig.to_bytes(), sig.sig_id, 80, sig.top_frames)
        _crash(store)
        reopened = SignatureStore(str(tmp_path))
        assert reopened.next_uid == 81
        reopened.close()


def os_stat_signature(path):
    import os

    st = os.stat(path)
    return (st.st_ino, st.st_mtime_ns, st.st_size)


class TestServerIntegration:
    def test_token_issue_then_crash_preserves_uid(self, tmp_path):
        config = ServerConfig(data_dir=str(tmp_path), checkpoint_every=0)
        server = CommunixServer(
            config=config,
            authority=UserIdAuthority(rng=random.Random(4)),
            clock=ManualClock(start=1_000_000.0),
        )
        issued = [server.authority.decode(server.issue_user_token()).user_id
                  for _ in range(3)]
        assert issued == [1, 2, 3]
        _crash(server.store)  # kill -9 before any checkpoint

        revived = CommunixServer(
            config=config,
            authority=UserIdAuthority(rng=random.Random(4)),
            clock=ManualClock(start=1_000_000.0),
        )
        next_uid = revived.authority.decode(revived.issue_user_token()).user_id
        assert next_uid == 4  # not a re-issue of 1..3
        revived.store.close()
