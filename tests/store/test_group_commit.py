"""WAL group commit: one fsync amortized over a batch of appends.

The ``always`` policy's contract is unchanged — no append returns before
an fsync covers its record — but concurrent appends share flushes instead
of issuing one each.  These tests pin the split write/commit API the
store uses, the batching itself, and the failure contract (a failed
group fsync acks nobody and rolls back when the batch was a single
record).
"""

import os
import threading
import time

import pytest

from repro.store.wal import SegmentedLog


class TestSplitApi:
    def test_one_commit_covers_many_buffered_writes(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="always")
        for i in range(3):
            assert log.append_unflushed(f"blob-{i}".encode(), i) == i
        assert log.record_count == 3
        assert log.durable_count == 0  # write phase promises nothing
        log.commit_appended(3)
        assert log.durable_count == 3
        assert log.fsyncs_issued == 1  # one flush for the whole batch
        log.close()
        reopened = SegmentedLog(str(tmp_path), fsync="never")
        assert reopened.record_count == 3
        reopened.close()

    def test_covered_commit_skips_the_disk(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="always")
        index = log.append_unflushed(b"x", 1)
        log.commit_appended(index + 1)
        assert log.fsyncs_issued == 1
        log.commit_appended(index + 1)  # already durable: follower path
        assert log.fsyncs_issued == 1
        log.close()

    def test_commit_is_noop_under_interval_and_never(self, tmp_path):
        for policy in ("never", "interval:5000"):
            directory = tmp_path / policy.replace(":", "-")
            log = SegmentedLog(str(directory), fsync=policy)
            index = log.append_unflushed(b"x", 1)
            log.commit_appended(index + 1)
            assert log.fsyncs_issued == 0
            log.close()

    def test_plain_append_still_durable_before_return(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="always")
        log.append(b"x", 1)
        assert log.durable_count == 1
        log.close()

    def test_group_commit_can_be_disabled(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="always", group_commit=False)
        log.append(b"x", 1)
        # The inline (non-grouped) path fsyncs without the commit-phase
        # counter: batching visibly off.
        assert log.durable_count == 1
        assert log.fsyncs_issued == 0
        log.close()


class TestConcurrentBatching:
    def test_concurrent_appends_share_fsyncs(self, tmp_path, monkeypatch):
        log = SegmentedLog(str(tmp_path), fsync="always")
        real_fsync = os.fsync

        def slow_fsync(fd):
            # A visible device latency so the batch window is real: while
            # the leader waits here, the other threads buffer records that
            # the *next* leader covers in one flush.
            time.sleep(0.001)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", slow_fsync)
        threads, errors = 8, []
        per_thread = 25

        def run(uid):
            try:
                for i in range(per_thread):
                    log.append(f"t{uid}-{i}".encode(), uid)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        workers = [threading.Thread(target=run, args=(t,))
                   for t in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        total = threads * per_thread
        assert log.record_count == total
        assert log.durable_count == total  # every append returned durable
        assert 0 < log.fsyncs_issued <= total // 2  # batching happened
        log.close()
        monkeypatch.undo()
        reopened = SegmentedLog(str(tmp_path), fsync="never")
        assert reopened.record_count == total
        assert len(reopened.recovered_records()) == total
        reopened.close()


class TestCommitFailure:
    def test_failed_sole_record_batch_rolls_back(self, tmp_path, monkeypatch):
        log = SegmentedLog(str(tmp_path), fsync="always")
        log.append(b"keep", 1)
        state = {"fail": False}
        real_fsync = os.fsync

        def flaky_fsync(fd):
            if state["fail"]:
                raise OSError("disk gone")
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", flaky_fsync)
        state["fail"] = True
        with pytest.raises(OSError):
            log.append(b"lost", 2)
        state["fail"] = False
        # The sole-record batch was rolled back completely: counters,
        # durability, and the file all read as if the append never ran.
        assert log.record_count == 1
        assert log.durable_count == 1
        log.append(b"again", 3)  # the log stays usable
        assert log.record_count == 2
        log.close()
        reopened = SegmentedLog(str(tmp_path), fsync="never")
        blobs = [r.blob for r in reopened.recovered_records()]
        assert blobs == [b"keep", b"again"]
        reopened.close()

    def test_rollback_appended_only_newest_uncovered(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="always")
        index = log.append_unflushed(b"a", 1)
        assert log.rollback_appended(index) is True
        assert log.record_count == 0
        index = log.append_unflushed(b"a", 1)
        log.commit_appended(index + 1)
        assert log.rollback_appended(index) is False  # an fsync covers it
        first = log.append_unflushed(b"b", 2)
        second = log.append_unflushed(b"c", 3)
        assert log.rollback_appended(first) is False  # not the newest
        assert log.rollback_appended(second) is True
        assert log.record_count == first + 1
        log.close()
        reopened = SegmentedLog(str(tmp_path), fsync="never")
        assert [r.blob for r in reopened.recovered_records()] == [b"a", b"b"]
        reopened.close()
