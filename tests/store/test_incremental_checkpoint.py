"""Incremental checkpoints: delta lines instead of O(history) rewrites.

Only the first checkpoint of a data dir (and the final one at clean
shutdown) writes ``MANIFEST.json``; periodic checkpoints append one
O(delta) line to ``MANIFEST.delta.jsonl``.  A restart composes the chain
over its base, stopping cleanly at any torn/garbled line — the same
"accelerator, not truth" stance the manifest itself has always had.
"""

import json
import os
import random

import pytest

from repro.loadgen.signatures import random_signature
from repro.store import SignatureStore, load_manifest
from repro.store.checkpoint import manifest_delta_path, manifest_path


@pytest.fixture(scope="module")
def signatures():
    rng = random.Random(20110811)
    return [random_signature(rng) for _ in range(30)]


def _append(store, sig, uid):
    return store.append(sig.to_bytes(), sig.sig_id, uid, sig.top_frames)


def _populate(path, signatures, **kwargs):
    store = SignatureStore(str(path), **kwargs)
    for i, sig in enumerate(signatures):
        assert _append(store, sig, i % 3 + 1) == i
    return store


def _delta_lines(path):
    with open(manifest_delta_path(str(path)), encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestDeltaCadence:
    def test_periodic_checkpoints_append_deltas(self, tmp_path, signatures):
        store = _populate(tmp_path, signatures[:11], fsync="always",
                          checkpoint_every=4)
        # Cadence fired at 4 (first checkpoint: full manifest) and at 8
        # (delta).  The on-disk MANIFEST.json must still be the base.
        assert store.checkpoint_count == 8
        assert load_manifest(str(tmp_path)).record_count == 4
        lines = _delta_lines(tmp_path)
        assert len(lines) == 1
        assert lines[0]["base"] == 4
        assert lines[0]["from"] == 4
        assert len(lines[0]["entries"]) == 4
        store.close(final_checkpoint=False)

    def test_explicit_checkpoint_returns_none_for_delta(self, tmp_path,
                                                        signatures):
        store = _populate(tmp_path, signatures[:5], fsync="never")
        assert store.checkpoint() is not None  # first one: full manifest
        _append(store, signatures[5], 1)
        assert store.checkpoint() is None  # now O(delta)
        assert store.checkpoint(full=True) is not None  # forced rewrite
        assert not os.path.exists(manifest_delta_path(str(tmp_path)))
        store.close(final_checkpoint=False)

    def test_close_writes_full_manifest_and_clears_deltas(self, tmp_path,
                                                          signatures):
        store = _populate(tmp_path, signatures[:11], fsync="always",
                          checkpoint_every=4)
        assert os.path.exists(manifest_delta_path(str(tmp_path)))
        store.close()  # final checkpoint is always full
        assert load_manifest(str(tmp_path)).record_count == 11
        assert not os.path.exists(manifest_delta_path(str(tmp_path)))


class TestCompose:
    def test_reopen_composes_base_plus_deltas(self, tmp_path, signatures):
        _populate(tmp_path, signatures[:11], fsync="always",
                  checkpoint_every=4).close(final_checkpoint=False)
        store = SignatureStore(str(tmp_path), checkpoint_every=4)
        # Base 4 + one delta of 4: eight records load straight off the
        # composed manifest; only three replay with full validation.
        assert store.checkpoint_count == 8
        assert store.replayed_past_checkpoint == 3
        entries = store.recovered_entries()
        assert [e.index for e in entries] == list(range(11))
        for i, entry in enumerate(entries):
            assert entry.sig_id == signatures[i].sig_id
            assert entry.top_frames == signatures[i].top_frames
            assert entry.sender_uid == i % 3 + 1
        store.close(final_checkpoint=False)

    def test_composed_users_index_matches_history(self, tmp_path, signatures):
        _populate(tmp_path, signatures[:11], fsync="always",
                  checkpoint_every=4).close(final_checkpoint=False)
        store = SignatureStore(str(tmp_path))
        store.recovered_entries()
        manifest = store.checkpoint(full=True)  # built from composed state
        assert manifest.users == {
            1: [0, 3, 6, 9], 2: [1, 4, 7, 10], 3: [2, 5, 8],
        }
        store.close(final_checkpoint=False)

    def test_torn_delta_line_stops_composition_cleanly(self, tmp_path,
                                                       signatures):
        _populate(tmp_path, signatures[:16], fsync="always",
                  checkpoint_every=4).close(final_checkpoint=False)
        # Deltas cover [4,8), [8,12), [12,16); tear the last line the way
        # a crash mid-append would.
        path = manifest_delta_path(str(tmp_path))
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 20)
        store = SignatureStore(str(tmp_path))
        # Composition covers base + the intact deltas; the torn line's
        # records (and the tail) replay from the log — nothing is lost.
        assert store.checkpoint_count == 12
        assert store.replayed_past_checkpoint == 4
        assert len(store.recovered_entries()) == 16
        store.close(final_checkpoint=False)

    def test_mismatched_base_discards_the_chain(self, tmp_path, signatures):
        _populate(tmp_path, signatures[:11], fsync="always",
                  checkpoint_every=4).close(final_checkpoint=False)
        lines = _delta_lines(tmp_path)
        lines[0]["base"] = 999  # a chain pinned to some other manifest
        with open(manifest_delta_path(str(tmp_path)), "w",
                  encoding="utf-8") as fh:
            for line in lines:
                fh.write(json.dumps(line) + "\n")
        store = SignatureStore(str(tmp_path))
        assert store.checkpoint_count == 4  # base manifest alone
        assert store.replayed_past_checkpoint == 7
        assert len(store.recovered_entries()) == 11
        store.close(final_checkpoint=False)

    def test_missing_base_manifest_ignores_deltas(self, tmp_path, signatures):
        _populate(tmp_path, signatures[:11], fsync="always",
                  checkpoint_every=4).close(final_checkpoint=False)
        os.unlink(manifest_path(str(tmp_path)))
        store = SignatureStore(str(tmp_path))
        assert store.checkpoint_count == 0  # full validating replay
        assert len(store.recovered_entries()) == 11
        store.close(final_checkpoint=False)
